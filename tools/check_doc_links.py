#!/usr/bin/env python3
"""Fail on broken intra-repo links in the Markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and verifies
that every *relative* target resolves to a file in the repository
(anchors are checked against the target file's headings).  External
links (``http[s]://``, ``mailto:``) are out of scope — CI must not
depend on the network.

Usage::

    python tools/check_doc_links.py [repo_root]

Exit status 0 when every link resolves, 1 otherwise (each broken link
is reported on stderr).  ``tests/unit/test_doc_links.py`` runs the
same check in the tier-1 suite, so locally a broken link fails before
CI ever sees it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not files of this repository.
_EXTERNAL = ("http://", "https://", "mailto:")


def _heading_anchor(line: str) -> str | None:
    """GitHub-style anchor of a Markdown heading line, or None."""
    stripped = line.lstrip()
    if not stripped.startswith("#"):
        return None
    text = stripped.lstrip("#").strip()
    # Drop inline code/backticks and punctuation, keep word chars,
    # spaces and hyphens; collapse spaces to hyphens.
    text = text.replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text).strip().lower()
    return re.sub(r"[ ]+", "-", text)


def _anchors_of(path: Path) -> set[str]:
    return {
        anchor
        for line in path.read_text(encoding="utf-8").splitlines()
        if (anchor := _heading_anchor(line)) is not None
    }


def doc_files(root: Path) -> list[Path]:
    """The documentation surface under link check."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(root: Path) -> list[str]:
    """Every unresolvable relative link, as ``file: target (reason)``."""
    problems: list[str] = []
    for doc in doc_files(root):
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(_EXTERNAL):
                continue
            rel = doc.relative_to(root)
            if target.startswith("#"):
                if target[1:] not in _anchors_of(doc):
                    problems.append(f"{rel}: {target} (no such heading)")
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: {target} (no such file)")
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in _anchors_of(resolved):
                    problems.append(
                        f"{rel}: {target} (no heading #{anchor} in "
                        f"{resolved.name})"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    problems = broken_links(root)
    for problem in problems:
        print(f"broken link — {problem}", file=sys.stderr)
    checked = len(doc_files(root))
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} files",
              file=sys.stderr)
        return 1
    print(f"doc links OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
