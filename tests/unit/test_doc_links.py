"""The documentation surface must not rot: intra-repo links resolve.

Runs the same checker the CI docs job uses
(``tools/check_doc_links.py``), so a broken link in ``README.md`` or
``docs/*.md`` fails tier-1 locally before CI ever sees it.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_documentation_surface_exists():
    module = _checker()
    names = {path.name for path in module.doc_files(REPO_ROOT)}
    # The PR-4 documentation satellites are part of the contract.
    assert {"README.md", "architecture.md", "cli.md", "file-format.md"} <= names


def test_intra_repo_links_resolve():
    module = _checker()
    assert module.broken_links(REPO_ROOT) == []


def test_checker_reports_broken_links(tmp_path):
    module = _checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/nope.md) and [ok](docs/real.md) "
        "and [bad anchor](docs/real.md#nowhere)\n"
    )
    (tmp_path / "docs" / "real.md").write_text("# Real\n")
    problems = module.broken_links(tmp_path)
    assert len(problems) == 2
    assert any("nope.md" in problem for problem in problems)
    assert any("nowhere" in problem for problem in problems)
