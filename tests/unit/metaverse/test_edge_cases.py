"""Edge cases and failure injection for the world engine."""

import numpy as np
import pytest

from repro.geometry import Path, Position
from repro.metaverse import Avatar, AvatarState, Land, Population, SessionProcess, World
from repro.metaverse.avatar import _MIN_EFFECTIVE_PAUSE
from repro.mobility import Leg, MobilityModel, RandomWaypoint


class DegenerateModel(MobilityModel):
    """A pathological model: zero-length legs with zero pause."""

    def initial_position(self, rng):
        return Position(10.0, 10.0)

    def next_leg(self, position, rng):
        return Leg(Path.from_points([position]), speed=0.0, pause=0.0)


class BurstModel(MobilityModel):
    """Tiny legs with tiny pauses: many leg boundaries per tick."""

    def initial_position(self, rng):
        return Position(50.0, 50.0)

    def next_leg(self, position, rng):
        target = Position(position.x + 0.5, position.y)
        return Leg(Path.from_points([position, target]), speed=5.0, pause=0.05)


class TestPathologicalModels:
    def test_degenerate_model_cannot_stall_the_clock(self):
        avatar = Avatar("d", DegenerateModel(256.0, 256.0), Position(10.0, 10.0))
        rng = np.random.default_rng(0)
        # Must terminate: degenerate legs are coerced to a minimum pause.
        avatar.tick(10.0, rng)
        assert avatar.state is AvatarState.PAUSED
        assert avatar.position == Position(10.0, 10.0)

    def test_min_effective_pause_is_positive(self):
        assert _MIN_EFFECTIVE_PAUSE > 0

    def test_burst_model_crosses_many_legs_per_tick(self):
        avatar = Avatar("b", BurstModel(256.0, 256.0), Position(50.0, 50.0))
        rng = np.random.default_rng(0)
        avatar.tick(2.0, rng)
        # 0.5 m per leg at 5 m/s = 0.1 s walk + 0.05 s pause: a 2 s
        # tick crosses ~13 legs; the avatar must have moved several legs.
        assert avatar.distance_walked > 2.0


class TestWorldEdgeCases:
    def test_zero_population_window(self):
        # A rate so low that no one arrives in the window.
        pop = Population(
            "ghost",
            SessionProcess(hourly_rate=1e-3),
            RandomWaypoint(256.0, 256.0),
        )
        world = World(Land("Empty"), [pop], seed=0)
        world.run_until(600.0)
        assert world.online_count == 0
        assert world.snapshot_positions() == {}

    def test_fractional_dt(self):
        pop = Population(
            "v", SessionProcess(hourly_rate=300.0), RandomWaypoint(256.0, 256.0)
        )
        world = World(Land("F"), [pop], seed=1, dt=0.5)
        world.run_until(100.0)
        assert world.now == pytest.approx(100.0)

    def test_run_until_is_idempotent_at_same_time(self):
        pop = Population(
            "v", SessionProcess(hourly_rate=100.0), RandomWaypoint(256.0, 256.0)
        )
        world = World(Land("I"), [pop], seed=2)
        world.run_until(50.0)
        logins = world.stats.logins
        world.run_until(50.0)  # no-op
        assert world.stats.logins == logins

    def test_prepare_extension_monotone(self):
        pop = Population(
            "v", SessionProcess(hourly_rate=200.0), RandomWaypoint(256.0, 256.0)
        )
        world = World(Land("P"), [pop], seed=3)
        world.prepare(600.0)
        pending_after_first = len(world._pending)
        world.prepare(300.0)  # shrinking horizon is a no-op
        assert len(world._pending) == pending_after_first
        world.prepare(1200.0)
        assert len(world._pending) > pending_after_first

    def test_arrival_times_within_pending_are_sorted(self):
        pop_a = Population(
            "a", SessionProcess(hourly_rate=150.0, user_prefix="a"),
            RandomWaypoint(256.0, 256.0),
        )
        pop_b = Population(
            "b", SessionProcess(hourly_rate=150.0, user_prefix="b"),
            RandomWaypoint(256.0, 256.0),
        )
        world = World(Land("S"), [pop_a, pop_b], seed=4)
        world.prepare(3600.0)
        times = [v.arrival_time for v, _p, _e in world._pending]
        assert times == sorted(times)

    def test_avatar_lookup(self):
        pop = Population(
            "v", SessionProcess(hourly_rate=600.0), RandomWaypoint(256.0, 256.0)
        )
        world = World(Land("L"), [pop], seed=5)
        world.run_until(120.0)
        some_avatar = world.online_avatars()[0]
        assert world.avatar(some_avatar.user_id) is some_avatar
        with pytest.raises(KeyError):
            world.avatar("nobody")


class TestSessionTruncationAtTraceEnd:
    def test_sessions_extend_past_monitoring_window(self):
        """Sessions longer than the window are observed truncated,
        exactly like the paper's 24 h cut."""
        from repro.monitors import Crawler

        pop = Population(
            "v",
            SessionProcess(hourly_rate=400.0),
            RandomWaypoint(256.0, 256.0),
        )
        world = World(Land("T"), [pop], seed=6)
        trace = Crawler(tau=10.0).monitor(world, 900.0)
        # Users still online at the end were recorded up to the cut.
        assert world.online_count > 0
        last = trace.snapshots[-1]
        online_ids = {a.user_id for a in world.online_avatars()}
        assert online_ids & set(last.users)
