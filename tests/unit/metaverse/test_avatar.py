"""Unit tests for repro.metaverse.avatar."""

import numpy as np
import pytest

from repro.geometry import Position, distance
from repro.metaverse import Avatar, AvatarState
from repro.mobility import RandomWaypoint, StaticModel


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def _avatar(model=None, position=Position(50.0, 50.0)):
    model = model or RandomWaypoint(100.0, 100.0, min_pause=0.0, max_pause=0.0)
    return Avatar(user_id="u1", model=model, position=position)


class TestLifecycle:
    def test_starts_online(self):
        av = _avatar()
        assert av.online
        assert av.state is AvatarState.PAUSED

    def test_logout(self):
        av = _avatar()
        av.logout()
        assert not av.online
        assert av.state is AvatarState.OFFLINE

    def test_offline_ticks_are_noops(self, rng):
        av = _avatar()
        av.logout()
        before = av.position
        av.tick(10.0, rng)
        assert av.position == before


class TestSitting:
    def test_sitting_reports_origin(self):
        av = _avatar(position=Position(42.0, 24.0))
        av.sit()
        assert av.reported_position == Position(0.0, 0.0, 0.0)
        assert av.position == Position(42.0, 24.0)  # true position kept

    def test_stand_restores_reporting(self):
        av = _avatar(position=Position(42.0, 24.0))
        av.sit()
        av.stand()
        assert av.reported_position == Position(42.0, 24.0)

    def test_sitting_avatar_does_not_move(self, rng):
        av = _avatar()
        av.sit()
        av.tick(100.0, rng)
        assert av.distance_walked == 0.0

    def test_cannot_sit_offline(self):
        av = _avatar()
        av.logout()
        with pytest.raises(RuntimeError, match="offline"):
            av.sit()


class TestMovement:
    def test_tick_advances_position(self, rng):
        av = _avatar()
        start = av.position
        av.tick(5.0, rng)
        assert av.position != start
        assert av.distance_walked > 0.0

    def test_kinematics_independent_of_tick_size(self):
        """Walking 30 s in one tick or 30 ticks must land identically."""
        model = RandomWaypoint(100.0, 100.0, min_pause=1.0, max_pause=2.0)
        a = Avatar("a", model, Position(50, 50))
        b = Avatar("b", model, Position(50, 50))
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        a.tick(30.0, rng_a)
        for _i in range(30):
            b.tick(1.0, rng_b)
        assert distance(a.position, b.position) < 1e-6
        assert a.distance_walked == pytest.approx(b.distance_walked, abs=1e-6)

    def test_static_avatar_accumulates_nothing(self, rng):
        av = _avatar(model=StaticModel(100.0, 100.0))
        av.tick(1000.0, rng)
        assert av.distance_walked == 0.0
        assert av.seconds_moving == 0.0

    def test_seconds_moving_bounded_by_elapsed(self, rng):
        av = _avatar()
        av.tick(60.0, rng)
        assert 0.0 <= av.seconds_moving <= 60.0

    def test_rejects_non_positive_dt(self, rng):
        with pytest.raises(ValueError, match="positive"):
            _avatar().tick(0.0, rng)


class TestRedirect:
    def test_redirect_overrides_leg(self, rng):
        av = _avatar(position=Position(10.0, 10.0))
        target = Position(90.0, 90.0)
        av.redirect_to(target, speed=4.0)
        assert av.state is AvatarState.WALKING
        before = distance(av.position, target)
        av.tick(5.0, rng)
        after = distance(av.position, target)
        assert after < before  # walking toward the magnet

    def test_sitting_avatars_ignore_redirect(self):
        av = _avatar()
        av.sit()
        av.redirect_to(Position(0.0, 0.0))
        assert av.state is AvatarState.SITTING

    def test_offline_avatars_ignore_redirect(self):
        av = _avatar()
        av.logout()
        av.redirect_to(Position(0.0, 0.0))
        assert av.state is AvatarState.OFFLINE
