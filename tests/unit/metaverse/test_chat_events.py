"""Unit tests for repro.metaverse.chat and repro.metaverse.events."""

import pytest

from repro.geometry import Position
from repro.metaverse import ChatChannel, ChatMessage, ScheduledEvent
from repro.mobility import PointOfInterest


class TestChatMessage:
    def test_audibility_range(self):
        msg = ChatMessage(0.0, "a", "hi", Position(100.0, 100.0))
        assert msg.audible_from(Position(110.0, 100.0))
        assert not msg.audible_from(Position(130.0, 100.0))

    def test_custom_range(self):
        msg = ChatMessage(0.0, "a", "hi", Position(0.0, 0.0))
        assert msg.audible_from(Position(50.0, 0.0), chat_range=60.0)


class TestChatChannel:
    def test_post_and_recent(self):
        chan = ChatChannel()
        chan.post(ChatMessage(10.0, "a", "one", Position(0, 0)))
        chan.post(ChatMessage(200.0, "b", "two", Position(0, 0)))
        recent = chan.recent(now=210.0, window=60.0)
        assert [m.text for m in recent] == ["two"]

    def test_horizon_prunes(self):
        chan = ChatChannel(horizon=100.0)
        chan.post(ChatMessage(0.0, "a", "old", Position(0, 0)))
        chan.post(ChatMessage(500.0, "a", "new", Position(0, 0)))
        assert len(chan) == 1

    def test_spoken_recently(self):
        chan = ChatChannel()
        chan.post(ChatMessage(100.0, "crawler", "nice place!", Position(0, 0)))
        assert chan.spoken_recently("crawler", now=150.0)
        assert not chan.spoken_recently("crawler", now=400.0)
        assert not chan.spoken_recently("other", now=150.0)

    def test_heard_by_respects_range(self):
        chan = ChatChannel()
        chan.post(ChatMessage(0.0, "a", "near", Position(0.0, 0.0)))
        chan.post(ChatMessage(0.0, "b", "far", Position(200.0, 200.0)))
        heard = list(chan.heard_by(Position(5.0, 5.0), now=10.0))
        assert [m.text for m in heard] == ["near"]


class TestScheduledEvent:
    def _event(self, **kwargs):
        venue = PointOfInterest("stage", 100.0, 100.0, radius=10.0, weight=2.0)
        defaults = dict(name="party", start=100.0, end=200.0, venue=venue)
        defaults.update(kwargs)
        return ScheduledEvent(**defaults)

    def test_active_window_half_open(self):
        event = self._event()
        assert not event.active_at(99.9)
        assert event.active_at(100.0)
        assert event.active_at(199.9)
        assert not event.active_at(200.0)

    def test_duration(self):
        assert self._event().duration == 100.0

    def test_boosted_venue_scales_weight(self):
        event = self._event(weight_boost=5.0)
        boosted = event.boosted_venue()
        assert boosted.weight == 10.0
        assert boosted.name == "stage"
        # Spawn weight rises so event-goers land at the venue.
        assert boosted.spawn_weight >= event.venue.weight

    def test_validation(self):
        with pytest.raises(ValueError, match="end after"):
            self._event(start=200.0, end=100.0)
        with pytest.raises(ValueError, match="arrival boost"):
            self._event(arrival_boost=0.0)
        with pytest.raises(ValueError, match="weight boost"):
            self._event(weight_boost=-1.0)
