"""Unit tests for repro.metaverse.land and repro.metaverse.objects."""

import pytest

from repro.geometry import Position
from repro.metaverse import (
    AccessPolicy,
    DeploymentError,
    Land,
    MoneySpot,
    ScriptedObject,
    SitObject,
    WorldObject,
)
from repro.metaverse.objects import deploy
from repro.mobility import PointOfInterest


class TestAccessPolicy:
    def test_private_forbids_deployment(self):
        assert not AccessPolicy.PRIVATE.allows_object_deployment
        assert AccessPolicy.PUBLIC.allows_object_deployment
        assert AccessPolicy.SANDBOX.allows_object_deployment

    def test_only_public_expires(self):
        assert AccessPolicy.PUBLIC.objects_expire
        assert not AccessPolicy.PRIVATE.objects_expire
        assert not AccessPolicy.SANDBOX.objects_expire


class TestLand:
    def test_default_size_is_sl_region(self):
        land = Land("X")
        assert land.width == 256.0 and land.height == 256.0
        assert land.area == 256.0 * 256.0

    def test_contains_and_clamp(self):
        land = Land("X")
        assert land.contains(Position(100, 100))
        assert not land.contains(Position(-1, 100))
        assert land.clamp(Position(300, -5)) == Position(256.0, 0.0)

    def test_poi_outside_rejected(self):
        poi = PointOfInterest("p", 500.0, 10.0, radius=5.0)
        with pytest.raises(ValueError, match="outside"):
            Land("X", pois=[poi])

    def test_poi_named(self):
        poi = PointOfInterest("stage", 10.0, 10.0, radius=5.0)
        land = Land("X", pois=[poi])
        assert land.poi_named("stage") is poi
        with pytest.raises(KeyError):
            land.poi_named("missing")

    def test_with_poi_copies(self):
        land = Land("X")
        extra = PointOfInterest("new", 10.0, 10.0, radius=5.0)
        grown = land.with_poi(extra)
        assert len(grown.pois) == 1
        assert len(land.pois) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Land("X", width=0.0)
        with pytest.raises(ValueError):
            Land("X", object_lifetime=0.0)
        with pytest.raises(ValueError):
            Land("X", max_concurrent=0)


class TestWorldObjects:
    def test_expiry_on_public_land(self):
        land = Land("X", policy=AccessPolicy.PUBLIC, object_lifetime=100.0)
        obj = WorldObject(position=Position(10, 10), created_at=50.0)
        assert obj.expires_at(land) == 150.0
        assert not obj.expired(land, 149.0)
        assert obj.expired(land, 150.0)

    def test_no_expiry_on_sandbox(self):
        land = Land("X", policy=AccessPolicy.SANDBOX)
        obj = WorldObject(position=Position(10, 10))
        assert obj.expires_at(land) is None
        assert not obj.expired(land, 1e12)

    def test_object_ids_unique(self):
        a = WorldObject(position=Position(0, 0))
        b = WorldObject(position=Position(0, 0))
        assert a.object_id != b.object_id

    def test_scripted_object_memory_limit(self):
        obj = ScriptedObject(position=Position(0, 0))
        assert obj.memory_limit_bytes == 16 * 1024
        with pytest.raises(ValueError):
            ScriptedObject(position=Position(0, 0), memory_limit_bytes=0)

    def test_sit_object_capacity(self):
        with pytest.raises(ValueError):
            SitObject(position=Position(0, 0), capacity=0)

    def test_money_spot_interval(self):
        with pytest.raises(ValueError):
            MoneySpot(position=Position(0, 0), payout_interval=0.0)


class TestDeploy:
    def test_public_land_accepts(self):
        land = Land("X", policy=AccessPolicy.PUBLIC)
        obj = ScriptedObject(position=Position(10, 10))
        assert deploy(land, obj) is obj

    def test_private_land_refuses(self):
        land = Land("X", policy=AccessPolicy.PRIVATE)
        obj = ScriptedObject(position=Position(10, 10))
        with pytest.raises(DeploymentError, match="private"):
            deploy(land, obj)

    def test_private_land_with_authorization(self):
        land = Land("X", policy=AccessPolicy.PRIVATE)
        obj = ScriptedObject(position=Position(10, 10))
        assert deploy(land, obj, authorized=True) is obj

    def test_off_land_position_refused(self):
        land = Land("X")
        obj = ScriptedObject(position=Position(500.0, 10.0))
        with pytest.raises(DeploymentError, match="outside"):
            deploy(land, obj)
