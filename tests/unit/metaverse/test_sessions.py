"""Unit tests for repro.metaverse.sessions."""

import numpy as np
import pytest

from repro.metaverse import PlannedVisit, SessionProcess
from repro.metaverse.sessions import (
    EVENING_PROFILE,
    FLAT_PROFILE,
    MAX_SESSION_SECONDS,
    VisitIterator,
)


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestPlannedVisit:
    def test_departure(self):
        v = PlannedVisit("u", 100.0, 50.0)
        assert v.departure_time == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlannedVisit("u", -1.0, 10.0)
        with pytest.raises(ValueError):
            PlannedVisit("u", 0.0, 0.0)


class TestProfiles:
    def test_flat_profile(self):
        assert len(FLAT_PROFILE) == 24
        assert all(m == 1.0 for m in FLAT_PROFILE)

    def test_evening_profile_normalized(self):
        assert len(EVENING_PROFILE) == 24
        assert sum(EVENING_PROFILE) / 24.0 == pytest.approx(1.0)

    def test_evening_peak_in_the_evening(self):
        assert max(EVENING_PROFILE) == EVENING_PROFILE[20]


class TestSessionProcess:
    def test_rate_at_flat(self):
        proc = SessionProcess(hourly_rate=360.0)
        assert proc.rate_at(0.0) == pytest.approx(0.1)
        assert proc.rate_at(12 * 3600.0) == pytest.approx(0.1)

    def test_rate_follows_profile(self):
        proc = SessionProcess(hourly_rate=100.0, diurnal_profile=EVENING_PROFILE)
        assert proc.rate_at(20.5 * 3600.0) > proc.rate_at(3.5 * 3600.0)

    def test_rate_wraps_around_midnight(self):
        proc = SessionProcess(hourly_rate=100.0, diurnal_profile=EVENING_PROFILE)
        assert proc.rate_at(3.0 * 3600.0) == proc.rate_at(27.0 * 3600.0)

    def test_schedule_counts_match_rate(self, rng):
        proc = SessionProcess(hourly_rate=120.0)
        visits = proc.schedule(3600.0 * 10, rng)
        assert len(visits) == pytest.approx(1200, rel=0.1)

    def test_schedule_time_ordered_and_in_window(self, rng):
        proc = SessionProcess(hourly_rate=60.0)
        visits = proc.schedule(3600.0, rng, start=1800.0)
        times = [v.arrival_time for v in visits]
        assert times == sorted(times)
        assert all(1800.0 <= t for t in times)

    def test_unique_ids(self, rng):
        proc = SessionProcess(hourly_rate=100.0)
        visits = proc.schedule(3600.0, rng)
        first_ids = {v.user_id for v in visits}
        assert len(first_ids) == len(visits)  # no revisits by default

    def test_serial_start_offsets_ids(self, rng):
        proc = SessionProcess(hourly_rate=100.0, user_prefix="x")
        visits = proc.schedule(600.0, rng, serial_start=500)
        assert all(int(v.user_id.split("-")[-1]) > 500 for v in visits)

    def test_durations_capped(self, rng):
        proc = SessionProcess(hourly_rate=200.0)
        visits = proc.schedule(4 * 3600.0, rng)
        assert all(v.duration <= MAX_SESSION_SECONDS for v in visits)

    def test_boost_multiplies_arrivals(self, rng):
        proc = SessionProcess(hourly_rate=60.0)
        plain = proc.schedule(4 * 3600.0, np.random.default_rng(1))
        boosted = proc.schedule(
            4 * 3600.0, np.random.default_rng(1), boost=lambda t: 3.0
        )
        assert len(boosted) > 2.0 * len(plain)

    def test_expected_unique_users(self):
        proc = SessionProcess(hourly_rate=50.0)
        assert proc.expected_unique_users(2.5 * 3600.0) == pytest.approx(125.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionProcess(hourly_rate=0.0)
        with pytest.raises(ValueError):
            SessionProcess(hourly_rate=10.0, diurnal_profile=(1.0,) * 23)
        with pytest.raises(ValueError):
            SessionProcess(hourly_rate=10.0, diurnal_profile=(0.0,) * 24)
        with pytest.raises(ValueError):
            SessionProcess(hourly_rate=10.0, revisit_probability=1.0)


class TestRevisits:
    def test_revisits_share_user_id(self, rng):
        proc = SessionProcess(hourly_rate=30.0, revisit_probability=0.5)
        visits = proc.schedule(6 * 3600.0, rng)
        by_user = {}
        for v in visits:
            by_user.setdefault(v.user_id, []).append(v)
        multi = [vs for vs in by_user.values() if len(vs) > 1]
        assert multi, "expected at least one returning user"

    def test_revisits_never_overlap(self, rng):
        proc = SessionProcess(hourly_rate=30.0, revisit_probability=0.6)
        visits = proc.schedule(6 * 3600.0, rng)
        by_user = {}
        for v in visits:
            by_user.setdefault(v.user_id, []).append(v)
        for vs in by_user.values():
            vs.sort(key=lambda v: v.arrival_time)
            for prev, cur in zip(vs, vs[1:]):
                assert cur.arrival_time > prev.departure_time

    def test_mean_visits_per_user(self):
        proc = SessionProcess(hourly_rate=10.0, revisit_probability=0.5)
        assert proc.mean_visits_per_user == pytest.approx(2.0)

    def test_visit_volume_scales_with_revisits(self, rng):
        base = SessionProcess(hourly_rate=50.0)
        returning = SessionProcess(hourly_rate=50.0, revisit_probability=0.5)
        n_base = len(base.schedule(12 * 3600.0, np.random.default_rng(2)))
        n_returning = len(returning.schedule(12 * 3600.0, np.random.default_rng(2)))
        assert n_returning > 1.3 * n_base


class TestVisitIterator:
    def test_yields_due_in_order(self):
        visits = [PlannedVisit("b", 20.0, 5.0), PlannedVisit("a", 10.0, 5.0)]
        it = VisitIterator(visits)
        assert [v.user_id for v in it.due(15.0)] == ["a"]
        assert [v.user_id for v in it.due(25.0)] == ["b"]
        assert it.exhausted
