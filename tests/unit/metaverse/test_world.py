"""Unit tests for repro.metaverse.world."""

import numpy as np
import pytest

from repro.geometry import Position, distance
from repro.metaverse import (
    Avatar,
    Land,
    Population,
    ScheduledEvent,
    SessionProcess,
    World,
)
from repro.mobility import PoiMobility, PointOfInterest, RandomWaypoint, StaticModel


def _population(rate=120.0, revisit=0.0, prefix="user"):
    return Population(
        prefix,
        SessionProcess(hourly_rate=rate, revisit_probability=revisit, user_prefix=prefix),
        RandomWaypoint(256.0, 256.0),
    )


def _world(**kwargs):
    land = kwargs.pop("land", Land("Test"))
    pops = kwargs.pop("populations", [_population()])
    return World(land, pops, **kwargs)


class TestClock:
    def test_run_until_advances(self):
        world = _world(seed=1)
        world.run_until(100.0)
        assert world.now == pytest.approx(100.0)

    def test_cannot_run_backwards(self):
        world = _world(seed=1)
        world.run_until(50.0)
        with pytest.raises(ValueError, match="backwards"):
            world.run_until(10.0)

    def test_start_time_offsets_clock(self):
        world = _world(seed=1, start_time=7200.0)
        assert world.now == 7200.0
        world.run_until(7210.0)
        assert world.now == pytest.approx(7210.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one population"):
            World(Land("X"), [])
        with pytest.raises(ValueError, match="dt"):
            _world(dt=0.0)
        with pytest.raises(ValueError, match="start time"):
            _world(start_time=-5.0)


class TestPopulationFlow:
    def test_logins_accumulate(self):
        world = _world(seed=2)
        world.run_until(1800.0)
        assert world.stats.logins > 20
        assert world.online_count > 0

    def test_logouts_follow_sessions(self):
        world = _world(seed=3)
        world.run_until(4 * 3600.0)
        assert world.stats.logouts > 0
        assert world.online_count == world.stats.logins - world.stats.logouts

    def test_capacity_cap_enforced(self):
        land = Land("Tiny", max_concurrent=5)
        world = _world(land=land, populations=[_population(rate=600.0)], seed=4)
        world.run_until(3600.0)
        assert world.online_count <= 5
        assert world.stats.rejected_at_capacity > 0

    def test_avatars_stay_on_land(self):
        world = _world(seed=5)
        world.run_until(600.0)
        for avatar in world.online_avatars():
            assert world.land.contains(avatar.position)

    def test_multiple_populations_mix(self):
        pops = [_population(prefix="a"), _population(prefix="b")]
        world = _world(populations=pops, seed=6)
        world.run_until(1800.0)
        prefixes = {av.user_id.split("-")[0] for av in world.online_avatars()}
        assert prefixes == {"a", "b"}

    def test_deterministic_given_seed(self):
        def run(seed):
            world = _world(seed=seed)
            world.run_until(900.0)
            return sorted(
                (av.user_id, round(av.position.x, 6), round(av.position.y, 6))
                for av in world.online_avatars()
            )

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_revisiting_user_returns_with_same_id(self):
        pops = [
            Population(
                "r",
                SessionProcess(
                    hourly_rate=200.0,
                    revisit_probability=0.6,
                    user_prefix="r",
                ),
                RandomWaypoint(256.0, 256.0),
            )
        ]
        world = _world(populations=pops, seed=9)
        world.run_until(6 * 3600.0)
        # More logins than distinct users means re-logins happened.
        assert world.stats.logins > len(world._avatars)


class TestEvents:
    def _event_world(self, seed=10):
        venue = PointOfInterest("stage", 128.0, 128.0, radius=15.0, weight=1.0)
        land = Land("E", pois=[venue])
        model = PoiMobility(256.0, 256.0, [venue])
        event = ScheduledEvent("party", start=600.0, end=1800.0, venue=venue,
                               arrival_boost=4.0)
        pop = Population("visitors", SessionProcess(hourly_rate=60.0), model)
        return World(land, [pop], events=(event,), seed=seed)

    def test_event_boosts_arrivals(self):
        world = self._event_world()
        world.run_until(600.0)
        before = world.stats.logins
        world.run_until(1800.0)
        during = world.stats.logins - before
        world.run_until(3000.0)
        after = world.stats.logins - before - during
        # 1200 s of event vs 1200 s after it: boost 4 means ~4x logins.
        assert during > 2.0 * after

    def test_event_boost_function(self):
        world = self._event_world()
        assert world._event_boost(700.0) == 4.0
        assert world._event_boost(1800.0) == 1.0


class TestObservers:
    def test_observer_not_in_snapshot(self):
        world = _world(seed=11)
        crawler_avatar = Avatar(
            "crawler", StaticModel(256.0, 256.0, anchor=Position(128.0, 128.0)),
            Position(128.0, 128.0),
        )
        world.add_observer(crawler_avatar, conspicuous=False)
        world.run_until(60.0)
        assert "crawler" not in world.snapshot_positions()
        assert "crawler" in world.snapshot_positions(include_observers=True)

    def test_duplicate_observer_rejected(self):
        world = _world(seed=12)
        avatar = Avatar("c", StaticModel(256.0, 256.0), Position(1, 1))
        world.add_observer(avatar, conspicuous=False)
        with pytest.raises(ValueError, match="already present"):
            world.add_observer(avatar, conspicuous=False)

    def test_remove_observer(self):
        world = _world(seed=13)
        avatar = Avatar("c", StaticModel(256.0, 256.0), Position(1, 1))
        world.add_observer(avatar, conspicuous=False)
        world.remove_observer("c")
        assert world.observer_avatars() == []


class TestAttraction:
    def test_conspicuous_observer_attracts(self):
        world = _world(seed=14, attraction_probability=0.05)
        magnet = Avatar(
            "naive-crawler",
            StaticModel(256.0, 256.0, anchor=Position(128.0, 128.0)),
            Position(128.0, 128.0),
        )
        world.add_observer(magnet, conspicuous=True)
        world.run_until(1800.0)
        assert world.stats.attraction_redirects > 0

    def test_mimicking_observer_does_not_attract(self):
        world = _world(seed=14, attraction_probability=0.05)
        blend_in = Avatar(
            "mimic-crawler", RandomWaypoint(256.0, 256.0), Position(128.0, 128.0)
        )
        world.add_observer(blend_in, conspicuous=False)
        world.run_until(1800.0)
        assert world.stats.attraction_redirects == 0

    def test_attraction_pulls_users_closer(self):
        def mean_distance_to_center(attraction):
            world = _world(seed=15, attraction_probability=attraction)
            magnet = Avatar(
                "crawler",
                StaticModel(256.0, 256.0, anchor=Position(128.0, 128.0)),
                Position(128.0, 128.0),
            )
            world.add_observer(magnet, conspicuous=attraction > 0)
            world.run_until(3600.0)
            avatars = world.online_avatars()
            return np.mean(
                [distance(av.position, Position(128.0, 128.0)) for av in avatars]
            )

        assert mean_distance_to_center(0.05) < mean_distance_to_center(0.0)
