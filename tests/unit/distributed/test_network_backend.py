"""The network backend must be bit-for-bit the serial oracle.

The acceptance bar for ``backend="network"``: every analysis family,
fanned over real ``slmob worker`` subprocesses attached to the
coordinator over loopback HTTP, produces **exactly** the unsharded
extractors' results — at any worker count, and under fault injection
(a worker killed after claiming a task, a straggler whose lease
expires under it).  Nothing is mocked: workers are spawned through
the real CLI entry point (``python -m repro worker <url>``), fetch
their part files over HTTP, and stream pickled payloads back.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import (
    LiveAnalyzer,
    ShardedAnalyzer,
    TraceAnalyzer,
    extract_contacts,
    losgraph,
)
from repro.core.parallel import (
    SCHEDULER_BACKENDS,
    PartAnalysisError,
    PartScheduler,
)
from repro.core.windowed import WindowedAnalyzer
from repro.distributed import NetworkOptions, NetworkTaskError
from repro.trace import (
    RtrcDirAppender,
    extract_sessions,
    write_trace_rtrc,
)
from tests.unit.core.test_sharded_equivalence import churn_trace

RADII = (6.0, 15.0, 80.0)
R = 10.0


@pytest.fixture(scope="module")
def trace():
    return churn_trace(17)


def spawn_worker(url, chaos=None, poll=0.02):
    """One real CLI worker process; chaos rides in via the env hook."""
    env = dict(os.environ)
    if chaos:
        env["SLMOB_WORKER_CHAOS"] = chaos
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", url, "--quiet",
         "--poll", str(poll)],
        env=env,
    )


def reap(*procs, timeout=20.0):
    """Wait for workers to notice the coordinator is gone and exit."""
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise


class TestEquivalence:
    """Bit-identical results at 1, 2, and 4 spawned workers."""

    @pytest.fixture(
        scope="class", params=(1, 2, 4), ids=lambda w: f"w{w}"
    )
    def analyzer(self, request, trace):
        options = NetworkOptions(spawn_workers=request.param)
        with ShardedAnalyzer(
            trace, 5, backend="network", network=options
        ) as sharded:
            yield sharded

    def test_contacts(self, analyzer, trace):
        assert analyzer.contacts(R) == extract_contacts(trace, R)

    def test_contacts_multirange(self, analyzer, trace):
        result = analyzer.contacts_multirange(RADII)
        for r, contacts in result.items():
            assert contacts == extract_contacts(trace, r)

    def test_sessions(self, analyzer, trace):
        assert analyzer.sessions() == extract_sessions(trace)

    def test_degree_samples(self, analyzer, trace):
        expected = np.asarray(
            losgraph.degree_samples(trace, R, 2), dtype=np.int64
        )
        assert np.array_equal(analyzer.degree_array(R, 2), expected)

    def test_clustering_samples(self, analyzer, trace):
        expected = np.asarray(
            losgraph.clustering_series(trace, R, 3), dtype=np.float64
        )
        assert np.array_equal(analyzer.clustering_array(R, 3), expected)


class TestLiveShardDir:
    def test_follower_backfill_over_round_files(self, tmp_path, trace):
        # A shard-dir follower's committed round files double as the
        # network backend's part files — workers fetch them over HTTP
        # and the merged catch-up equals the serial whole-trace result.
        root = tmp_path / "rounds"
        cols = trace.columns
        edges = np.linspace(0, cols.snapshot_count, 7).astype(int)
        with RtrcDirAppender(root, trace.metadata) as appender:
            for lo, hi in zip(edges[:-1], edges[1:]):
                for index in range(int(lo), int(hi)):
                    a, b = (
                        cols.snapshot_offsets[index],
                        cols.snapshot_offsets[index + 1],
                    )
                    appender.append_snapshot(
                        float(cols.times[index]), cols.names_of(index),
                        cols.xyz[a:b],
                    )
                appender.commit()
        options = NetworkOptions(spawn_workers=2)
        with LiveAnalyzer(root, backend="network", network=options) as live:
            live.refresh()
            assert live.contacts(R) == extract_contacts(trace, R)
            assert live.sessions() == extract_sessions(trace)


class TestFaultInjection:
    def test_worker_killed_after_claim_is_reassigned(self, trace):
        # The doomed worker claims a task and dies holding the lease;
        # the deadline expires, the task re-enters the queue, and the
        # healthy worker finishes it — results still bit-identical.
        options = NetworkOptions(
            spawn_workers=0, task_deadline=0.6, max_attempts=5
        )
        with ShardedAnalyzer(
            trace, 4, backend="network", network=options
        ) as analyzer:
            url = analyzer.network_url()
            doomed = spawn_worker(url, chaos="exit-after-claim")
            time.sleep(0.4)
            healthy = spawn_worker(url)
            assert analyzer.contacts(R) == extract_contacts(trace, R)
            stats = analyzer._scheduler._netexec.stats
            assert stats.leases_expired >= 1
            assert stats.tasks_completed == 4
            doomed.wait(timeout=10)
            assert doomed.returncode == 17  # the chaos hook's os._exit
        reap(healthy)

    def test_straggler_redispatched_and_late_result_discarded(self, trace):
        options = NetworkOptions(
            spawn_workers=0, task_deadline=0.4, max_attempts=5
        )
        with ShardedAnalyzer(
            trace, 4, backend="network", network=options
        ) as analyzer:
            url = analyzer.network_url()
            straggler = spawn_worker(url, chaos="sleep-after-claim:1.5")
            time.sleep(0.2)
            healthy = spawn_worker(url)
            assert analyzer.sessions() == extract_sessions(trace)
            executor = analyzer._scheduler._netexec
            assert executor.stats.leases_expired >= 1
            # The straggler wakes up and reports a lease that was
            # re-dispatched long ago; first-write-wins drops it.
            deadline = time.monotonic() + 10.0
            while (
                executor.stats.late_results == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert executor.stats.late_results >= 1
        reap(straggler, healthy)

    def test_worker_exception_fails_fast_without_retries(self, tmp_path, trace):
        # A deterministic worker-side exception (unknown task kind)
        # must fail the run immediately — re-dispatching an input that
        # crashes deterministically would just burn every lease.
        part = write_trace_rtrc(trace, tmp_path / "part.rtrc")
        options = NetworkOptions(spawn_workers=1, task_deadline=30.0)
        scheduler = PartScheduler("network", network=options)
        try:
            with pytest.raises(PartAnalysisError) as err:
                scheduler.run(
                    "no-such-kind",
                    [(0, ()), (1, ())],
                    part_trace=lambda i: trace,
                    part_path=lambda i: part,
                    names=lambda: trace.columns.users.names,
                )
            assert isinstance(err.value.__cause__, NetworkTaskError)
            stats = scheduler._netexec.stats
            assert stats.tasks_failed >= 1
            assert stats.leases_expired == 0
        finally:
            scheduler.close()


class TestSurface:
    def test_network_is_a_scheduler_backend(self):
        assert "network" in SCHEDULER_BACKENDS

    def test_network_url_requires_the_network_backend(self):
        scheduler = PartScheduler("thread")
        with pytest.raises(ValueError, match="network"):
            scheduler.network_url()
        scheduler.close()

    def test_closed_scheduler_refuses_coordinator(self):
        scheduler = PartScheduler("network")
        scheduler.close()
        with pytest.raises(ValueError, match="closed"):
            scheduler.network_url()

    def test_unsharded_trace_analyzer_has_no_coordinator(self, trace):
        with TraceAnalyzer(trace, shards=1, backend="network") as analyzer:
            with pytest.raises(ValueError, match="shards"):
                analyzer.network_url()

    def test_windowed_analyzer_accepts_the_backend(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "w.rtrc")
        options = NetworkOptions(spawn_workers=2)
        with WindowedAnalyzer(
            path, 100.0, backend="network", network=options
        ) as windowed:
            assert windowed.contacts(R) == extract_contacts(trace, R)

    def test_coordinator_status_endpoint(self, trace):
        import json
        import urllib.request

        options = NetworkOptions(spawn_workers=0)
        scheduler = PartScheduler("network", network=options)
        try:
            url = scheduler.network_url()
            with urllib.request.urlopen(url, timeout=10) as response:
                doc = json.loads(response.read())
            assert doc["kind"] == "coordinator"
            assert doc["pending"] == 0
        finally:
            scheduler.close()
