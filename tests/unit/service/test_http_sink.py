"""Unit tests for repro.service.client: the HTTP crawl sink.

The headline claim: a shard directory populated through
:class:`~repro.service.HttpRoundSink` → ``POST /v1/<store>/rounds`` is
**bit-for-bit** the store a local
:class:`~repro.trace.RtrcDirAppender` would have written from the
same snapshots — positions survive the JSON round trip exactly
(shortest-round-trip float ``repr``), commit boundaries map one to
one, and the user table interns in the same order.
"""

import threading
import time

import numpy as np
import pytest

from repro.service import HttpRoundSink, QueryService, ServiceRejectedRound
from repro.trace import (
    RtrcDirAppender,
    concat_shards,
    list_rtrc_dir,
    random_walk_trace,
    read_rtrc_dir,
)


@pytest.fixture(scope="module")
def trace():
    return random_walk_trace(11, 24, np.random.default_rng(3), tau=10.0)


def stream(sink, trace, rounds):
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for index in range(int(lo), int(hi)):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            sink.append_snapshot(
                float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
            )
        sink.commit()


class TestBitIdenticalIngest:
    def test_http_ingested_store_equals_local_appender(self, tmp_path, trace):
        local = tmp_path / "local"
        with RtrcDirAppender(local) as appender:
            appender.metadata = trace.metadata
            stream(appender, trace, 4)

        remote = tmp_path / "remote"
        with QueryService({"crawl": remote}, ingest=True) as service:
            host, port = service.start()
            with HttpRoundSink(f"http://{host}:{port}/v1/crawl") as sink:
                sink.metadata = trace.metadata
                stream(sink, trace, 4)
            assert sink.rounds_posted == 4
            assert sink.snapshot_count == len(trace)

        # Same commit boundaries: one shard file per posted round.
        assert list_rtrc_dir(local) == list_rtrc_dir(remote)
        a = concat_shards(read_rtrc_dir(local))
        b = concat_shards(read_rtrc_dir(remote))
        assert a.metadata == b.metadata
        assert a.columns.users.names == b.columns.users.names
        assert np.array_equal(a.columns.times, b.columns.times)
        assert np.array_equal(a.columns.snapshot_offsets, b.columns.snapshot_offsets)
        assert np.array_equal(a.columns.user_ids, b.columns.user_ids)
        # The headline bit: float64 positions survive the JSON trip.
        assert np.array_equal(a.columns.xyz, b.columns.xyz)

    def test_awkward_floats_survive_the_json_round_trip(self, tmp_path):
        # Values with no short decimal form — thirds, tiny subnormal
        # offsets, repr-roundtrip corner cases.
        xyz = np.array(
            [[1.0 / 3.0, 2.0 / 3.0, 0.1 + 0.2], [1e-308, 255.00000000000003, 1e16]]
        )
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            with HttpRoundSink(f"http://{host}:{port}/v1/crawl") as sink:
                sink.append_snapshot(0.1 + 0.7, ["a", "b"], xyz)
                sink.commit()
        trace = concat_shards(read_rtrc_dir(tmp_path / "r"))
        assert trace.columns.times[0] == 0.1 + 0.7
        assert np.array_equal(trace.columns.xyz, xyz)


class TestSinkBehavior:
    def test_empty_commit_posts_nothing(self, tmp_path):
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            with HttpRoundSink(f"http://{host}:{port}/v1/crawl") as sink:
                sink.commit()
                sink.commit()
            assert sink.rounds_posted == 0
            assert service.stats.ingested_rounds == 0

    def test_close_flushes_the_pending_round(self, tmp_path):
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            sink = HttpRoundSink(f"http://{host}:{port}/v1/crawl")
            sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.close()
            assert sink.rounds_posted == 1
            with pytest.raises(ValueError, match="closed"):
                sink.append_snapshot(2.0, ["a"], [[0.0, 0.0, 0.0]])

    def test_rejected_round_raises_with_server_message(self, tmp_path):
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            sink = HttpRoundSink(f"http://{host}:{port}/v1/crawl", retries=0)
            sink.append_snapshot(10.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.commit()
            sink.append_snapshot(5.0, ["a"], [[0.0, 0.0, 0.0]])
            with pytest.raises(ServiceRejectedRound, match="strictly increasing"):
                sink.commit()

    def test_budget_rejection_is_retried(self, tmp_path):
        clock_now = [0.0]
        service = QueryService(
            {"crawl": tmp_path / "r"},
            ingest=True,
            ingest_budget=1,
            clock=lambda: clock_now[0],
        )
        with service:
            host, port = service.start()
            sink = HttpRoundSink(f"http://{host}:{port}/v1/crawl", retry_wait=0.05)
            sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.commit()

            def free_the_window():
                time.sleep(0.3)
                clock_now[0] = 61.0

            threading.Thread(target=free_the_window).start()
            sink.append_snapshot(2.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.commit()  # 429 first, then succeeds after the window slides
            assert sink.rounds_posted == 2
            assert service.stats.ingest_rejected >= 1
