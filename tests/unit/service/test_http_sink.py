"""Unit tests for repro.service.client: the HTTP crawl sink.

The headline claim: a shard directory populated through
:class:`~repro.service.HttpRoundSink` → ``POST /v1/<store>/rounds`` is
**bit-for-bit** the store a local
:class:`~repro.trace.RtrcDirAppender` would have written from the
same snapshots — positions survive the JSON round trip exactly
(shortest-round-trip float ``repr``), commit boundaries map one to
one, and the user table interns in the same order.
"""

import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.service import (
    HttpRoundSink,
    QueryService,
    ServiceRejectedRound,
    ServiceUnreachable,
)
from repro.trace import (
    RtrcDirAppender,
    concat_shards,
    list_rtrc_dir,
    random_walk_trace,
    read_rtrc_dir,
)


@pytest.fixture(scope="module")
def trace():
    return random_walk_trace(11, 24, np.random.default_rng(3), tau=10.0)


def stream(sink, trace, rounds):
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for index in range(int(lo), int(hi)):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            sink.append_snapshot(
                float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
            )
        sink.commit()


class TestBitIdenticalIngest:
    def test_http_ingested_store_equals_local_appender(self, tmp_path, trace):
        local = tmp_path / "local"
        with RtrcDirAppender(local) as appender:
            appender.metadata = trace.metadata
            stream(appender, trace, 4)

        remote = tmp_path / "remote"
        with QueryService({"crawl": remote}, ingest=True) as service:
            host, port = service.start()
            with HttpRoundSink(f"http://{host}:{port}/v1/crawl") as sink:
                sink.metadata = trace.metadata
                stream(sink, trace, 4)
            assert sink.rounds_posted == 4
            assert sink.snapshot_count == len(trace)

        # Same commit boundaries: one shard file per posted round.
        assert list_rtrc_dir(local) == list_rtrc_dir(remote)
        a = concat_shards(read_rtrc_dir(local))
        b = concat_shards(read_rtrc_dir(remote))
        assert a.metadata == b.metadata
        assert a.columns.users.names == b.columns.users.names
        assert np.array_equal(a.columns.times, b.columns.times)
        assert np.array_equal(a.columns.snapshot_offsets, b.columns.snapshot_offsets)
        assert np.array_equal(a.columns.user_ids, b.columns.user_ids)
        # The headline bit: float64 positions survive the JSON trip.
        assert np.array_equal(a.columns.xyz, b.columns.xyz)

    def test_awkward_floats_survive_the_json_round_trip(self, tmp_path):
        # Values with no short decimal form — thirds, tiny subnormal
        # offsets, repr-roundtrip corner cases.
        xyz = np.array(
            [[1.0 / 3.0, 2.0 / 3.0, 0.1 + 0.2], [1e-308, 255.00000000000003, 1e16]]
        )
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            with HttpRoundSink(f"http://{host}:{port}/v1/crawl") as sink:
                sink.append_snapshot(0.1 + 0.7, ["a", "b"], xyz)
                sink.commit()
        trace = concat_shards(read_rtrc_dir(tmp_path / "r"))
        assert trace.columns.times[0] == 0.1 + 0.7
        assert np.array_equal(trace.columns.xyz, xyz)


class TestSinkBehavior:
    def test_empty_commit_posts_nothing(self, tmp_path):
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            with HttpRoundSink(f"http://{host}:{port}/v1/crawl") as sink:
                sink.commit()
                sink.commit()
            assert sink.rounds_posted == 0
            assert service.stats.ingested_rounds == 0

    def test_close_flushes_the_pending_round(self, tmp_path):
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            sink = HttpRoundSink(f"http://{host}:{port}/v1/crawl")
            sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.close()
            assert sink.rounds_posted == 1
            with pytest.raises(ValueError, match="closed"):
                sink.append_snapshot(2.0, ["a"], [[0.0, 0.0, 0.0]])

    def test_rejected_round_raises_with_server_message(self, tmp_path):
        with QueryService({"crawl": tmp_path / "r"}, ingest=True) as service:
            host, port = service.start()
            sink = HttpRoundSink(f"http://{host}:{port}/v1/crawl", retries=0)
            sink.append_snapshot(10.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.commit()
            sink.append_snapshot(5.0, ["a"], [[0.0, 0.0, 0.0]])
            with pytest.raises(ServiceRejectedRound, match="strictly increasing"):
                sink.commit()

    def test_budget_rejection_is_retried(self, tmp_path):
        clock_now = [0.0]
        service = QueryService(
            {"crawl": tmp_path / "r"},
            ingest=True,
            ingest_budget=1,
            clock=lambda: clock_now[0],
        )
        with service:
            host, port = service.start()
            sink = HttpRoundSink(f"http://{host}:{port}/v1/crawl", retry_wait=0.05)
            sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.commit()

            def free_the_window():
                time.sleep(0.3)
                clock_now[0] = 61.0

            threading.Thread(target=free_the_window).start()
            sink.append_snapshot(2.0, ["a"], [[0.0, 0.0, 0.0]])
            sink.commit()  # 429 first, then succeeds after the window slides
            assert sink.rounds_posted == 2
            assert service.stats.ingest_rejected >= 1


class _FlakyFront(BaseHTTPRequestHandler):
    """Proxy in front of a real service that injects one failure mode
    per request according to the server's ``plan`` (then passes)."""

    protocol_version = "HTTP/1.1"

    def do_POST(self):
        body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
        plan = self.server.plan
        mode = plan.pop(0) if plan else "pass"
        self.server.seen.append(mode)
        if mode in ("502", "503"):
            payload = b'{"error": "upstream momentarily gone"}'
            self.send_response(int(mode))
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        if mode == "drop":
            # Abrupt close before any status line: the client sees a
            # connection reset / RemoteDisconnected, not an HTTPError.
            self.connection.close()
            return
        if mode == "400":
            payload = b'{"error": "malformed round"}'
            self.send_response(400)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        request = urllib.request.Request(
            self.server.upstream + self.path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status, out = response.status, response.read()
        except urllib.error.HTTPError as exc:
            status, out = exc.code, exc.read()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(out)))
        self.end_headers()
        self.wfile.write(out)

    def log_message(self, format, *args):
        pass


@pytest.fixture()
def flaky_front():
    """A flaky proxy server factory bound to an ephemeral port."""
    servers = []

    def start(upstream, plan):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyFront)
        server.daemon_threads = True
        server.upstream = upstream
        server.plan = list(plan)
        server.seen = []
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        host, port = server.server_address[:2]
        return server, f"http://{host}:{port}/v1/crawl"

    yield start
    for server in servers:
        server.shutdown()
        server.server_close()


class TestTransientFailures:
    def test_transient_failures_retried_store_bit_identical(
        self, tmp_path, trace, flaky_front
    ):
        # Every round's first attempt fails a different way (503, 502,
        # abrupt connection drop); the retried crawl must still build
        # the exact store a clean local appender would have.
        local = tmp_path / "local"
        with RtrcDirAppender(local) as appender:
            appender.metadata = trace.metadata
            stream(appender, trace, 4)

        remote = tmp_path / "remote"
        with QueryService({"crawl": remote}, ingest=True) as service:
            host, port = service.start()
            _, url = flaky_front(
                f"http://{host}:{port}",
                ["503", "pass", "drop", "pass", "502", "pass", "drop", "pass"],
            )
            with HttpRoundSink(url, retry_wait=0.01) as sink:
                sink.metadata = trace.metadata
                stream(sink, trace, 4)
            assert sink.rounds_posted == 4

        assert list_rtrc_dir(local) == list_rtrc_dir(remote)
        a = concat_shards(read_rtrc_dir(local))
        b = concat_shards(read_rtrc_dir(remote))
        assert a.columns.users.names == b.columns.users.names
        assert np.array_equal(a.columns.times, b.columns.times)
        assert np.array_equal(a.columns.xyz, b.columns.xyz)

    def test_nonretryable_4xx_raises_immediately(self, tmp_path, flaky_front):
        server, url = flaky_front("http://127.0.0.1:9", ["400", "400", "400"])
        sink = HttpRoundSink(url, retry_wait=0.01)
        sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
        with pytest.raises(ServiceRejectedRound, match="malformed round"):
            sink.commit()
        # One request only: a 400 does not become valid by retrying.
        assert server.seen == ["400"]

    def test_exhausted_transient_status_surfaces_server_verdict(
        self, tmp_path, flaky_front
    ):
        server, url = flaky_front("http://127.0.0.1:9", ["503"] * 10)
        sink = HttpRoundSink(url, retries=2, retry_wait=0.01)
        sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
        with pytest.raises(ServiceRejectedRound, match="momentarily gone"):
            sink.commit()
        assert server.seen == ["503"] * 3  # first attempt + 2 retries

    def test_unreachable_endpoint_raises_service_unreachable(self):
        # Bind-then-close guarantees a port nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sink = HttpRoundSink(
            f"http://127.0.0.1:{port}/v1/crawl", retries=2, retry_wait=0.01
        )
        sink.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
        with pytest.raises(ServiceUnreachable) as err:
            sink.commit()
        assert err.value.attempts == 3
