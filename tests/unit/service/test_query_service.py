"""Unit tests for repro.service: the mobility-analytics query service.

The load-bearing claims, each pinned here:

* every query endpoint's response bytes over a live follower are
  **bit-identical** to a payload built from a whole-trace
  :class:`~repro.core.TraceAnalyzer` over the same committed prefix,
  through the shared :mod:`repro.service.encoding` functions;
* a replayed query with ``If-None-Match`` gets ``304`` until the next
  commit bumps the generation ETag;
* a compaction racing the service degrades to a re-opened follower
  (new generation in the ETag), never a dead server;
* the ingest path enforces the modeled platform limits (body size,
  sliding-window request budget) and validates rounds before touching
  the appender;
* queries racing HTTP ingest always observe a consistent committed
  prefix.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import TraceAnalyzer, losgraph
from repro.service import QueryService, etag_matches
from repro.service.encoding import (
    contacts_payload,
    encode,
    samples_payload,
    sessions_payload,
)
from repro.trace import (
    RtrcDirAppender,
    Trace,
    compact_shard_dir,
    random_walk_trace,
)

R = 12.0


@pytest.fixture(scope="module")
def trace():
    return random_walk_trace(14, 36, np.random.default_rng(42), tau=10.0)


def stream_rounds(appender, trace, rounds):
    """Append ``trace`` in ``rounds`` commits; yields the prefix length."""
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for index in range(int(lo), int(hi)):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            appender.append_snapshot(
                float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
            )
        appender.commit()
        yield int(hi)


@pytest.fixture()
def store(tmp_path, trace):
    root = tmp_path / "crawl"
    with RtrcDirAppender(root, trace.metadata) as appender:
        for _ in stream_rounds(appender, trace, 3):
            pass
    return root


def fetch(url, etag=None, method="GET", body=None):
    """One HTTP exchange as ``(status, headers, bytes)``; no raising."""
    headers = {"If-None-Match": etag} if etag else {}
    if body is not None:
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=body, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def round_body(times, names, blocks, metadata=None):
    document = {
        "snapshots": [
            {"t": t, "users": users, "xyz": np.asarray(xyz).tolist()}
            for t, users, xyz in zip(times, names, blocks)
        ]
    }
    if metadata is not None:
        document["metadata"] = metadata
    return json.dumps(document).encode()


class TestEquivalence:
    """Service bytes == encoding over a whole-trace TraceAnalyzer."""

    def test_every_endpoint_bit_identical_to_trace_analyzer(self, store, trace):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            base = f"http://{host}:{port}/v1/crawl"
            oracle = TraceAnalyzer(trace)
            n = len(trace)
            expected = {
                f"{base}/contacts?r={R:g}": contacts_payload(
                    oracle.contact_set(R), store="crawl", snapshots=n, r=R
                ),
                f"{base}/sessions": sessions_payload(
                    oracle.session_set(),
                    store="crawl",
                    snapshots=n,
                    gap=2.0 * trace.metadata.tau,
                ),
                f"{base}/zones?cell=20&every=2": samples_payload(
                    "zones",
                    oracle.zone_array(20.0, 2),
                    store="crawl",
                    snapshots=n,
                    params={"cell": 20.0, "every": 2},
                ),
                f"{base}/graph/degrees?r={R:g}&every=2": samples_payload(
                    "degrees",
                    oracle.degree_array(R, 2),
                    store="crawl",
                    snapshots=n,
                    params={"r": R, "every": 2},
                ),
                f"{base}/graph/diameters?r={R:g}&every=3": samples_payload(
                    "diameters",
                    np.asarray(losgraph.diameter_series(trace, R, 3)),
                    store="crawl",
                    snapshots=n,
                    params={"r": R, "every": 3},
                ),
                f"{base}/graph/clustering?r={R:g}&every=3": samples_payload(
                    "clustering",
                    np.asarray(losgraph.clustering_series(trace, R, 3)),
                    store="crawl",
                    snapshots=n,
                    params={"r": R, "every": 3},
                ),
            }
            for url, payload in expected.items():
                status, _, body = fetch(url)
                assert status == 200, (url, body)
                assert body == encode(payload), url

    def test_equivalence_holds_per_committed_prefix(self, tmp_path, trace):
        # The service answers over the committed prefix after every
        # round, exactly as a full recompute of that prefix would.
        root = tmp_path / "growing"
        with RtrcDirAppender(root, trace.metadata) as appender:
            with QueryService({"crawl": root}) as service:
                host, port = service.start()
                url = f"http://{host}:{port}/v1/crawl/contacts?r={R:g}"
                for prefix_len in stream_rounds(appender, trace, 3):
                    oracle = TraceAnalyzer(
                        Trace.from_columns(
                            trace.columns.slice_snapshots(0, prefix_len),
                            trace.metadata,
                        )
                    )
                    status, _, body = fetch(url)
                    assert status == 200
                    assert body == encode(
                        contacts_payload(
                            oracle.contact_set(R),
                            store="crawl",
                            snapshots=prefix_len,
                            r=R,
                        )
                    )

    def test_repeat_query_is_a_cache_hit(self, store):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/contacts?r={R:g}"
            _, _, first = fetch(url)
            _, _, second = fetch(url)
            assert first == second
            assert service.stats.cache_hits == 1
            assert service.stats.recomputes == 1

    def test_cache_results_false_recomputes_every_time(self, store):
        with QueryService({"crawl": store}, cache_results=False) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/contacts?r={R:g}"
            _, _, first = fetch(url)
            _, _, second = fetch(url)
            assert first == second
            assert service.stats.cache_hits == 0
            assert service.stats.recomputes == 2


class TestEtag:
    def test_if_none_match_304_until_next_commit(self, tmp_path, trace):
        root = tmp_path / "tagged"
        appender = RtrcDirAppender(root, trace.metadata)
        rounds = stream_rounds(appender, trace, 2)
        next(rounds)
        with QueryService({"crawl": root}) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/contacts?r={R:g}"
            status, headers, _ = fetch(url)
            etag = headers["ETag"]
            assert status == 200
            # Replays are 304 while nothing is committed.
            for _ in range(3):
                status, headers, body = fetch(url, etag=etag)
                assert (status, body) == (304, b"")
                assert headers["ETag"] == etag
            # An external producer commits one more round: the same
            # If-None-Match now misses and the tag moves.
            next(rounds)
            status, headers, body = fetch(url, etag=etag)
            assert status == 200
            assert headers["ETag"] != etag
            assert json.loads(body)["snapshots"] == len(trace)
        appender.close()

    def test_etag_moves_on_observation_free_rounds(self, tmp_path, trace):
        # A round of empty snapshots ("the land was empty") adds no
        # contacts but is a commit; the tag must move so clients
        # observe the store's progress.
        root = tmp_path / "empty-rounds"
        appender = RtrcDirAppender(root, trace.metadata)
        with QueryService({"crawl": root}) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/contacts?r=10"
            _, headers, _ = fetch(url)
            first = headers["ETag"]
            appender.append_snapshot(5.0, [], np.empty((0, 3)))
            appender.commit()
            _, headers, body = fetch(url, etag=first)
            assert headers["ETag"] != first
            assert json.loads(body)["count"] == 0
        appender.close()

    def test_if_none_match_handles_rfc7232_forms(self, store):
        # Caches send everything they hold: comma-separated lists,
        # weak-comparison prefixes, and the bare wildcard all must
        # still short-circuit to 304 when the current tag is present.
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/contacts?r={R:g}"
            _, headers, _ = fetch(url)
            etag = headers["ETag"]
            for header in (
                f'"stale-1", {etag}, "stale-2"',
                f"W/{etag}",
                f'W/"stale", W/{etag}',
                "*",
            ):
                status, _, body = fetch(url, etag=header)
                assert (status, body) == (304, b""), header
            # A list without the current tag misses: full 200 replay.
            status, _, body = fetch(url, etag='"stale-1", W/"stale-2"')
            assert status == 200
            assert body

    def test_etag_matches_comparison_table(self):
        cases = [
            ('"g0-3"', '"g0-3"', True),
            ('W/"g0-3"', '"g0-3"', True),
            ('"g0-2", "g0-3"', '"g0-3"', True),
            ('W/"g0-2",W/"g0-3"', '"g0-3"', True),
            ("*", '"anything"', True),
            ('"g0-2"', '"g0-3"', False),
            ("", '"g0-3"', False),
            (",", '"g0-3"', False),
            ('"g0-3"', 'W/"g0-3"', True),
        ]
        for header, current, expected in cases:
            assert etag_matches(header, current) is expected, (header, current)

    def test_status_document_carries_etag(self, store, trace):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            status, headers, body = fetch(f"http://{host}:{port}/v1/crawl")
            assert status == 200
            doc = json.loads(body)
            assert doc["etag"] == headers["ETag"]
            assert doc["snapshots"] == len(trace)
            assert doc["metadata"]["tau"] == trace.metadata.tau


class TestCompactionDegrade:
    def test_compaction_between_queries_reopens_follower(self, store, trace):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/contacts?r={R:g}"
            status, headers, before = fetch(url)
            assert status == 200
            assert headers["ETag"].startswith('"g0-')
            compact_shard_dir(store, 1)
            # Same committed data, new generation: the service must
            # answer identically from a re-opened follower.
            status, headers, after = fetch(url)
            assert status == 200
            assert headers["ETag"].startswith('"g1-')
            assert json.loads(after)["contacts"] == json.loads(before)["contacts"]
            assert service.stats.reopened_followers == 1


class TestErrors:
    def test_unknown_store_and_routes_404(self, store):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            base = f"http://{host}:{port}"
            for path in ("/nope", "/v1/nope", "/v1/crawl/nope",
                         "/v1/crawl/graph/nope"):
                status, _, body = fetch(base + path)
                assert status == 404
                assert "error" in json.loads(body)

    def test_bad_parameters_400(self, store):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            base = f"http://{host}:{port}/v1/crawl"
            for path in ("/contacts", "/contacts?r=banana", "/contacts?r=-1",
                         "/zones?cell=20&every=0", "/contacts?r=10&bogus=1"):
                status, _, _ = fetch(base + path)
                assert status == 400, path

    def test_empty_store_samples_409(self, tmp_path, trace):
        root = tmp_path / "empty"
        with RtrcDirAppender(root, trace.metadata):
            pass
        with QueryService({"crawl": root}) as service:
            host, port = service.start()
            base = f"http://{host}:{port}/v1/crawl"
            # Contacts and sessions are well-defined (empty) results.
            assert fetch(f"{base}/contacts?r=10")[0] == 200
            status, _, body = fetch(f"{base}/zones?cell=20")
            assert status == 409
            assert "no snapshots" in json.loads(body)["error"]


class TestIngest:
    def test_post_commits_one_round_and_bumps_etag(self, tmp_path):
        root = tmp_path / "fresh"
        with QueryService({"crawl": root}, ingest=True) as service:
            host, port = service.start()
            base = f"http://{host}:{port}/v1/crawl"
            body = round_body(
                [0.0, 10.0],
                [["a", "b"], ["a"]],
                [[[0.0, 0, 0], [5.0, 0, 0]], [[1.0, 0, 0]]],
                metadata={"land_name": "Test Land", "tau": 10.0},
            )
            status, headers, reply = fetch(f"{base}/rounds", method="POST", body=body)
            assert status == 200, reply
            doc = json.loads(reply)
            assert doc["committed_snapshots"] == 2
            assert doc["committed_observations"] == 3
            assert doc["etag"] == headers["ETag"]
            status, _, reply = fetch(base)
            assert json.loads(reply)["snapshots"] == 2
            assert json.loads(reply)["metadata"]["land_name"] == "Test Land"

    def test_ingest_disabled_405(self, store):
        with QueryService({"crawl": store}) as service:
            host, port = service.start()
            status, _, _ = fetch(
                f"http://{host}:{port}/v1/crawl/rounds",
                method="POST",
                body=round_body([1e9], [["a"]], [[[0.0, 0, 0]]]),
            )
            assert status == 405

    def test_single_file_store_rejects_ingest(self, tmp_path, trace):
        from repro.trace import write_trace_rtrc

        path = tmp_path / "flat.rtrc"
        write_trace_rtrc(trace, path)
        with QueryService({"flat": path}, ingest=True) as service:
            host, port = service.start()
            status, _, body = fetch(
                f"http://{host}:{port}/v1/flat/rounds",
                method="POST",
                body=round_body([1e9], [["a"]], [[[0.0, 0, 0]]]),
            )
            assert status == 405
            assert "shard-directory" in json.loads(body)["error"]

    def test_invalid_round_documents_400(self, tmp_path):
        with QueryService({"crawl": tmp_path / "fresh"}, ingest=True) as service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/rounds"
            bad = [
                b"not json",
                b"[]",
                b"{}",
                json.dumps({"snapshots": [{"t": 0.0}]}).encode(),
                json.dumps(
                    {"snapshots": [{"t": 0.0, "users": ["a"], "xyz": [[1, 2]]}]}
                ).encode(),
                json.dumps(
                    {"snapshots": [{"t": 0.0, "users": [3], "xyz": [[1, 2, 3]]}]}
                ).encode(),
            ]
            for body in bad:
                status, _, _ = fetch(url, method="POST", body=body)
                assert status == 400, body

    def test_non_increasing_times_409_and_store_unchanged(self, tmp_path):
        with QueryService({"crawl": tmp_path / "fresh"}, ingest=True) as service:
            host, port = service.start()
            base = f"http://{host}:{port}/v1/crawl"
            ok = round_body([10.0], [["a"]], [[[0.0, 0, 0]]])
            assert fetch(f"{base}/rounds", method="POST", body=ok)[0] == 200
            # Within one round.
            status, _, _ = fetch(
                f"{base}/rounds",
                method="POST",
                body=round_body([20.0, 20.0], [["a"], ["a"]],
                                [[[0.0, 0, 0]], [[0.0, 0, 0]]]),
            )
            assert status == 409
            # Against the committed history.
            status, _, body = fetch(
                f"{base}/rounds",
                method="POST",
                body=round_body([5.0], [["a"]], [[[0.0, 0, 0]]]),
            )
            assert status == 409
            assert "strictly increasing" in json.loads(body)["error"]
            _, _, reply = fetch(base)
            assert json.loads(reply)["snapshots"] == 1

    def test_body_limit_413(self, tmp_path):
        service = QueryService(
            {"crawl": tmp_path / "fresh"}, ingest=True, ingest_body_limit=256
        )
        with service:
            host, port = service.start()
            status, _, body = fetch(
                f"http://{host}:{port}/v1/crawl/rounds",
                method="POST",
                body=round_body(
                    [float(t) for t in range(40)],
                    [["user"]] * 40,
                    [[[1.0, 2.0, 3.0]]] * 40,
                ),
            )
            assert status == 413
            assert "byte limit" in json.loads(body)["error"]

    def test_request_budget_429_with_injected_clock(self, tmp_path):
        clock_now = [0.0]
        service = QueryService(
            {"crawl": tmp_path / "fresh"},
            ingest=True,
            ingest_budget=2,
            clock=lambda: clock_now[0],
        )
        with service:
            host, port = service.start()
            url = f"http://{host}:{port}/v1/crawl/rounds"

            def post(t):
                return fetch(
                    url,
                    method="POST",
                    body=round_body([t], [["a"]], [[[0.0, 0, 0]]]),
                )

            assert post(10.0)[0] == 200
            assert post(20.0)[0] == 200
            status, headers, _ = post(30.0)
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert service.stats.ingest_rejected == 1
            # The window slides: a minute later the budget recovers.
            clock_now[0] = 61.0
            assert post(30.0)[0] == 200


class TestConcurrency:
    def test_queries_racing_appends_always_see_committed_prefixes(
        self, tmp_path, trace
    ):
        # One writer streams rounds through the ingest endpoint while
        # reader threads hammer the contacts endpoint: every response
        # must describe some committed prefix (snapshot counts only
        # grow, and each body matches its own declared prefix oracle).
        root = tmp_path / "race"
        with QueryService({"crawl": root}, ingest=True) as service:
            host, port = service.start()
            base = f"http://{host}:{port}/v1/crawl"
            stop = threading.Event()
            seen: list[tuple[int, bytes]] = []
            errors: list[object] = []

            def reader():
                try:
                    while not stop.is_set():
                        status, _, body = fetch(f"{base}/contacts?r={R:g}")
                        assert status == 200
                        seen.append((json.loads(body)["snapshots"], body))
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            cols = trace.columns
            edges = np.linspace(0, cols.snapshot_count, 7).astype(int)
            for lo, hi in zip(edges[:-1], edges[1:]):
                times, users, xyz = [], [], []
                for index in range(int(lo), int(hi)):
                    a, b = (
                        cols.snapshot_offsets[index],
                        cols.snapshot_offsets[index + 1],
                    )
                    times.append(float(cols.times[index]))
                    users.append(cols.names_of(index))
                    xyz.append(cols.xyz[a:b])
                status, _, _ = fetch(
                    f"{base}/rounds", method="POST",
                    body=round_body(times, users, xyz),
                )
                assert status == 200
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors
            assert seen
            prefixes = sorted({n for n, _ in seen})
            allowed = set(edges.tolist())
            assert set(prefixes) <= allowed
            # Every observed prefix answered exactly as a recompute of
            # that prefix would.
            for prefix_len, body in seen:
                if prefix_len == 0:
                    assert json.loads(body)["count"] == 0
                    continue
                oracle = TraceAnalyzer(
                    Trace.from_columns(
                        trace.columns.slice_snapshots(0, int(prefix_len)),
                        trace.metadata,
                    )
                )
                assert body == encode(
                    contacts_payload(
                        oracle.contact_set(R),
                        store="crawl",
                        snapshots=int(prefix_len),
                        r=R,
                    )
                )


class TestListing:
    def test_listing_names_every_store(self, store, tmp_path, trace):
        from repro.trace import write_trace_rtrc

        flat = tmp_path / "flat.rtrc"
        write_trace_rtrc(trace, flat)
        with QueryService({"crawl": store, "flat": flat}) as service:
            host, port = service.start()
            status, _, body = fetch(f"http://{host}:{port}/v1")
            assert status == 200
            doc = json.loads(body)
            assert sorted(doc["stores"]) == ["crawl", "flat"]
            assert doc["stores"]["crawl"]["shard_dir"] is True
            assert doc["stores"]["flat"]["shard_dir"] is False
            assert doc["stores"]["flat"]["snapshots"] == len(trace)

    def test_missing_store_path_refused_without_ingest(self, tmp_path):
        with pytest.raises(ValueError, match="no such store"):
            QueryService({"crawl": tmp_path / "missing"})
