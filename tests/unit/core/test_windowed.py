"""Out-of-core windowed analysis must equal the whole-trace answer.

:class:`~repro.core.windowed.WindowedAnalyzer` iterates fixed-width
time windows over a memmapped ``.rtrc`` store; whatever the window
width — narrower than a sampling interval, spanning the whole trace,
or cutting through contacts and sessions — the merged results must be
bit-for-bit what the in-memory extractors produce.
"""

import numpy as np
import pytest

from repro.core import WindowedAnalyzer, extract_contacts, losgraph
from repro.core.spatial import zone_occupation
from repro.trace import (
    Trace,
    TraceMetadata,
    extract_sessions,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarBuilder, empty_store
from tests.unit.core.test_sharded_equivalence import churn_trace

WINDOW_WIDTHS = (5.0, 25.0, 95.0, 1e6)


@pytest.fixture(scope="module")
def trace():
    return churn_trace(23)


@pytest.fixture(scope="module")
def rtrc_path(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("windowed") / "trace.rtrc"
    write_trace_rtrc(trace, path)
    return path


@pytest.fixture(
    scope="module",
    params=WINDOW_WIDTHS,
    ids=[f"w{w:g}" for w in WINDOW_WIDTHS],
)
def windowed(request, rtrc_path):
    return WindowedAnalyzer(rtrc_path, request.param)


class TestWindowing:
    def test_windows_cover_every_snapshot_in_order(self, windowed, trace):
        stitched = np.concatenate(
            [w.columns.times for w in windowed.iter_windows()]
        )
        assert np.array_equal(stitched, trace.columns.times)

    def test_windows_are_memmap_views(self, windowed):
        # Out-of-core means no column is copied out of the mapped file.
        for window in windowed.iter_windows():
            backing = window.columns.xyz
            while not isinstance(backing, np.memmap) and backing.base is not None:
                backing = backing.base
            assert isinstance(backing, np.memmap)
            break

    def test_single_window_when_width_spans_trace(self, rtrc_path):
        analyzer = WindowedAnalyzer(rtrc_path, 1e6)
        assert analyzer.window_count == 1

    def test_window_bounds_respect_width(self, rtrc_path, trace):
        analyzer = WindowedAnalyzer(rtrc_path, 25.0)
        for window in analyzer.iter_windows():
            assert window.end_time - window.start_time < 25.0

    def test_invalid_width_rejected(self, rtrc_path):
        with pytest.raises(ValueError, match="window width"):
            WindowedAnalyzer(rtrc_path, 0.0)

    def test_empty_store_rejected(self, tmp_path):
        path = write_trace_rtrc(
            Trace.from_columns(empty_store()), tmp_path / "empty.rtrc"
        )
        with pytest.raises(ValueError, match="empty"):
            WindowedAnalyzer(path, 10.0)


class TestLifecycle:
    def test_close_keeps_caches_but_blocks_new_analyses(self, rtrc_path, trace):
        with WindowedAnalyzer(rtrc_path, 25.0) as w:
            contacts = w.contacts(15.0)
        # Cached results survive close; a fresh analysis does not.
        assert w.contacts(15.0) == contacts == extract_contacts(trace, 15.0)
        with pytest.raises(ValueError, match="closed"):
            w.sessions()
        with pytest.raises(ValueError, match="closed"):
            w.snapshot_count


class TestEquivalence:
    @pytest.mark.parametrize("r", (6.0, 15.0, 80.0))
    def test_contacts(self, windowed, trace, r):
        assert windowed.contacts(r) == extract_contacts(trace, r)

    def test_contacts_multirange(self, windowed, trace):
        result = windowed.contacts_multirange((6.0, 80.0))
        for r, contacts in result.items():
            assert contacts == extract_contacts(trace, r)

    def test_sessions(self, windowed, trace):
        assert windowed.sessions() == extract_sessions(trace)

    def test_sessions_custom_gap(self, windowed, trace):
        assert windowed.sessions(45.0) == extract_sessions(trace, 45.0)

    @pytest.mark.parametrize("every", (1, 3))
    def test_zone_occupation(self, windowed, trace, every):
        expected = zone_occupation(trace, 20.0, every)
        assert np.array_equal(windowed.zone_occupation(20.0, every), expected)

    @pytest.mark.parametrize("every", (1, 2))
    def test_degrees(self, windowed, trace, every):
        expected = np.asarray(
            losgraph.degree_samples(trace, 15.0, every), dtype=np.int64
        )
        assert np.array_equal(windowed.degree_array(15.0, every), expected)

    def test_diameters_and_clustering(self, windowed, trace):
        assert np.array_equal(
            windowed.diameter_array(15.0, 2),
            np.asarray(losgraph.diameter_series(trace, 15.0, 2), dtype=np.int64),
        )
        assert np.array_equal(
            windowed.clustering_array(15.0, 2),
            np.asarray(losgraph.clustering_series(trace, 15.0, 2), dtype=np.float64),
        )


class TestBackendEquivalence:
    """Thread and process window fans must equal the serial oracle.

    The churn trace spans t = 0..390 s, so the widths below cut it
    into exactly 1, 2 and 7 non-empty windows — the same part counts
    the sharded and live equivalence suites pin.  Every family runs
    bit-for-bit against the in-memory extractors; the process backend
    really materializes per-window ``.rtrc`` files and spawns workers.
    """

    WIDTHS = {1: 1e6, 2: 200.0, 7: 56.0}

    @pytest.fixture(
        scope="class", params=("thread", "process"), ids=("thread", "process")
    )
    def backend(self, request):
        return request.param

    @pytest.fixture(
        scope="class",
        params=sorted(WIDTHS),
        ids=[f"windows{n}" for n in sorted(WIDTHS)],
    )
    def fanned(self, request, rtrc_path, backend):
        width = self.WIDTHS[request.param]
        with WindowedAnalyzer(rtrc_path, width, backend=backend) as analyzer:
            assert len(analyzer._part_lengths()) == request.param
            yield analyzer

    def test_contacts(self, fanned, trace):
        assert fanned.contacts(15.0) == extract_contacts(trace, 15.0)

    def test_contacts_multirange(self, fanned, trace):
        result = fanned.contacts_multirange((6.0, 15.0, 80.0))
        for r, contacts in result.items():
            assert contacts == extract_contacts(trace, r)

    def test_sessions(self, fanned, trace):
        assert fanned.sessions() == extract_sessions(trace)
        assert fanned.sessions(45.0) == extract_sessions(trace, 45.0)

    @pytest.mark.parametrize("every", (1, 3))
    def test_zone_occupation(self, fanned, trace, every):
        expected = zone_occupation(trace, 20.0, every)
        got = fanned.zone_occupation(20.0, every)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("every", (1, 2))
    def test_losgraph_samples(self, fanned, trace, every):
        assert np.array_equal(
            fanned.degree_array(15.0, every),
            np.asarray(losgraph.degree_samples(trace, 15.0, every), dtype=np.int64),
        )
        assert np.array_equal(
            fanned.diameter_array(15.0, every),
            np.asarray(losgraph.diameter_series(trace, 15.0, every), dtype=np.int64),
        )
        assert np.array_equal(
            fanned.clustering_array(15.0, every),
            np.asarray(
                losgraph.clustering_series(trace, 15.0, every), dtype=np.float64
            ),
        )

    def test_unknown_backend_rejected(self, rtrc_path):
        with pytest.raises(ValueError, match="backend"):
            WindowedAnalyzer(rtrc_path, 25.0, backend="carrier-pigeon")

    def test_process_backend_materializes_window_files(self, rtrc_path, trace):
        with WindowedAnalyzer(rtrc_path, 56.0, backend="process") as analyzer:
            analyzer.contacts(15.0)
            paths = analyzer._scheduler.materialized_paths
            assert len(paths) == 7
            assert all(p.exists() for p in paths)
        # close() deletes the materialized window files with the pool.
        assert not any(p.exists() for p in paths)


class TestSparseGaps:
    """A trace with long silent stretches: some windows hold nothing."""

    @pytest.fixture(scope="class")
    def gappy(self, tmp_path_factory):
        builder = ColumnarBuilder()
        for t in (0.0, 10.0, 20.0, 500.0, 510.0, 1200.0):
            builder.append_snapshot(t, ["a", "b"], [[0, 0, 0], [3, 0, 0]])
        trace = Trace.from_columns(
            builder.build(), TraceMetadata(land_name="gappy", tau=10.0)
        )
        path = tmp_path_factory.mktemp("gappy") / "gappy.rtrc"
        write_trace_rtrc(trace, path)
        return trace, path

    def test_empty_windows_are_skipped_not_fatal(self, gappy):
        trace, path = gappy
        analyzer = WindowedAnalyzer(path, 50.0)
        # 0..1200 s in 50 s windows: most hold no snapshot.
        assert analyzer.window_count == 25
        lens = [len(w) for w in analyzer.iter_windows()]
        assert sum(lens) == len(trace)
        assert all(n > 0 for n in lens)

    def test_gappy_results_match(self, gappy):
        trace, path = gappy
        analyzer = WindowedAnalyzer(path, 50.0)
        assert analyzer.contacts(10.0) == extract_contacts(trace, 10.0)
        assert analyzer.sessions() == extract_sessions(trace)
        assert np.array_equal(
            analyzer.zone_occupation(20.0, 2), zone_occupation(trace, 20.0, 2)
        )
