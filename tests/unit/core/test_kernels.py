"""Unit tests for the run-length extraction kernels and columnar sets.

Deterministic shapes the kernels must get exactly right — censoring at
the trace end, single-snapshot traces, empty snapshots breaking runs,
gap re-entry — plus the :class:`ContactSet` / :class:`SessionSet`
columnar accessors, the boundary-merge edge cases (including parts
with foreign name tables), the multirange fan's validation, and the
process-backend codec round-trip.
"""

import numpy as np
import pytest

from repro.core import (
    ContactInterval,
    extract_contact_set,
    extract_contacts,
    merge_shard_contacts,
    merge_shard_sessions,
)
from repro.core.kernels import (
    ContactSet,
    build_contact_events,
    contact_set_from_columns,
    contact_set_from_events,
    multirange_contact_sets,
)
from repro.core.parallel import decode_payload, encode_payload
from repro.trace import (
    SessionSet,
    Trace,
    TraceMetadata,
    extract_session_set,
    extract_sessions_loop,
)
from repro.trace.columnar import ColumnarBuilder

TAU = 10.0


def build_trace(rows_per_snapshot, tau=TAU):
    """Trace from a list of snapshots, each ``[(name, x, y), ...]``."""
    builder = ColumnarBuilder()
    for index, rows in enumerate(rows_per_snapshot):
        names = [name for name, _, _ in rows]
        xyz = [[x, y, 0.0] for _, x, y in rows]
        builder.append_snapshot(index * tau, names, xyz)
    meta = TraceMetadata(land_name="unit", width=128.0, height=128.0, tau=tau)
    return Trace.from_columns(builder.build(), meta)


class TestKernelEdgeCases:
    def test_single_snapshot_contact_is_censored_without_tau(self):
        trace = build_trace([[("a", 0.0, 0.0), ("b", 3.0, 0.0)]])
        contacts = extract_contacts(trace, 5.0)
        assert contacts == [ContactInterval("a", "b", 0.0, 0.0, censored=True)]

    def test_contact_alive_at_trace_end_is_censored(self):
        rows = [("a", 0.0, 0.0), ("b", 3.0, 0.0)]
        trace = build_trace([rows, rows, rows])
        contacts = extract_contacts(trace, 5.0)
        assert contacts == [ContactInterval("a", "b", 0.0, 20.0, censored=True)]

    def test_completed_contact_gets_tau_closure(self):
        near = [("a", 0.0, 0.0), ("b", 3.0, 0.0)]
        far = [("a", 0.0, 0.0), ("b", 50.0, 0.0)]
        trace = build_trace([near, near, far])
        contacts = extract_contacts(trace, 5.0)
        assert contacts == [ContactInterval("a", "b", 0.0, 20.0, censored=False)]

    def test_empty_snapshot_breaks_the_run(self):
        near = [("a", 0.0, 0.0), ("b", 3.0, 0.0)]
        trace = build_trace([near, [], near])
        contacts = extract_contacts(trace, 5.0)
        assert contacts == [
            ContactInterval("a", "b", 0.0, 10.0, censored=False),
            ContactInterval("a", "b", 20.0, 20.0, censored=True),
        ]

    def test_gap_reentry_yields_two_intervals(self):
        near = [("a", 0.0, 0.0), ("b", 3.0, 0.0)]
        far = [("a", 0.0, 0.0), ("b", 50.0, 0.0)]
        trace = build_trace([near, near, far, near, far])
        contacts = extract_contacts(trace, 5.0)
        assert contacts == [
            ContactInterval("a", "b", 0.0, 20.0, censored=False),
            ContactInterval("a", "b", 30.0, 40.0, censored=False),
        ]

    def test_no_pairs_in_range(self):
        trace = build_trace([[("a", 0.0, 0.0), ("b", 100.0, 0.0)]])
        contact_set = extract_contact_set(trace, 5.0)
        assert len(contact_set) == 0
        assert contact_set.intervals() == []


class TestContactSet:
    @pytest.fixture()
    def contact_set(self):
        near = [("a", 0.0, 0.0), ("b", 3.0, 0.0), ("c", 100.0, 100.0)]
        far = [("a", 0.0, 0.0), ("b", 50.0, 0.0), ("c", 100.0, 100.0)]
        bc = [("a", 0.0, 0.0), ("b", 99.0, 100.0), ("c", 100.0, 100.0)]
        return extract_contact_set(
            build_trace([near, far, near, bc]), 5.0
        )

    def test_intervals_view_is_cached(self, contact_set):
        assert contact_set.intervals() is contact_set.intervals()

    def test_equality_against_interval_list(self, contact_set):
        assert contact_set == contact_set.intervals()
        assert contact_set != contact_set.intervals()[:-1]

    def test_durations_exclude_censored_by_default(self, contact_set):
        completed = contact_set.durations()
        everything = contact_set.durations(include_censored=True)
        assert len(everything) == len(contact_set)
        assert len(completed) == int((~contact_set.censored).sum())

    def test_inter_contact_gaps_match_object_path(self, contact_set):
        from repro.core import inter_contact_times

        gaps = sorted(contact_set.inter_contact_gaps().tolist())
        assert gaps == sorted(inter_contact_times(contact_set.intervals()))

    def test_first_contact_starts_are_per_user_minima(self, contact_set):
        user_ids, starts = contact_set.first_contact_starts()
        names = contact_set.names
        expected = {}
        for interval in contact_set.intervals():
            for user in interval.pair:
                if user not in expected or interval.start < expected[user]:
                    expected[user] = interval.start
        got = {names[uid]: s for uid, s in zip(user_ids, starts)}
        assert got == expected

    def test_empty_set(self):
        empty = ContactSet.empty(["a", "b"])
        assert len(empty) == 0
        assert empty.intervals() == []
        assert len(empty.inter_contact_gaps()) == 0


class TestSessionSet:
    @pytest.fixture()
    def trace(self):
        return build_trace(
            [
                [("a", 0.0, 0.0), ("b", 10.0, 0.0)],
                [("a", 1.0, 0.0)],
                [("a", 2.0, 0.0), ("b", 12.0, 0.0)],
                [],
                [("b", 13.0, 0.0)],
            ]
        )

    def test_sessions_view_is_cached(self, trace):
        session_set = extract_session_set(trace)
        assert session_set.sessions() is session_set.sessions()

    def test_equality_against_object_extractor(self, trace):
        assert extract_session_set(trace) == extract_sessions_loop(trace)

    def test_columnar_metrics_match_object_path(self, trace):
        session_set = extract_session_set(trace)
        sessions = session_set.sessions()
        assert np.array_equal(
            session_set.login_times(), [s.login_time for s in sessions]
        )
        assert np.array_equal(
            session_set.logout_times(), [s.logout_time for s in sessions]
        )
        assert np.array_equal(
            session_set.travel_times(), [s.travel_time for s in sessions]
        )
        assert np.array_equal(
            session_set.observation_counts(),
            [s.observation_count for s in sessions],
        )
        assert np.allclose(
            session_set.travel_lengths(), [s.travel_length() for s in sessions]
        )
        assert np.allclose(
            session_set.effective_travel_times(),
            [s.effective_travel_time() for s in sessions],
        )

    def test_empty_set(self):
        empty = SessionSet.empty(["a"])
        assert len(empty) == 0
        assert empty.sessions() == []


class TestMergeEdgeCases:
    def test_empty_part_lists(self):
        assert len(merge_shard_contacts([], [], TAU)) == 0
        assert len(merge_shard_sessions([], TAU)) == 0

    def test_single_part_is_returned_unchanged(self):
        trace = build_trace([[("a", 0.0, 0.0), ("b", 3.0, 0.0)]])
        contact_set = extract_contact_set(trace, 5.0)
        session_set = extract_session_set(trace)
        assert merge_shard_contacts([contact_set], [0.0], TAU) is contact_set
        assert merge_shard_sessions([session_set], TAU) is session_set

    def test_foreign_name_tables_do_not_conflate_users(self):
        # Two parts whose interners assign id 0 to *different* users:
        # the merge must rewrite ids into a union table instead of
        # stitching "zoe" and "ann" into one session.
        part_a = extract_session_set(build_trace([[("zoe", 0.0, 0.0)]]))
        part_b = SessionSet(
            np.array([0], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([TAU]),
            np.array([[5.0, 0.0, 0.0]]),
            ["ann"],
        )
        merged = merge_shard_sessions([part_a, part_b], gap_threshold=2 * TAU)
        assert len(merged) == 2
        assert sorted(merged.names[uid] for uid in merged.user_ids) == [
            "ann",
            "zoe",
        ]

    def test_prefix_consistent_tables_use_longest(self):
        part_a = extract_session_set(build_trace([[("ann", 0.0, 0.0)]]))
        part_b = SessionSet(
            np.array([1], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([100 * TAU]),
            np.array([[5.0, 0.0, 0.0]]),
            ["ann", "zoe"],
        )
        merged = merge_shard_sessions([part_a, part_b], gap_threshold=TAU)
        assert list(merged.names) == ["ann", "zoe"]
        assert len(merged) == 2


class TestMultirangeFan:
    @pytest.fixture()
    def trace(self):
        rng = np.random.default_rng(7)
        builder = ColumnarBuilder()
        names = [f"u{i}" for i in range(8)]
        for step in range(12):
            xyz = rng.uniform(0.0, 60.0, size=(8, 3))
            xyz[:, 2] = 0.0
            builder.append_snapshot(step * TAU, names, xyz)
        meta = TraceMetadata(land_name="fan", width=64.0, height=64.0, tau=TAU)
        return Trace.from_columns(builder.build(), meta)

    def test_mask_requires_distances(self, trace):
        table = build_contact_events(trace, 20.0, keep_distances=False)
        with pytest.raises(ValueError, match="distances"):
            contact_set_from_events(table, 10.0)

    def test_radius_above_build_radius_rejected(self, trace):
        table = build_contact_events(trace, 20.0, keep_distances=True)
        with pytest.raises(ValueError, match="20"):
            contact_set_from_events(table, 25.0)

    def test_nonpositive_radius_rejected(self, trace):
        table = build_contact_events(trace, 20.0, keep_distances=True)
        with pytest.raises(ValueError):
            multirange_contact_sets(table, [10.0, 0.0])

    def test_fan_equals_serial_at_any_worker_count(self, trace):
        table = build_contact_events(trace, 30.0, keep_distances=True)
        radii = [5.0, 10.0, 20.0, 30.0]
        serial = multirange_contact_sets(table, radii)
        for workers in (1, 2, 8):
            fanned = multirange_contact_sets(table, radii, radius_workers=workers)
            for r in radii:
                for got, want in zip(fanned[r].arrays(), serial[r].arrays()):
                    assert np.array_equal(got, want)


class TestCodecRoundTrip:
    @pytest.fixture()
    def trace(self):
        near = [("a", 0.0, 0.0), ("b", 3.0, 0.0)]
        far = [("a", 0.0, 0.0), ("b", 50.0, 0.0)]
        return build_trace([near, near, far, near])

    def test_contacts_round_trip(self, trace):
        contact_set = extract_contact_set(trace, 5.0)
        payload = encode_payload("contacts", contact_set)
        decoded = decode_payload("contacts", payload, contact_set.names)
        assert decoded == contact_set.intervals()

    def test_multirange_round_trip(self, trace):
        from repro.core import extract_contact_sets_multirange

        sets = extract_contact_sets_multirange(trace, [5.0, 60.0])
        payload = encode_payload("contacts_multirange", sets)
        decoded = decode_payload(
            "contacts_multirange", payload, sets[5.0].names
        )
        for r, contact_set in sets.items():
            assert decoded[r] == contact_set.intervals()

    def test_sessions_round_trip(self, trace):
        session_set = extract_session_set(trace)
        payload = encode_payload("sessions", session_set)
        decoded = decode_payload("sessions", payload, session_set.names)
        assert decoded == session_set.sessions()


class TestCanonicalOrder:
    def test_columns_are_recanonicalized(self):
        # contact_set_from_columns must put the lexicographically
        # smaller name first and order rows by (start, pair) no matter
        # how its inputs arrive.
        names = ["zoe", "ann", "bob"]
        contact_set = contact_set_from_columns(
            np.array([0, 2], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
            np.array([10.0, 0.0]),
            np.array([30.0, 20.0]),
            np.array([False, False]),
            names,
        )
        assert contact_set.intervals() == [
            ContactInterval("ann", "bob", 0.0, 20.0),
            ContactInterval("ann", "zoe", 10.0, 30.0),
        ]
