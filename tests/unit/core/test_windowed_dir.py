"""Windowed analysis straight over a shard directory, no re-splitting.

:class:`~repro.core.windowed.WindowedAnalyzer` accepts the directory a
long-running crawl appends to and treats the committed round files
*as* the window parts: consecutive files starting in the same window
group into one part, single-file parts go to the process backend as
the files they already are (nothing re-materialized), and whatever the
grouping, the boundary merges keep every answer bit-for-bit equal to
the whole-trace extractors.
"""

import numpy as np
import pytest

from repro.core import WindowedAnalyzer, extract_contacts
from repro.trace import (
    RtrcDirAppender,
    Trace,
    extract_sessions,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarBuilder
from tests.unit.core.test_sharded_equivalence import churn_trace
from tests.unit.trace.test_compaction import _stream_dir

ROUNDS = 7


@pytest.fixture(scope="module")
def trace():
    return churn_trace(23)


@pytest.fixture(scope="module")
def shard_dir(trace, tmp_path_factory):
    root = tmp_path_factory.mktemp("windowed-dir") / "crawl"
    _stream_dir(root, trace, ROUNDS)
    return root


class TestDirEquivalence:
    @pytest.mark.parametrize("backend", ("serial", "thread", "process"))
    @pytest.mark.parametrize("window", (25.0, 95.0, 1e6))
    def test_matches_whole_trace_extractors(
        self, shard_dir, trace, backend, window
    ):
        with WindowedAnalyzer(shard_dir, window, backend=backend) as analyzer:
            assert analyzer.is_shard_dir
            assert analyzer.contacts(15.0) == extract_contacts(trace, 15.0)
            assert analyzer.sessions() == extract_sessions(trace)
            assert analyzer.snapshot_count == len(trace)

    def test_windows_cover_every_snapshot_in_order(self, shard_dir, trace):
        with WindowedAnalyzer(shard_dir, 25.0) as analyzer:
            stitched = np.concatenate(
                [w.columns.times for w in analyzer.iter_windows()]
            )
        assert np.array_equal(stitched, trace.columns.times)


class TestPartGrouping:
    def test_one_part_per_file_under_narrow_windows(self, shard_dir, trace):
        # A width narrower than any round keeps every file its own part.
        with WindowedAnalyzer(shard_dir, 1e-3) as analyzer:
            assert analyzer.part_count == ROUNDS

    def test_rounds_in_one_window_group_into_one_part(self, shard_dir, trace):
        # A width spanning the whole trace groups all rounds together.
        with WindowedAnalyzer(shard_dir, 1e6) as analyzer:
            assert analyzer.part_count == 1
            assert analyzer.contacts(15.0) == extract_contacts(trace, 15.0)

    def test_process_backend_reuses_round_files_in_place(self, shard_dir, trace):
        # Single-file parts are handed to the workers as the committed
        # round files themselves — the scheduler materializes nothing.
        with WindowedAnalyzer(
            shard_dir, 1e-3, backend="process", max_workers=2
        ) as analyzer:
            assert analyzer.part_count == ROUNDS
            assert analyzer.contacts(15.0) == extract_contacts(trace, 15.0)
            assert analyzer._scheduler.materialized_paths == []

    def test_grouped_parts_materialize_only_merged_files(self, shard_dir, trace):
        # Multi-file parts must be concatenated for the workers; only
        # those merged parts hit the tempdir.
        with WindowedAnalyzer(
            shard_dir, 1e6, backend="process", max_workers=2
        ) as analyzer:
            assert analyzer.part_count == 1
            assert analyzer.sessions() == extract_sessions(trace)
            assert len(analyzer._scheduler.materialized_paths) <= 1


class TestDirValidation:
    def test_foreign_interners_rejected_on_process_backend(self, tmp_path):
        # Independent per-file user tables break the prefix invariant
        # the process backend's payload decode relies on; serial mode
        # stays correct (objects carry their own names).
        root = tmp_path / "foreign"
        root.mkdir()
        for index, user in enumerate(["zoe", "ann"]):
            builder = ColumnarBuilder()
            builder.append_snapshot(
                float(index * 10), [user], [[1.0 * index, 0.0, 0.0]]
            )
            write_trace_rtrc(
                Trace.from_columns(builder.build()),
                root / f"shard-{index:05d}.rtrc",
            )
        with WindowedAnalyzer(root, 50.0) as serial:
            assert len(serial.sessions()) == 2
        with pytest.raises(ValueError, match="user table"):
            WindowedAnalyzer(root, 50.0, backend="process")

    def test_empty_directory_rejected(self, tmp_path):
        root = tmp_path / "empty"
        RtrcDirAppender(root).close()
        with pytest.raises(ValueError, match="empty"):
            WindowedAnalyzer(root, 10.0)
