"""Live incremental analysis must equal a full recompute, exactly.

:class:`~repro.core.live.LiveAnalyzer` follows a store an
:class:`~repro.trace.RtrcAppender` is growing; after every append
round its merged results must be bit-for-bit what the serial
extractors produce over the whole committed prefix — and it must get
there by extracting *only* the newly appended part.
"""

import numpy as np
import pytest

import repro.core.parallel as parallel_module
from repro.core import LiveAnalyzer, extract_contacts, losgraph
from repro.core.spatial import zone_occupation
from repro.trace import (
    RtrcAppender,
    Trace,
    extract_sessions,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarBuilder, empty_store
from tests.unit.core.test_sharded_equivalence import churn_trace

ROUND_COUNTS = (1, 2, 7)


def _stream_rounds(appender, trace, rounds):
    """Yield the growing prefix length after each committed round."""
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for index in range(int(lo), int(hi)):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            appender.append_snapshot(
                float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
            )
        appender.commit()
        yield int(hi)


@pytest.fixture(scope="module")
def trace():
    return churn_trace(29)


class TestEquivalence:
    """After 1, 2 and 7 append rounds, every analysis matches the oracle."""

    @pytest.mark.parametrize("rounds", ROUND_COUNTS)
    def test_incremental_matches_full_recompute(self, tmp_path, trace, rounds):
        path = tmp_path / f"live-{rounds}.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            live = LiveAnalyzer(path)
            for prefix_len in _stream_rounds(appender, trace, rounds):
                grown = live.refresh()
                assert grown > 0
                oracle = Trace.from_columns(
                    trace.columns.slice_snapshots(0, prefix_len),
                    trace.metadata,
                )
                assert live.contacts(15.0) == extract_contacts(oracle, 15.0)
                assert live.sessions() == extract_sessions(oracle)
                assert np.array_equal(
                    live.zone_occupation(20.0, 3),
                    zone_occupation(oracle, 20.0, 3),
                )
                assert np.array_equal(
                    live.degree_array(15.0, 2),
                    np.asarray(
                        losgraph.degree_samples(oracle, 15.0, 2), dtype=np.int64
                    ),
                )
            assert live.part_count == rounds
            live.close()

    def test_multirange_and_graph_metrics_after_rounds(self, tmp_path, trace):
        path = tmp_path / "live-mr.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            live = LiveAnalyzer(path)
            for _ in _stream_rounds(appender, trace, 3):
                live.refresh()
            by_range = live.contacts_multirange((6.0, 80.0))
            for r, contacts in by_range.items():
                assert contacts == extract_contacts(trace, r)
            assert np.array_equal(
                live.diameter_array(15.0, 2),
                np.asarray(
                    losgraph.diameter_series(trace, 15.0, 2), dtype=np.int64
                ),
            )
            assert np.array_equal(
                live.clustering_array(15.0, 2),
                np.asarray(
                    losgraph.clustering_series(trace, 15.0, 2), dtype=np.float64
                ),
            )
            live.close()

    def test_queries_between_rounds_stay_exact(self, tmp_path, trace):
        # A key first requested at round 3 must backfill rounds 1-2;
        # a key requested every round must only extend.
        path = tmp_path / "live-lazy.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            live = LiveAnalyzer(path)
            for count, prefix_len in enumerate(
                _stream_rounds(appender, trace, 5), start=1
            ):
                live.refresh()
                oracle = Trace.from_columns(
                    trace.columns.slice_snapshots(0, prefix_len),
                    trace.metadata,
                )
                assert live.contacts(15.0) == extract_contacts(oracle, 15.0)
                if count == 3:
                    assert live.sessions() == extract_sessions(oracle)
            assert live.sessions() == extract_sessions(trace)
            live.close()


class TestIncrementality:
    def test_each_part_extracted_exactly_once(self, tmp_path, trace, monkeypatch):
        calls = []
        real = parallel_module.extract_shard_task

        def counting(part, kind, params):
            calls.append((kind, len(part)))
            return real(part, kind, params)

        monkeypatch.setattr(parallel_module, "extract_shard_task", counting)
        path = tmp_path / "live-count.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            live = LiveAnalyzer(path)
            lengths = []
            previous = 0
            for prefix_len in _stream_rounds(appender, trace, 4):
                live.refresh()
                live.contacts(15.0)
                live.sessions()
                lengths.append(prefix_len - previous)
                previous = prefix_len
            live.close()
        contact_calls = [length for kind, length in calls if kind == "contacts"]
        # One extraction per part, each over only that part's snapshots.
        assert contact_calls == lengths
        assert [l for k, l in calls if k == "sessions"] == lengths

    def test_refresh_without_growth_invalidates_nothing(self, tmp_path, trace):
        path = tmp_path / "live-idle.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            live = LiveAnalyzer(path)
            for _ in _stream_rounds(appender, trace, 2):
                pass
            assert live.refresh() > 0
            first = live.contacts(15.0)
            assert live.refresh() == 0
            assert live.contacts(15.0) is first  # cache object survives
            live.close()


class TestEmptyAndLifecycle:
    def test_empty_store_reports_empty_results(self, tmp_path):
        path = tmp_path / "empty.rtrc"
        with RtrcAppender(path) as appender:
            live = LiveAnalyzer(path)
            assert live.snapshot_count == 0
            assert live.contacts(10.0) == []
            assert live.sessions() == []
            with pytest.raises(ValueError, match="no snapshots"):
                live.zone_occupation(20.0)
            appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
            appender.append_snapshot(10.0, ["a"], [[1.0, 0.0, 0.0]])
            appender.commit()
            assert live.refresh() == 2
            assert len(live.sessions()) == 1
            live.close()

    def test_close_keeps_caches_but_blocks_new_work(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "t.rtrc")
        with LiveAnalyzer(path) as live:
            contacts = live.contacts(15.0)
        assert live.contacts(15.0) == contacts == extract_contacts(trace, 15.0)
        with pytest.raises(ValueError, match="closed"):
            live.sessions()
        with pytest.raises(ValueError, match="closed"):
            live.refresh()

    def test_existing_store_is_one_initial_part(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "t.rtrc")
        live = LiveAnalyzer(path)
        assert live.part_count == 1
        assert live.snapshot_count == len(trace)
        assert live.contacts(15.0) == extract_contacts(trace, 15.0)
        live.close()


class TestAppendOnlyContract:
    def test_shrunken_store_rejected(self, tmp_path, trace):
        path = tmp_path / "shrink.rtrc"
        write_trace_rtrc(trace, path)
        live = LiveAnalyzer(path)
        half = Trace.from_columns(
            trace.columns.slice_snapshots(0, len(trace) // 2), trace.metadata
        )
        write_trace_rtrc(half, path)
        with pytest.raises(ValueError, match="shrank"):
            live.refresh()
        live.close()

    def test_rewritten_history_rejected(self, tmp_path):
        builder = ColumnarBuilder()
        for t in (0.0, 10.0, 20.0):
            builder.append_snapshot(t, ["a"], [[t, 0.0, 0.0]])
        trace = Trace.from_columns(builder.build())
        path = tmp_path / "rewrite.rtrc"
        write_trace_rtrc(trace, path)
        live = LiveAnalyzer(path)
        shifted = ColumnarBuilder()
        for t in (0.0, 10.0, 21.0, 30.0):  # past snapshot moved
            shifted.append_snapshot(t, ["a"], [[t, 0.0, 0.0]])
        write_trace_rtrc(Trace.from_columns(shifted.build()), path)
        with pytest.raises(ValueError, match="append-only"):
            live.refresh()
        live.close()

    def test_empty_then_deleted_store_is_an_error(self, tmp_path):
        path = write_trace_rtrc(
            Trace.from_columns(empty_store()), tmp_path / "gone.rtrc"
        )
        live = LiveAnalyzer(path)
        path.unlink()
        with pytest.raises(FileNotFoundError):
            live.refresh()
        live.close()
