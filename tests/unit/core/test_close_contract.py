"""One close contract for every time-partitioned analyzer.

``BoundaryMergeAnalyzer`` subclasses — ``ShardedAnalyzer``,
``WindowedAnalyzer``, ``LiveAnalyzer`` (file and shard-dir modes) —
share a single lifecycle rule, pinned here across every backend:

* results computed before ``close()`` stay readable from the caches;
* any analysis that would need new extraction raises ``ValueError``
  mentioning "closed" — including the reuse-through-cache edge case
  where a ``contacts_multirange`` request mixes cached and uncached
  radii;
* no worker pool, temp directory, or materialized part file is
  silently resurrected after close (the PR-3 process backend could be
  coaxed into re-materializing shard tempfiles through exactly that
  mixed-cache path);
* ``close()`` is idempotent and usable as a context manager.
"""

import numpy as np
import pytest

from repro.core import (
    LiveAnalyzer,
    ShardedAnalyzer,
    WindowedAnalyzer,
    extract_contacts,
)
from repro.trace import RtrcDirAppender, write_trace_rtrc
from tests.unit.core.test_sharded_equivalence import churn_trace

RADIUS = 15.0
OTHER_RADIUS = 42.0


def _sharded(trace, tmp_path, backend):
    return ShardedAnalyzer(trace, 3, backend=backend)


def _windowed(trace, tmp_path, backend):
    path = write_trace_rtrc(trace, tmp_path / "t.rtrc")
    return WindowedAnalyzer(path, 100.0, backend=backend)


def _live_file(trace, tmp_path, backend):
    path = write_trace_rtrc(trace, tmp_path / "t.rtrc")
    return LiveAnalyzer(path, backend=backend)


def _live_dir(trace, tmp_path, backend):
    root = tmp_path / "shards"
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, 4).astype(int)
    with RtrcDirAppender(root, trace.metadata) as appender:
        for lo, hi in zip(edges[:-1], edges[1:]):
            for index in range(int(lo), int(hi)):
                a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
                appender.append_snapshot(
                    float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
                )
            appender.commit()
    return LiveAnalyzer(root, backend=backend)


FACTORIES = [
    pytest.param((_sharded, "thread"), id="sharded-thread"),
    pytest.param((_sharded, "process"), id="sharded-process"),
    pytest.param((_windowed, "serial"), id="windowed-serial"),
    pytest.param((_windowed, "thread"), id="windowed-thread"),
    pytest.param((_windowed, "process"), id="windowed-process"),
    pytest.param((_live_file, "serial"), id="live-file-serial"),
    pytest.param((_live_file, "process"), id="live-file-process"),
    pytest.param((_live_dir, "serial"), id="live-dir-serial"),
    pytest.param((_live_dir, "process"), id="live-dir-process"),
]


@pytest.fixture(scope="module")
def trace():
    return churn_trace(13)


@pytest.fixture(params=FACTORIES)
def analyzer(request, trace, tmp_path):
    factory, backend = request.param
    analyzer = factory(trace, tmp_path, backend)
    yield analyzer
    analyzer.close()


class TestCloseContract:
    def test_cached_results_survive_new_analyses_raise(self, analyzer, trace):
        contacts = analyzer.contacts(RADIUS)
        assert contacts == extract_contacts(trace, RADIUS)
        analyzer.close()
        assert analyzer.closed
        # Cached result: readable, identical.
        assert analyzer.contacts(RADIUS) == contacts
        # Fresh extraction: refused.
        with pytest.raises(ValueError, match="closed"):
            analyzer.sessions()
        with pytest.raises(ValueError, match="closed"):
            analyzer.contacts(OTHER_RADIUS)
        with pytest.raises(ValueError, match="closed"):
            analyzer.zone_occupation(20.0)

    def test_mixed_multirange_does_not_resurrect_resources(self, analyzer, trace):
        # The reuse-through-cache edge case: one radius cached, one
        # not.  The request must fail *before* any pool or part file
        # comes back to life.
        analyzer.contacts(RADIUS)
        analyzer.close()
        scheduler = analyzer._scheduler
        with pytest.raises(ValueError, match="closed"):
            analyzer.contacts_multirange((RADIUS, OTHER_RADIUS))
        assert scheduler.pool is None
        assert scheduler.materialized_paths == []
        assert scheduler._tmpdir is None
        # The fully-cached variant still answers from the cache.
        assert analyzer.contacts_multirange((RADIUS,)) == {
            RADIUS: analyzer.contacts(RADIUS)
        }
        assert scheduler.pool is None
        assert scheduler._tmpdir is None

    def test_close_is_idempotent_and_context_managed(self, analyzer, trace):
        with analyzer as a:
            contacts = a.contacts(RADIUS)
        analyzer.close()
        analyzer.close()
        assert analyzer.contacts(RADIUS) == contacts

    def test_process_resources_released_on_close(self, analyzer, trace):
        analyzer.contacts(RADIUS)
        paths = analyzer._scheduler.materialized_paths
        analyzer.close()
        assert analyzer._scheduler.pool is None
        assert not any(p.exists() for p in paths)
