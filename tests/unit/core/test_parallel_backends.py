"""Thread and process shard backends must agree with the serial oracle.

One parametrized suite covers both execution backends of
:class:`~repro.core.sharded.ShardedAnalyzer` at k ∈ {1, 2, 7} shards:
every extraction family — contacts, multirange contacts, sessions,
zone occupation, and the losgraph samples (degrees, diameters,
clustering) — is compared *bit-for-bit* against the unsharded
extractors, so the thread and process paths share one oracle.  The
process backend really spawns workers that memmap-load per-shard
``.rtrc`` files; nothing is mocked.
"""

import numpy as np
import pytest

from repro.core import (
    ShardAnalysisError,
    ShardedAnalyzer,
    TraceAnalyzer,
    extract_contacts,
    losgraph,
)
from repro.core.spatial import zone_occupation
from repro.trace import constant_positions_trace, extract_sessions
from tests.unit.core.test_sharded_equivalence import churn_trace

BACKENDS = ("thread", "process")
SHARD_COUNTS = (1, 2, 7)
RADII = (6.0, 15.0, 80.0)


@pytest.fixture(scope="module")
def trace():
    return churn_trace(17)


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture(
    scope="module",
    params=SHARD_COUNTS,
    ids=[f"k{k}" for k in SHARD_COUNTS],
)
def analyzer(request, trace, backend):
    with ShardedAnalyzer(trace, request.param, backend=backend) as sharded:
        yield sharded


class TestEquivalence:
    @pytest.mark.parametrize("r", RADII)
    def test_contacts(self, analyzer, trace, r):
        assert analyzer.contacts(r) == extract_contacts(trace, r)

    def test_contacts_multirange(self, analyzer, trace):
        result = analyzer.contacts_multirange(RADII)
        for r, contacts in result.items():
            assert contacts == extract_contacts(trace, r)

    def test_sessions(self, analyzer, trace):
        assert analyzer.sessions() == extract_sessions(trace)

    def test_sessions_custom_gap(self, analyzer, trace):
        assert analyzer.sessions(45.0) == extract_sessions(trace, 45.0)

    @pytest.mark.parametrize("every", (1, 3, 5))
    def test_zone_occupation(self, analyzer, trace, every):
        expected = zone_occupation(trace, 20.0, every)
        got = analyzer.zone_occupation(20.0, every)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("every", (1, 2))
    def test_degrees(self, analyzer, trace, every):
        expected = np.asarray(
            losgraph.degree_samples(trace, 15.0, every), dtype=np.int64
        )
        assert np.array_equal(analyzer.degree_array(15.0, every), expected)

    @pytest.mark.parametrize("every", (1, 2))
    def test_diameters(self, analyzer, trace, every):
        expected = np.asarray(
            losgraph.diameter_series(trace, 15.0, every), dtype=np.int64
        )
        assert np.array_equal(analyzer.diameter_array(15.0, every), expected)

    @pytest.mark.parametrize("every", (1, 2))
    def test_clustering(self, analyzer, trace, every):
        expected = np.asarray(
            losgraph.clustering_series(trace, 15.0, every), dtype=np.float64
        )
        assert np.array_equal(analyzer.clustering_array(15.0, every), expected)


class TestBoundaries:
    def test_boundary_spanning_contact(self, backend):
        # Two users pinned in range for the whole trace: every shard
        # boundary cuts the contact and the merge must restitch it
        # into exactly one censored interval — on either backend.
        trace = constant_positions_trace(
            {"a": (10.0, 10.0), "b": (12.0, 10.0)}, steps=21, tau=10.0
        )
        with ShardedAnalyzer(trace, 7, backend=backend) as sharded:
            contacts = sharded.contacts(10.0)
        assert contacts == extract_contacts(trace, 10.0)
        assert len(contacts) == 1
        assert contacts[0].censored

    def test_session_spanning_every_boundary(self, backend):
        trace = constant_positions_trace({"solo": (5.0, 5.0)}, steps=15, tau=10.0)
        with ShardedAnalyzer(trace, 7, backend=backend) as sharded:
            sessions = sharded.sessions()
        assert sessions == extract_sessions(trace)
        assert len(sessions) == 1
        assert sessions[0].observation_count == 15


class TestAnalyzerIntegration:
    def test_trace_analyzer_backend_argument(self, trace, backend):
        plain = TraceAnalyzer(trace)
        with TraceAnalyzer(trace, shards=3, backend=backend) as sharded:
            assert sharded.contacts(15.0) == plain.contacts(15.0)
            assert sharded.sessions() == plain.sessions()
            assert np.array_equal(
                sharded.degree_array(15.0, 2), plain.degree_array(15.0, 2)
            )
            assert np.array_equal(
                sharded.diameters(15.0, 2).values, plain.diameters(15.0, 2).values
            )
            assert np.array_equal(
                sharded.clustering(15.0, 2).values, plain.clustering(15.0, 2).values
            )
            assert np.array_equal(
                sharded.zone_array(20.0, 3), plain.zone_array(20.0, 3)
            )

    def test_unknown_backend_rejected(self, trace):
        with pytest.raises(ValueError, match="backend"):
            ShardedAnalyzer(trace, 2, backend="carrier-pigeon")

    def test_unknown_backend_rejected_unsharded(self, trace):
        # shards=1 never builds a ShardedAnalyzer, but a typo'd
        # backend must still fail loudly, not silently run serial.
        with pytest.raises(ValueError, match="backend"):
            TraceAnalyzer(trace, backend="procss")

    def test_closed_analyzer_rejects_new_analyses(self, trace, backend):
        with ShardedAnalyzer(trace, 2, backend=backend) as sharded:
            contacts = sharded.contacts(15.0)
        # Cached results survive close; a fresh analysis must raise
        # instead of silently resurrecting pool/tempdir resources.
        assert sharded.contacts(15.0) == contacts
        with pytest.raises(ValueError, match="closed"):
            sharded.sessions()

    def test_single_shard_process_backend_runs_inline(self, trace):
        # One non-empty shard has no parallelism to exploit: the
        # process backend must not pay spawn + shard-file overhead.
        with ShardedAnalyzer(trace, 1, backend="process") as sharded:
            assert sharded.contacts(15.0) == extract_contacts(trace, 15.0)
            assert sharded._scheduler.pool is None
            assert sharded._scheduler.materialized_paths == []


class TestPoolSizing:
    def test_persistent_pool_grows_for_bigger_task_sets(self, monkeypatch):
        # A live follower's first catch-up may fan 2 tasks; a later
        # backfill may fan 8 — the persistent pool must not stay
        # pinned at the first run's size.
        import repro.core.parallel as parallel_mod
        from repro.core.parallel import PartScheduler

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 8)
        with PartScheduler("process") as scheduler:
            small = scheduler._process_pool(2)
            assert scheduler._pool_size == 2
            assert scheduler._process_pool(2) is small  # reused
            big = scheduler._process_pool(6)
            assert big is not small
            assert scheduler._pool_size == 6
            assert scheduler._process_pool(3) is big  # never shrinks


class TestFailurePropagation:
    def test_worker_error_names_shard_time_range(self, trace, backend):
        # An unknown task kind makes the worker body raise — on the
        # process backend that failure crosses the pipe; either way it
        # must come back wrapped with the failing shard's time range.
        with ShardedAnalyzer(trace, 2, backend=backend) as sharded:
            with pytest.raises(ShardAnalysisError, match=r"t=\[0, ") as excinfo:
                sharded._map("definitely-not-a-task", [()] * len(sharded.shards))
        assert "definitely-not-a-task" in str(excinfo.value)
        assert excinfo.value.__cause__ is not None

    def test_thread_backend_preserves_cause(self, trace, monkeypatch):
        import repro.core.parallel as parallel_mod

        boom = RuntimeError("disk on fire")

        def exploding(shard, kind, params):
            raise boom

        monkeypatch.setattr(parallel_mod, "extract_shard_task", exploding)
        sharded = ShardedAnalyzer(trace, 3, backend="thread")
        with pytest.raises(ShardAnalysisError, match="disk on fire") as excinfo:
            sharded.contacts(10.0)
        assert excinfo.value.__cause__ is boom
        assert "snapshots" in str(excinfo.value)

    def test_broken_process_pool_is_discarded_and_respawned(self, trace):
        # Kill a worker mid-flight: the executor marks itself broken,
        # the in-flight analysis must surface as ShardAnalysisError
        # (not a raw BrokenProcessPool), and the *next* analysis must
        # succeed on a freshly spawned pool.
        import os

        with ShardedAnalyzer(trace, 2, backend="process") as sharded:
            pool = sharded._scheduler._process_pool(len(sharded.shards))
            with pytest.raises(Exception):
                pool.submit(os._exit, 13).result()
            with pytest.raises(ShardAnalysisError):
                sharded.contacts(15.0)
            assert sharded._scheduler.pool is None
            assert sharded.contacts(15.0) == extract_contacts(trace, 15.0)

    def test_worker_death_mid_flight_recovers_next_call(self, trace):
        # Kill the live workers between submit and collect: whichever
        # side detects the breakage (submit or future.result), the
        # wrapped error must discard the pool so the very next
        # analysis succeeds on a fresh one.
        with ShardedAnalyzer(trace, 2, backend="process") as sharded:
            pool = sharded._scheduler._process_pool(len(sharded.shards))
            pool.submit(int, 0).result()  # ensure workers are up
            for proc in list(pool._processes.values()):
                proc.terminate()
            with pytest.raises(ShardAnalysisError):
                sharded.sessions()
            assert sharded._scheduler.pool is None
            assert sharded.sessions() == extract_sessions(trace)
