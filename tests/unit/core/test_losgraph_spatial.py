"""Unit tests for repro.core.losgraph and repro.core.spatial."""

import pytest

from repro.core import (
    clustering_series,
    degree_samples,
    diameter_series,
    isolation_fraction,
    snapshot_graph,
)
from repro.core.spatial import (
    effective_travel_times,
    hotspot_cells,
    travel_lengths,
    travel_times,
    zone_occupation,
)
from repro.geometry import Position
from repro.trace import Snapshot, Trace, TraceMetadata, constant_positions_trace


class TestSnapshotGraph:
    def test_nodes_include_isolated(self):
        snap = Snapshot(0.0, {"a": Position(0, 0), "b": Position(200, 200)})
        g = snapshot_graph(snap, r=10.0)
        assert g.node_count == 2
        assert g.edge_count == 0

    def test_links_within_range(self):
        snap = Snapshot(0.0, {"a": Position(0, 0), "b": Position(5, 0), "c": Position(100, 0)})
        g = snapshot_graph(snap, r=10.0)
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")

    def test_strict_threshold(self):
        snap = Snapshot(0.0, {"a": Position(0, 0), "b": Position(10.0, 0)})
        assert snapshot_graph(snap, r=10.0).edge_count == 0

    def test_empty_snapshot(self):
        g = snapshot_graph(Snapshot(0.0, {}), r=10.0)
        assert g.node_count == 0

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="positive"):
            snapshot_graph(Snapshot(0.0, {}), r=-1.0)


class TestAggregates:
    def _line_trace(self, steps=4):
        # Three users in a 5 m-spaced line, one hermit far away.
        positions = {"a": (0, 0), "b": (5, 0), "c": (10, 0), "hermit": (200, 200)}
        return constant_positions_trace(positions, steps=steps)

    def test_degree_samples_per_user_per_snapshot(self):
        trace = self._line_trace(steps=3)
        samples = degree_samples(trace, r=6.0)
        assert len(samples) == 4 * 3
        # Degrees per snapshot: a=1, b=2, c=1, hermit=0.
        assert sorted(samples[:4]) == [0, 1, 1, 2]

    def test_isolation_fraction(self):
        trace = self._line_trace()
        assert isolation_fraction(trace, r=6.0) == pytest.approx(0.25)

    def test_diameter_series(self):
        trace = self._line_trace(steps=2)
        assert diameter_series(trace, r=6.0) == [2, 2]

    def test_clustering_series_triangle(self):
        positions = {"a": (0, 0), "b": (5, 0), "c": (2.5, 4.0)}
        trace = constant_positions_trace(positions, steps=2)
        series = clustering_series(trace, r=7.0)
        assert series == [1.0, 1.0]

    def test_stride(self):
        trace = self._line_trace(steps=10)
        assert len(diameter_series(trace, r=6.0, every=5)) == 2
        with pytest.raises(ValueError, match="stride"):
            diameter_series(trace, r=6.0, every=0)


class TestTripMetrics:
    def _two_session_trace(self):
        snaps = []
        # User u walks 10 m per 10 s for 3 snaps, disappears, returns.
        for i in range(3):
            snaps.append(Snapshot(i * 10.0, {"u": Position(10.0 * i, 0)}))
        for j in range(2):
            snaps.append(Snapshot(200.0 + j * 10.0, {"u": Position(0, 100.0 + 5 * j)}))
        return Trace(snaps, TraceMetadata(tau=10.0))

    def test_travel_lengths_per_session(self):
        lengths = sorted(travel_lengths(self._two_session_trace()))
        assert lengths == [5.0, 20.0]

    def test_travel_times_per_session(self):
        times = sorted(travel_times(self._two_session_trace()))
        assert times == [10.0, 20.0]

    def test_effective_travel_time_excludes_pause(self):
        snaps = [
            Snapshot(0.0, {"u": Position(0, 0)}),
            Snapshot(10.0, {"u": Position(10, 0)}),
            Snapshot(20.0, {"u": Position(10.1, 0)}),  # pause
            Snapshot(30.0, {"u": Position(20, 0)}),
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert effective_travel_times(trace) == [20.0]

    def test_single_observation_sessions_skipped(self):
        snaps = [Snapshot(0.0, {"blip": Position(1, 1)})]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert travel_lengths(trace) == []


class TestZoneOccupation:
    def test_counts_cover_all_cells(self):
        positions = {"a": (10, 10), "b": (12, 10), "c": (200, 200)}
        trace = constant_positions_trace(positions, steps=2)
        counts = zone_occupation(trace, cell_size=20.0)
        cells_per_snapshot = 13 * 13
        assert counts.size == 2 * cells_per_snapshot
        assert counts.sum() == 2 * 3

    def test_empty_cell_fraction_high(self):
        positions = {"a": (10, 10), "b": (12, 10)}
        trace = constant_positions_trace(positions, steps=1)
        counts = zone_occupation(trace, cell_size=20.0)
        assert (counts == 0).mean() > 0.95

    def test_hotspot_cells(self):
        positions = {f"u{i}": (10.0 + 0.1 * i, 10.0) for i in range(15)}
        trace = constant_positions_trace(positions, steps=1)
        assert hotspot_cells(trace, cell_size=20.0, threshold=10) == pytest.approx(
            1.0 / (13 * 13)
        )

    def test_empty_trace(self):
        counts = zone_occupation(Trace([], TraceMetadata()), cell_size=20.0)
        assert counts.size == 0
