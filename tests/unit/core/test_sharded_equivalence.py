"""Sharded vs unsharded analysis must agree exactly.

``ShardedAnalyzer`` fans contact extraction, session splitting and
zone occupation over time shards and merges the partial results; these
tests pin the merge to be *bit-for-bit* the unsharded answer at
k ∈ {1, 2, 7} shards — including contacts and sessions that span shard
boundaries, and strided zone occupation whose phase crosses them.
"""

import numpy as np
import pytest

from repro.core import ShardedAnalyzer, TraceAnalyzer, extract_contacts
from repro.core.spatial import zone_occupation
from repro.trace import (
    Trace,
    TraceMetadata,
    constant_positions_trace,
    extract_sessions,
)
from repro.trace.columnar import ColumnarBuilder

SHARD_COUNTS = (1, 2, 7)


def churn_trace(seed: int, steps: int = 40, n_users: int = 14) -> Trace:
    """Random walk with per-snapshot presence churn.

    Users join and leave (including fully empty snapshots), so session
    splitting and contact closure both get exercised across shard
    boundaries.
    """
    rng = np.random.default_rng(seed)
    names = [f"u{i:02d}" for i in range(n_users)]
    positions = rng.uniform(0.0, 120.0, size=(n_users, 3))
    positions[:, 2] = 0.0
    builder = ColumnarBuilder()
    for step in range(steps):
        positions[:, :2] += rng.normal(0.0, 4.0, size=(n_users, 2))
        positions[:, :2] = np.clip(positions[:, :2], 0.0, 120.0)
        present = rng.random(n_users) < 0.7
        idx = np.flatnonzero(present)
        builder.append_snapshot(
            step * 10.0, [names[i] for i in idx], positions[idx]
        )
    meta = TraceMetadata(land_name="churn", width=128.0, height=128.0, tau=10.0)
    return Trace.from_columns(builder.build(), meta)


@pytest.fixture(scope="module", params=(11, 29))
def trace(request):
    return churn_trace(request.param)


class TestContacts:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("r", (6.0, 15.0, 80.0))
    def test_contacts_match_unsharded(self, trace, k, r):
        sharded = ShardedAnalyzer(trace, k)
        assert sharded.contacts(r) == extract_contacts(trace, r)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_multirange_matches_unsharded(self, trace, k):
        sharded = ShardedAnalyzer(trace, k)
        result = sharded.contacts_multirange((6.0, 15.0, 80.0))
        for r, contacts in result.items():
            assert contacts == extract_contacts(trace, r)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_boundary_spanning_contact_is_one_interval(self, k):
        # Two users pinned in range for the whole trace: every shard
        # boundary cuts the contact and the merge must restitch it
        # into exactly one censored interval.
        trace = constant_positions_trace(
            {"a": (10.0, 10.0), "b": (12.0, 10.0)}, steps=21, tau=10.0
        )
        sharded = ShardedAnalyzer(trace, k)
        contacts = sharded.contacts(10.0)
        assert contacts == extract_contacts(trace, 10.0)
        assert len(contacts) == 1
        (contact,) = contacts
        assert contact.censored
        assert contact.start == trace.start_time
        assert contact.end == trace.end_time

    def test_boundary_contact_closed_by_next_shard(self):
        # In range for the first two snapshots only; with the shard
        # boundary right after them, the censored piece in shard 0 must
        # be closed (+tau) rather than stay censored.
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, ["a", "b"], [[0, 0, 0], [1, 0, 0]])
        builder.append_snapshot(10.0, ["a", "b"], [[0, 0, 0], [1, 0, 0]])
        builder.append_snapshot(20.0, ["a", "b"], [[0, 0, 0], [90, 0, 0]])
        builder.append_snapshot(30.0, ["a", "b"], [[0, 0, 0], [90, 0, 0]])
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        sharded = ShardedAnalyzer(trace, 2)
        contacts = sharded.contacts(10.0)
        assert contacts == extract_contacts(trace, 10.0)
        assert len(contacts) == 1
        assert not contacts[0].censored
        assert contacts[0].start == 0.0
        assert contacts[0].end == 20.0  # last seen 10.0 + tau


class TestSessions:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_sessions_match_unsharded(self, trace, k):
        sharded = ShardedAnalyzer(trace, k)
        assert sharded.sessions() == extract_sessions(trace)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_custom_gap_threshold(self, trace, k):
        sharded = ShardedAnalyzer(trace, k)
        assert sharded.sessions(45.0) == extract_sessions(trace, 45.0)

    def test_session_spanning_every_boundary(self):
        trace = constant_positions_trace({"solo": (5.0, 5.0)}, steps=15, tau=10.0)
        sharded = ShardedAnalyzer(trace, 7)
        sessions = sharded.sessions()
        assert sessions == extract_sessions(trace)
        assert len(sessions) == 1
        assert sessions[0].observation_count == 15


class TestZoneOccupation:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("every", (1, 3, 5))
    def test_zone_occupation_matches_unsharded(self, trace, k, every):
        sharded = ShardedAnalyzer(trace, k)
        expected = zone_occupation(trace, 20.0, every)
        assert np.array_equal(sharded.zone_occupation(20.0, every), expected)

    def test_stride_larger_than_shard(self):
        trace = churn_trace(3, steps=10)
        sharded = ShardedAnalyzer(trace, 7)
        expected = zone_occupation(trace, 20.0, 4)
        assert np.array_equal(sharded.zone_occupation(20.0, 4), expected)


class TestAnalyzerIntegration:
    @pytest.mark.parametrize("k", (2, 7))
    def test_analyzer_shards_argument(self, trace, k):
        plain = TraceAnalyzer(trace)
        sharded = TraceAnalyzer(trace, shards=k)
        assert sharded.contacts(15.0) == plain.contacts(15.0)
        assert sharded.sessions() == plain.sessions()
        assert np.array_equal(
            sharded.zone_array(20.0, 3), plain.zone_array(20.0, 3)
        )
        multi = sharded.contacts_multirange((6.0, 80.0))
        assert multi[6.0] == plain.contacts(6.0)
        assert multi[80.0] == plain.contacts(80.0)

    def test_ecdf_metrics_unchanged(self, trace):
        plain = TraceAnalyzer(trace)
        sharded = TraceAnalyzer(trace, shards=4)
        for r in (15.0, 80.0):
            assert np.array_equal(
                sharded.contact_times(r).values, plain.contact_times(r).values
            )

    def test_invalid_shard_counts_rejected(self, trace):
        with pytest.raises(ValueError):
            ShardedAnalyzer(trace, 0)
