"""Coverage for the remaining contact helpers."""

from repro.core.contacts import ContactInterval, iter_contact_pairs


class TestIterContactPairs:
    def test_distinct_pairs_in_first_contact_order(self):
        contacts = [
            ContactInterval("b", "a", 0.0, 10.0),
            ContactInterval("c", "d", 5.0, 15.0),
            ContactInterval("a", "b", 100.0, 110.0),  # repeat pair
        ]
        pairs = list(iter_contact_pairs(contacts))
        assert pairs == [("a", "b"), ("c", "d")]

    def test_empty(self):
        assert list(iter_contact_pairs([])) == []
