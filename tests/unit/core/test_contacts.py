"""Unit tests for repro.core.contacts with known-answer fixtures."""

import pytest

from repro.core import (
    ContactInterval,
    contact_durations,
    extract_contacts,
    first_contact_times,
    inter_contact_times,
)
from repro.geometry import Position
from repro.trace import (
    Snapshot,
    Trace,
    TraceMetadata,
    constant_positions_trace,
    crossing_users_trace,
)


def _trace_from_distances(distances, tau=10.0):
    """Two users 'a'/'b' separated by distances[i] at snapshot i."""
    snaps = [
        Snapshot(i * tau, {"a": Position(0.0, 100.0), "b": Position(d, 100.0)})
        for i, d in enumerate(distances)
    ]
    return Trace(snaps, TraceMetadata(tau=tau))


class TestContactInterval:
    def test_pair_is_canonical(self):
        c = ContactInterval("zeta", "alpha", 0.0, 10.0)
        assert c.pair == ("alpha", "zeta")

    def test_duration(self):
        assert ContactInterval("a", "b", 5.0, 25.0).duration == 20.0

    def test_validation(self):
        with pytest.raises(ValueError, match="before"):
            ContactInterval("a", "b", 10.0, 5.0)
        with pytest.raises(ValueError, match="self-contact"):
            ContactInterval("a", "a", 0.0, 1.0)


class TestExtractContacts:
    def test_always_in_range_is_one_censored_contact(self):
        trace = _trace_from_distances([5, 5, 5, 5])
        contacts = extract_contacts(trace, r=10.0)
        assert len(contacts) == 1
        assert contacts[0].censored
        assert contacts[0].start == 0.0
        assert contacts[0].end == 30.0

    def test_never_in_range_yields_nothing(self):
        trace = _trace_from_distances([50, 50, 50])
        assert extract_contacts(trace, r=10.0) == []

    def test_single_meeting_duration_includes_tau(self):
        # In range only at snapshots 1 and 2 -> duration (t2 - t1) + tau.
        trace = _trace_from_distances([50, 5, 5, 50, 50])
        contacts = extract_contacts(trace, r=10.0)
        assert len(contacts) == 1
        c = contacts[0]
        assert not c.censored
        assert c.start == 10.0
        assert c.end == 30.0
        assert c.duration == 20.0

    def test_single_snapshot_contact_has_duration_tau(self):
        trace = _trace_from_distances([50, 5, 50])
        contacts = extract_contacts(trace, r=10.0)
        assert len(contacts) == 1
        assert contacts[0].duration == 10.0

    def test_two_meetings_are_two_contacts(self):
        trace = _trace_from_distances([5, 50, 50, 5, 5])
        contacts = extract_contacts(trace, r=10.0)
        assert len(contacts) == 2
        assert contacts[0].duration == 10.0  # censored=False, single snap
        assert contacts[1].censored

    def test_threshold_is_strict(self):
        trace = _trace_from_distances([10.0, 10.0])
        assert extract_contacts(trace, r=10.0) == []
        assert len(extract_contacts(trace, r=10.01)) == 1

    def test_user_departure_closes_contact(self):
        snaps = [
            Snapshot(0.0, {"a": Position(0, 0), "b": Position(5, 0)}),
            Snapshot(10.0, {"a": Position(0, 0), "b": Position(5, 0)}),
            Snapshot(20.0, {"a": Position(0, 0)}),  # b logs out
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        contacts = extract_contacts(trace, r=10.0)
        assert len(contacts) == 1
        assert not contacts[0].censored
        assert contacts[0].end == 20.0

    def test_range_validation(self):
        with pytest.raises(ValueError, match="positive"):
            extract_contacts(_trace_from_distances([5]), r=0.0)

    def test_three_users_pairwise(self):
        positions = {
            "a": (0.0, 0.0),
            "b": (5.0, 0.0),
            "c": (8.0, 0.0),
        }
        trace = constant_positions_trace(positions, steps=3)
        contacts = extract_contacts(trace, r=6.0)
        pairs = {c.pair for c in contacts}
        # a-b at 5 m and b-c at 3 m qualify; a-c at 8 m does not.
        assert pairs == {("a", "b"), ("b", "c")}

    def test_crossing_fixture(self):
        trace = crossing_users_trace(steps=61, tau=10.0, speed=1.0, lane_gap=2.0)
        contacts = extract_contacts(trace, r=20.0)
        assert len(contacts) == 1
        # Approach speed is 2 m/s; in range (planar distance < 20,
        # lane gap 2) for ~2*sqrt(400-4)/2 ~ 20 s around the crossing.
        assert 10.0 <= contacts[0].duration <= 40.0


class TestContactDurations:
    def test_censored_excluded_by_default(self):
        trace = _trace_from_distances([50, 5, 50, 5, 5])
        contacts = extract_contacts(trace, r=10.0)
        assert len(contact_durations(contacts)) == 1
        assert len(contact_durations(contacts, include_censored=True)) == 2


class TestInterContactTimes:
    def test_gap_between_meetings(self):
        # Meet at snap 0 (ends t=10), separate snaps 1-3, meet at snap 4.
        trace = _trace_from_distances([5, 50, 50, 50, 5])
        contacts = extract_contacts(trace, r=10.0)
        gaps = inter_contact_times(contacts)
        assert gaps == [30.0]  # 40 - 10

    def test_no_repeat_no_gap(self):
        trace = _trace_from_distances([5, 5, 50])
        assert inter_contact_times(extract_contacts(trace, r=10.0)) == []

    def test_multiple_pairs_independent(self):
        snaps = []
        for i in range(5):
            near = i in (0, 4)
            snaps.append(
                Snapshot(
                    i * 10.0,
                    {
                        "a": Position(0, 0),
                        "b": Position(5 if near else 50, 0),
                        # Near a (9 m) but out of range of b even when
                        # b approaches (sqrt(25 + 81) > 10).
                        "c": Position(0, 9),
                    },
                )
            )
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        contacts = extract_contacts(trace, r=10.0)
        gaps = inter_contact_times(contacts)
        assert len(gaps) == 1  # only the a-b pair separates and re-meets


class TestFirstContactTimes:
    def test_immediate_contact_is_zero(self):
        trace = _trace_from_distances([5, 5])
        ft = first_contact_times(trace, r=10.0)
        assert ft == {"a": 0.0, "b": 0.0}

    def test_waiting_time_measured_from_first_appearance(self):
        snaps = [
            Snapshot(0.0, {"a": Position(0, 0)}),
            Snapshot(10.0, {"a": Position(0, 0), "b": Position(50, 0)}),
            Snapshot(20.0, {"a": Position(0, 0), "b": Position(5, 0)}),
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        ft = first_contact_times(trace, r=10.0)
        assert ft["a"] == 20.0  # appeared at 0, met at 20
        assert ft["b"] == 10.0  # appeared at 10, met at 20

    def test_loners_excluded(self):
        snaps = [
            Snapshot(0.0, {"a": Position(0, 0), "b": Position(5, 0), "hermit": Position(200, 200)}),
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        ft = first_contact_times(trace, r=10.0)
        assert "hermit" not in ft

    def test_accepts_precomputed_contacts(self):
        trace = _trace_from_distances([5, 5])
        contacts = extract_contacts(trace, r=10.0)
        assert first_contact_times(trace, 10.0, contacts) == first_contact_times(trace, 10.0)
