"""Unit tests for repro.core.analyzer and repro.core.report."""

import numpy as np
import pytest

from repro.core import TraceAnalyzer, render_ccdf_table, render_summary_table
from repro.core.report import log_grid
from repro.stats import ECDF
from repro.trace import Trace, constant_positions_trace, random_walk_trace


@pytest.fixture(scope="module")
def walk_trace():
    rng = np.random.default_rng(17)
    return random_walk_trace(15, 120, rng, tau=10.0, step_std=8.0)


class TestTraceAnalyzer:
    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="empty"):
            TraceAnalyzer(Trace([]))

    def test_summary(self, walk_trace):
        summary = TraceAnalyzer(walk_trace).summary()
        assert summary.unique_users == 15
        assert summary.mean_concurrency == pytest.approx(15.0)
        assert summary.snapshot_count == 120
        assert summary.duration == pytest.approx(119 * 10.0)

    def test_summary_row_keys(self, walk_trace):
        row = TraceAnalyzer(walk_trace).summary().row()
        assert "unique_users" in row and "mean_concurrent" in row

    def test_contacts_cached_per_range(self, walk_trace):
        analyzer = TraceAnalyzer(walk_trace)
        first = analyzer.contacts(10.0)
        assert analyzer.contacts(10.0) is first
        assert analyzer.contacts(80.0) is not first

    def test_all_metrics_return_ecdfs(self, walk_trace):
        analyzer = TraceAnalyzer(walk_trace)
        for ecdf in (
            analyzer.contact_times(30.0),
            analyzer.inter_contact_times(30.0),
            analyzer.first_contact_times(30.0),
            analyzer.degrees(30.0, every=10),
            analyzer.diameters(30.0, every=10),
            analyzer.clustering(30.0, every=10),
            analyzer.travel_lengths(),
            analyzer.effective_travel_times(),
            analyzer.travel_times(),
            analyzer.zone_occupation(every=10),
        ):
            assert isinstance(ecdf, ECDF)
            assert ecdf.n > 0

    def test_isolation_fraction_bounds(self, walk_trace):
        analyzer = TraceAnalyzer(walk_trace)
        iso = analyzer.isolation_fraction(10.0, every=10)
        assert 0.0 <= iso <= 1.0

    def test_no_contacts_raises_helpfully(self):
        trace = constant_positions_trace({"a": (0, 0), "b": (200, 200)}, steps=3)
        analyzer = TraceAnalyzer(trace)
        with pytest.raises(ValueError, match="no completed contacts"):
            analyzer.contact_times(5.0)


class TestReportRendering:
    def test_summary_table_layout(self):
        rows = [
            {"land": "A", "users": 10},
            {"land": "Longer Name", "users": 2000},
        ]
        text = render_summary_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("land")
        assert len(lines) == 4  # header, rule, two rows
        assert "2000" in lines[3]

    def test_summary_table_rejects_mixed_columns(self):
        with pytest.raises(ValueError, match="inconsistent"):
            render_summary_table([{"a": 1}, {"b": 2}])

    def test_summary_table_rejects_empty(self):
        with pytest.raises(ValueError, match="no rows"):
            render_summary_table([])

    def test_ccdf_table(self):
        series = {
            "Land A": ECDF([10, 20, 30, 40]),
            "Land B": ECDF([100, 200, 300]),
        }
        text = render_ccdf_table(series, points=[15.0, 150.0])
        assert "Land A" in text and "Land B" in text
        lines = text.splitlines()
        assert len(lines) == 4
        # At x=15, A has CCDF 0.75, B has 1.0.
        assert "0.750" in lines[2]
        assert "1.000" in lines[2]

    def test_cdf_mode(self):
        series = {"X": ECDF([1, 2, 3, 4])}
        text = render_ccdf_table(series, points=[2.0], complementary=False)
        assert "0.500" in text

    def test_log_grid(self):
        grid = log_grid(10.0, 1000.0, count=3)
        assert grid[0] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(1000.0)
        assert len(grid) == 3

    def test_log_grid_validation(self):
        with pytest.raises(ValueError):
            log_grid(0.0, 10.0)
        with pytest.raises(ValueError):
            log_grid(10.0, 5.0)
