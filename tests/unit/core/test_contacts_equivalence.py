"""Grid-indexed contact extractor vs the dense O(n²) reference.

The grid path must be *bit-for-bit* equivalent: identical
``ContactInterval`` lists (fields, censoring flags, the +τ closure and
ordering) on every trace.  The fixtures cover the paper's synthetic
shapes plus the edge cases that stress the cell-list search: empty
snapshots, single users, points exactly at range ``r``, negative
coordinates, and dense random mobility at both canonical ranges.
"""

import numpy as np
import pytest

from repro.core.contacts import (
    BLUETOOTH_RANGE,
    WIFI_RANGE,
    extract_contacts,
    extract_contacts_reference,
    snapshot_id_pairs,
)
from repro.geometry import Position
from repro.geometry.grid import planar_neighbour_pairs
from repro.trace import (
    Snapshot,
    Trace,
    TraceMetadata,
    constant_positions_trace,
    crossing_users_trace,
    orbiting_users_trace,
    random_walk_trace,
)


def assert_equivalent(trace, r):
    assert extract_contacts(trace, r) == extract_contacts_reference(trace, r)


class TestSyntheticTraces:
    @pytest.mark.parametrize("r", [BLUETOOTH_RANGE, WIFI_RANGE])
    def test_crossing(self, r):
        assert_equivalent(crossing_users_trace(), r)

    @pytest.mark.parametrize("r", [10.0, 119.9, 120.0, 120.1, 200.0])
    def test_orbiting_threshold(self, r):
        # Orbiters sit at constant distance 120: the grid path must
        # agree on both sides of (and exactly at) the threshold.
        assert_equivalent(orbiting_users_trace(radius=60.0), r)

    def test_constant_chain(self):
        positions = {"a": (0.0, 0.0), "b": (5.0, 0.0), "c": (8.0, 0.0)}
        assert_equivalent(constant_positions_trace(positions, steps=4), 6.0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("r", [BLUETOOTH_RANGE, WIFI_RANGE])
    def test_random_walks(self, seed, r):
        trace = random_walk_trace(60, 25, np.random.default_rng(seed))
        contacts = extract_contacts(trace, r)
        assert contacts == extract_contacts_reference(trace, r)
        if r == WIFI_RANGE:
            assert contacts  # dense enough that silence would be a bug

    def test_sparse_membership_churn(self):
        # Users appear and disappear between snapshots (login/logout).
        rng = np.random.default_rng(7)
        snaps = []
        for i in range(20):
            present = {
                f"u{j}": Position(*rng.uniform(0, 120, 2))
                for j in range(12)
                if rng.random() < 0.6
            }
            snaps.append(Snapshot(i * 10.0, present))
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert_equivalent(trace, 15.0)


class TestEdgeCases:
    def test_empty_trace(self):
        assert_equivalent(Trace([]), 10.0)

    def test_empty_snapshots_interleaved(self):
        snaps = [
            Snapshot(0.0, {"a": Position(0, 0), "b": Position(5, 0)}),
            Snapshot(10.0, {}),
            Snapshot(20.0, {"a": Position(0, 0), "b": Position(5, 0)}),
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert_equivalent(trace, 10.0)
        # The empty snapshot breaks the contact: two intervals.
        assert len(extract_contacts(trace, 10.0)) == 2

    def test_single_user(self):
        trace = Trace([Snapshot(t, {"solo": Position(1, 1)}) for t in (0.0, 10.0)])
        assert extract_contacts(trace, 10.0) == []
        assert_equivalent(trace, 10.0)

    def test_pair_exactly_at_range(self):
        # Strict < threshold: distance exactly r is no contact, in
        # both implementations, and r + ε flips both.
        snaps = [
            Snapshot(t, {"a": Position(0.0, 0.0), "b": Position(10.0, 0.0)})
            for t in (0.0, 10.0)
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert_equivalent(trace, 10.0)
        assert extract_contacts(trace, 10.0) == []
        assert_equivalent(trace, 10.0 + 1e-9)
        assert len(extract_contacts(trace, 10.0 + 1e-9)) == 1

    def test_coincident_users(self):
        snaps = [Snapshot(0.0, {"a": Position(3, 3), "b": Position(3, 3)})]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert_equivalent(trace, 1.0)
        assert len(extract_contacts(trace, 1.0)) == 1

    def test_negative_coordinates(self):
        # Teleport overshoot can leave the land; floor-based cells must
        # keep working left of / below the origin.
        snaps = [
            Snapshot(
                t,
                {
                    "a": Position(-37.0, -12.0),
                    "b": Position(-30.0, -12.0),
                    "c": Position(200.0, 250.0),
                },
            )
            for t in (0.0, 10.0)
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert_equivalent(trace, 8.0)
        assert {c.pair for c in extract_contacts(trace, 8.0)} == {("a", "b")}

    def test_cell_boundary_pairs(self):
        # Neighbours straddling a cell edge (r = 10 → cells of 10 m).
        snaps = [
            Snapshot(
                0.0,
                {
                    "west": Position(9.9, 5.0),
                    "east": Position(10.1, 5.0),
                    "north": Position(9.9, 10.1),
                    "far": Position(35.0, 5.0),
                },
            )
        ]
        trace = Trace(snaps, TraceMetadata(tau=10.0))
        assert_equivalent(trace, 10.0)
        pairs = {c.pair for c in extract_contacts(trace, 10.0)}
        assert ("east", "west") in pairs and ("north", "west") in pairs


class TestPairPrimitives:
    def test_snapshot_id_pairs_orders_ids(self):
        trace = constant_positions_trace({"z": (0.0, 0.0), "a": (1.0, 0.0)}, steps=1)
        uids, xyz = trace.columns.slice_of(0)
        pairs = snapshot_id_pairs(uids, xyz, 5.0)
        assert pairs.shape == (1, 2)
        assert pairs[0, 0] < pairs[0, 1]

    def test_planar_pairs_match_bruteforce(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(2, 80))
            xy = rng.uniform(-40, 300, (n, 2))
            r = float(rng.uniform(0.5, 90))
            expected = sorted(
                (i, j)
                for i in range(n)
                for j in range(i + 1, n)
                if np.hypot(*(xy[i] - xy[j])) < r
            )
            got = [tuple(p) for p in planar_neighbour_pairs(xy, r)]
            assert got == expected

    def test_cell_size_must_cover_radius(self):
        with pytest.raises(ValueError, match="cell_size"):
            planar_neighbour_pairs(np.zeros((3, 2)), radius=10.0, cell_size=5.0)
