"""``extract_contacts_multirange`` vs N independent ``extract_contacts``."""

import numpy as np
import pytest

from repro.core import (
    TraceAnalyzer,
    extract_contacts,
    extract_contacts_multirange,
)
from repro.trace import (
    Trace,
    TraceMetadata,
    crossing_users_trace,
    random_walk_trace,
)
from repro.trace.columnar import ColumnarBuilder, empty_store

SWEEP = (5.0, 10.0, 20.0, 40.0, 80.0)


@pytest.fixture(scope="module")
def walk():
    return random_walk_trace(25, 40, np.random.default_rng(17))


class TestEquivalence:
    def test_matches_independent_extractions(self, walk):
        batched = extract_contacts_multirange(walk, SWEEP)
        assert set(batched) == set(SWEEP)
        for r in SWEEP:
            assert batched[r] == extract_contacts(walk, r)

    def test_crossing_trace(self):
        trace = crossing_users_trace()
        batched = extract_contacts_multirange(trace, (10.0, 80.0))
        for r in (10.0, 80.0):
            assert batched[r] == extract_contacts(trace, r)

    def test_single_radius_degenerates(self, walk):
        batched = extract_contacts_multirange(walk, [10.0])
        assert batched[10.0] == extract_contacts(walk, 10.0)

    def test_trace_with_empty_snapshots(self):
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, ["a", "b"], [[0, 0, 0], [3, 0, 0]])
        builder.append_snapshot(10.0, [], np.empty((0, 3)))
        builder.append_snapshot(20.0, ["a", "b"], [[0, 0, 0], [3, 0, 0]])
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        batched = extract_contacts_multirange(trace, (5.0, 10.0))
        for r in (5.0, 10.0):
            contacts = extract_contacts(trace, r)
            assert batched[r] == contacts
            assert len(contacts) == 2  # the empty snapshot splits the contact

    def test_empty_trace(self):
        trace = Trace.from_columns(empty_store())
        assert extract_contacts_multirange(trace, SWEEP) == {r: [] for r in SWEEP}


class TestEdgeCases:
    def test_duplicate_radii_collapse(self, walk):
        batched = extract_contacts_multirange(walk, (10.0, 10.0, 80.0, 10.0))
        assert sorted(batched) == [10.0, 80.0]
        assert batched[10.0] == extract_contacts(walk, 10.0)
        assert batched[80.0] == extract_contacts(walk, 80.0)

    def test_unsorted_radii(self, walk):
        shuffled = (80.0, 5.0, 40.0, 10.0, 20.0)
        batched = extract_contacts_multirange(walk, shuffled)
        for r in shuffled:
            assert batched[r] == extract_contacts(walk, r)

    def test_integer_radii_keyed_as_floats(self, walk):
        batched = extract_contacts_multirange(walk, [10, 80])
        assert batched[10.0] == extract_contacts(walk, 10.0)

    def test_empty_ranges(self, walk):
        assert extract_contacts_multirange(walk, ()) == {}

    def test_nonpositive_radius_rejected(self, walk):
        with pytest.raises(ValueError, match="positive"):
            extract_contacts_multirange(walk, (10.0, 0.0))
        with pytest.raises(ValueError, match="positive"):
            extract_contacts_multirange(walk, (-5.0,))


class TestAnalyzerCache:
    def test_multirange_seeds_per_range_cache(self, walk):
        analyzer = TraceAnalyzer(walk)
        batched = analyzer.contacts_multirange(SWEEP)
        for r in SWEEP:
            # Same object: contacts() must hit the cache, not re-extract.
            assert analyzer.contacts(r) is batched[r]

    def test_partial_cache_reuse(self, walk):
        analyzer = TraceAnalyzer(walk)
        first = analyzer.contacts(10.0)
        batched = analyzer.contacts_multirange((10.0, 80.0))
        assert batched[10.0] is first
        assert batched[80.0] == extract_contacts(walk, 80.0)
