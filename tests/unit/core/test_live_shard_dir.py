"""Live analysis over a shard directory must equal a full recompute.

:class:`~repro.core.LiveAnalyzer` pointed at a directory an
:class:`~repro.trace.RtrcDirAppender` commits rounds into treats every
committed shard file as one part; after each round the merged results
must be bit-for-bit what the serial extractors produce over the whole
committed prefix — on the serial, thread, and process backends (the
process backend memmap-loads the round files themselves, nothing is
re-materialized).
"""

import numpy as np
import pytest

from repro.core import LiveAnalyzer, extract_contacts, losgraph
from repro.core.spatial import zone_occupation
from repro.trace import RtrcDirAppender, Trace, extract_sessions
from tests.unit.core.test_sharded_equivalence import churn_trace

ROUND_COUNTS = (1, 2, 7)
BACKENDS = ("serial", "thread", "process")


def _stream_rounds(appender, trace, rounds):
    """Yield the growing prefix length after each committed round."""
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for index in range(int(lo), int(hi)):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            appender.append_snapshot(
                float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
            )
        appender.commit()
        yield int(hi)


def _stream_rounds_appender(root, trace, rounds):
    """Like :func:`_stream_rounds`, owning the appender's lifetime."""
    appender = RtrcDirAppender(root, trace.metadata)
    try:
        yield from _stream_rounds(appender, trace, rounds)
    finally:
        appender.close()


@pytest.fixture(scope="module")
def trace():
    return churn_trace(31)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestEquivalence:
    """After 1, 2 and 7 rounds, every analysis matches the oracle."""

    @pytest.mark.parametrize("rounds", ROUND_COUNTS)
    def test_incremental_matches_full_recompute(
        self, tmp_path, trace, rounds, backend
    ):
        root = tmp_path / f"live-{rounds}"
        with RtrcDirAppender(root, trace.metadata) as appender:
            with LiveAnalyzer(root, backend=backend) as live:
                for prefix_len in _stream_rounds(appender, trace, rounds):
                    grown = live.refresh()
                    assert grown > 0
                    oracle = Trace.from_columns(
                        trace.columns.slice_snapshots(0, prefix_len),
                        trace.metadata,
                    )
                    assert live.contacts(15.0) == extract_contacts(oracle, 15.0)
                    assert live.sessions() == extract_sessions(oracle)
                    assert np.array_equal(
                        live.zone_occupation(20.0, 3),
                        zone_occupation(oracle, 20.0, 3),
                    )
                assert live.part_count == rounds

    def test_all_seven_task_families_after_rounds(self, tmp_path, trace, backend):
        root = tmp_path / "live-families"
        with RtrcDirAppender(root, trace.metadata) as appender:
            with LiveAnalyzer(root, backend=backend) as live:
                for _ in _stream_rounds(appender, trace, 7):
                    live.refresh()
                assert live.contacts(15.0) == extract_contacts(trace, 15.0)
                by_range = live.contacts_multirange((6.0, 80.0))
                for r, contacts in by_range.items():
                    assert contacts == extract_contacts(trace, r)
                assert live.sessions() == extract_sessions(trace)
                assert np.array_equal(
                    live.zone_occupation(20.0, 2), zone_occupation(trace, 20.0, 2)
                )
                assert np.array_equal(
                    live.degree_array(15.0, 2),
                    np.asarray(
                        losgraph.degree_samples(trace, 15.0, 2), dtype=np.int64
                    ),
                )
                assert np.array_equal(
                    live.diameter_array(15.0, 2),
                    np.asarray(
                        losgraph.diameter_series(trace, 15.0, 2), dtype=np.int64
                    ),
                )
                assert np.array_equal(
                    live.clustering_array(15.0, 2),
                    np.asarray(
                        losgraph.clustering_series(trace, 15.0, 2),
                        dtype=np.float64,
                    ),
                )

    def test_late_follower_catches_up_in_one_refresh(self, tmp_path, trace, backend):
        # A follower opening an already-grown directory sees every
        # committed round at once — the backfill case the parallel
        # backends exist for.
        root = tmp_path / "late"
        with RtrcDirAppender(root, trace.metadata) as appender:
            for _ in _stream_rounds(appender, trace, 5):
                pass
        with LiveAnalyzer(root, backend=backend) as live:
            assert live.part_count == 5
            assert live.snapshot_count == len(trace)
            assert live.contacts(15.0) == extract_contacts(trace, 15.0)
            assert live.sessions() == extract_sessions(trace)


class TestIncrementality:
    def test_each_round_extracted_exactly_once(self, tmp_path, trace, monkeypatch):
        import repro.core.parallel as parallel_module

        calls = []
        real = parallel_module.extract_shard_task

        def counting(part, kind, params):
            calls.append((kind, len(part)))
            return real(part, kind, params)

        monkeypatch.setattr(parallel_module, "extract_shard_task", counting)
        root = tmp_path / "count"
        lengths = []
        previous = 0
        with RtrcDirAppender(root, trace.metadata) as appender:
            with LiveAnalyzer(root) as live:
                for prefix_len in _stream_rounds(appender, trace, 4):
                    live.refresh()
                    live.contacts(15.0)
                    lengths.append(prefix_len - previous)
                    previous = prefix_len
        contact_calls = [length for kind, length in calls if kind == "contacts"]
        assert contact_calls == lengths

    def test_refresh_without_growth_invalidates_nothing(self, tmp_path, trace):
        root = tmp_path / "idle"
        with RtrcDirAppender(root, trace.metadata) as appender:
            with LiveAnalyzer(root) as live:
                for _ in _stream_rounds(appender, trace, 2):
                    pass
                assert live.refresh() > 0
                first = live.contacts(15.0)
                assert live.refresh() == 0
                assert live.contacts(15.0) is first


class TestEmptyAndContract:
    def test_empty_directory_reports_empty_results(self, tmp_path, trace):
        root = tmp_path / "empty"
        with RtrcDirAppender(root, trace.metadata) as appender:
            with LiveAnalyzer(root) as live:
                assert live.snapshot_count == 0
                assert live.contacts(10.0) == []
                assert live.sessions() == []
                with pytest.raises(ValueError, match="no snapshots"):
                    live.zone_occupation(20.0)
                appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
                appender.append_snapshot(10.0, ["a"], [[1.0, 0.0, 0.0]])
                appender.commit()
                assert live.refresh() == 2
                assert len(live.sessions()) == 1

    def test_rewritten_shard_file_list_rejected(self, tmp_path, trace):
        from repro.trace.sharding import write_shard_manifest

        root = tmp_path / "mutate"
        with RtrcDirAppender(root, trace.metadata) as appender:
            for _ in _stream_rounds(appender, trace, 3):
                pass
        live = LiveAnalyzer(root)
        # Rewrite the manifest as if an earlier round were renamed.
        write_shard_manifest(
            root, ["shard-99999.rtrc"], [0], [None]
        )
        with pytest.raises(ValueError, match="append-only"):
            live.refresh()
        live.close()

    def test_concurrent_compaction_raises_store_changed_error(self, tmp_path, trace):
        # Regression: a compaction racing a follower used to surface
        # as a bare ValueError traceback from deep inside refresh().
        # It must raise the typed StoreChangedError so long-running
        # consumers (the CLI --follow loop, the query service) can
        # catch it specifically and re-open a fresh follower.
        from repro.core import StoreChangedError
        from repro.trace import compact_shard_dir

        root = tmp_path / "compacted-under"
        with RtrcDirAppender(root, trace.metadata) as appender:
            for _ in _stream_rounds(appender, trace, 3):
                pass
        with LiveAnalyzer(root) as live:
            before = live.contacts(15.0)
            compact_shard_dir(root, 1)
            with pytest.raises(StoreChangedError, match="compact only between"):
                live.refresh()
            # The follower's merged caches survive the refusal.
            assert live.contacts(15.0) == before
        # A fresh follower adopts the compacted directory cleanly.
        with LiveAnalyzer(root) as reopened:
            assert reopened.contacts(15.0) == before

    def test_store_changed_error_is_a_value_error(self):
        # Existing except-ValueError handlers keep working.
        from repro.core import StoreChangedError

        assert issubclass(StoreChangedError, ValueError)

    def test_close_keeps_caches_but_blocks_new_work(self, tmp_path, trace):
        root = tmp_path / "close"
        with RtrcDirAppender(root, trace.metadata) as appender:
            for _ in _stream_rounds(appender, trace, 2):
                pass
        with LiveAnalyzer(root) as live:
            contacts = live.contacts(15.0)
        assert live.contacts(15.0) == contacts == extract_contacts(trace, 15.0)
        with pytest.raises(ValueError, match="closed"):
            live.sessions()
        with pytest.raises(ValueError, match="closed"):
            live.refresh()

    def test_foreign_interners_rejected_on_process_backend(self, tmp_path):
        # Files with independent user tables break the prefix
        # invariant the process backend's payload decode relies on:
        # serial mode stays correct (objects carry their own names),
        # process mode must refuse loudly instead of mis-naming users.
        from repro.trace import write_trace_rtrc
        from repro.trace.columnar import ColumnarBuilder

        root = tmp_path / "foreign"
        root.mkdir()
        for index, user in enumerate(["zoe", "ann"]):
            builder = ColumnarBuilder()
            builder.append_snapshot(
                float(index * 10), [user], [[1.0 * index, 0.0, 0.0]]
            )
            write_trace_rtrc(
                Trace.from_columns(builder.build()),
                root / f"shard-{index:05d}.rtrc",
            )
        serial = LiveAnalyzer(root)
        assert len(serial.sessions()) == 2
        serial.close()
        with pytest.raises(ValueError, match="user table"):
            LiveAnalyzer(root, backend="process")

    def test_follower_does_not_retain_per_round_memmaps(self, tmp_path, trace):
        # A months-long crawl has thousands of rounds; the follower
        # must hold metadata, not one open memmap (fd) per round.
        root = tmp_path / "fdlean"
        with RtrcDirAppender(root, trace.metadata) as appender:
            for _ in _stream_rounds(appender, trace, 5):
                pass
        with LiveAnalyzer(root) as live:
            live.contacts(15.0)
            assert not hasattr(live, "_part_traces")
            assert len(live._part_meta) == 5

    def test_failed_refresh_changes_nothing(self, tmp_path, trace):
        # Two new rounds, the second one unreadable: the refresh must
        # fail without registering the first — a half-applied refresh
        # would serve cached results inconsistent with part_count.
        root = tmp_path / "atomic"
        rounds = iter(_stream_rounds_appender(root, trace, 4))
        next(rounds)  # round 1 committed
        with LiveAnalyzer(root) as live:
            baseline = live.contacts(15.0)
            parts = live.part_count
            snaps = live.snapshot_count
            next(rounds)  # rounds 2 committed
            next(rounds)  # round 3 committed...
            files = sorted(root.glob("shard-*.rtrc"))
            files[-1].unlink()  # ...then its file vanishes
            with pytest.raises(FileNotFoundError):
                live.refresh()
            assert live.part_count == parts
            assert live.snapshot_count == snaps
            assert live.contacts(15.0) == baseline

    def test_process_backend_reuses_round_files(self, tmp_path, trace):
        # Shard-dir parts already live on disk: the scheduler must
        # hand workers the committed round files, not copies.
        root = tmp_path / "reuse"
        with RtrcDirAppender(root, trace.metadata) as appender:
            for _ in _stream_rounds(appender, trace, 4):
                pass
        with LiveAnalyzer(root, backend="process") as live:
            assert live.contacts(15.0) == extract_contacts(trace, 15.0)
            assert live._scheduler.materialized_paths == []
