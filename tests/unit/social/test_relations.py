"""Unit tests for the relation graph (the paper's §5 future work)."""

import pytest

from repro.core.contacts import ContactInterval
from repro.social import (
    Acquaintance,
    acquaintance_summary,
    build_relation_graph,
    encounter_regularity,
    strength_frequency_correlation,
)


def _contact(a, b, start, end, censored=False):
    return ContactInterval(a, b, start, end, censored)


@pytest.fixture
def contacts():
    return [
        _contact("alice", "bob", 0.0, 60.0),
        _contact("alice", "bob", 300.0, 340.0),
        _contact("alice", "bob", 900.0, 1000.0),
        _contact("bob", "carol", 100.0, 140.0),
        _contact("dave", "alice", 50.0, 60.0, censored=True),
    ]


class TestAcquaintance:
    def test_derived_metrics(self):
        a = Acquaintance("a", "b", frequency=4, strength=200.0, first_met=0.0, last_met=900.0)
        assert a.mean_contact_duration == 50.0
        assert a.lifetime == 900.0

    def test_pair_canonical(self):
        a = Acquaintance("z", "a", frequency=1, strength=1.0, first_met=0.0, last_met=0.0)
        assert a.pair == ("a", "z")

    def test_validation(self):
        with pytest.raises(ValueError):
            Acquaintance("a", "b", frequency=0, strength=1.0, first_met=0.0, last_met=0.0)
        with pytest.raises(ValueError):
            Acquaintance("a", "b", frequency=1, strength=-1.0, first_met=0.0, last_met=0.0)
        with pytest.raises(ValueError):
            Acquaintance("a", "b", frequency=1, strength=1.0, first_met=10.0, last_met=0.0)


class TestBuildRelationGraph:
    def test_aggregates_pair_history(self, contacts):
        relations = build_relation_graph(contacts)
        ab = relations.acquaintance("alice", "bob")
        assert ab.frequency == 3
        assert ab.strength == pytest.approx(60.0 + 40.0 + 100.0)
        assert ab.first_met == 0.0
        assert ab.last_met == 900.0

    def test_min_encounters_filters_passersby(self, contacts):
        relations = build_relation_graph(contacts, min_encounters=2)
        assert relations.are_acquainted("alice", "bob")
        assert not relations.are_acquainted("bob", "carol")
        assert len(relations) == 1

    def test_censored_contacts_optional(self, contacts):
        with_censored = build_relation_graph(contacts)
        without = build_relation_graph(contacts, include_censored=False)
        assert with_censored.are_acquainted("dave", "alice")
        assert not without.are_acquainted("dave", "alice")

    def test_symmetry(self, contacts):
        relations = build_relation_graph(contacts)
        assert relations.acquaintance("bob", "alice") is relations.acquaintance("alice", "bob")

    def test_empty_contacts(self):
        relations = build_relation_graph([])
        assert len(relations) == 0
        assert relations.user_count == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="min_encounters"):
            build_relation_graph([], min_encounters=0)


class TestRelationGraphQueries:
    def test_acquaintances_of_sorted_by_strength(self, contacts):
        relations = build_relation_graph(contacts)
        friends = relations.acquaintances_of("alice")
        strengths = [f.strength for f in friends]
        assert strengths == sorted(strengths, reverse=True)
        assert {f.pair for f in friends} == {("alice", "bob"), ("alice", "dave")}

    def test_unknown_user_has_no_acquaintances(self, contacts):
        relations = build_relation_graph(contacts)
        assert relations.acquaintances_of("stranger") == []

    def test_strongest(self, contacts):
        relations = build_relation_graph(contacts)
        top = relations.strongest(1)
        assert top[0].pair == ("alice", "bob")
        with pytest.raises(ValueError):
            relations.strongest(0)

    def test_graph_algorithms_apply(self, contacts):
        from repro.netgraph import connected_components

        relations = build_relation_graph(contacts)
        components = connected_components(relations.graph)
        assert {frozenset(c) for c in components} == {
            frozenset({"alice", "bob", "carol", "dave"})
        }


class TestSocialMetrics:
    def test_summary_keys(self, contacts):
        relations = build_relation_graph(contacts)
        summary = acquaintance_summary(relations)
        assert set(summary) == {"frequency", "strength_s", "acquaintances_per_user"}
        assert summary["frequency"].maximum == 3

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError, match="no acquaintances"):
            acquaintance_summary(build_relation_graph([]))

    def test_correlation_positive_for_cumulative_strength(self, contacts):
        relations = build_relation_graph(contacts)
        assert strength_frequency_correlation(relations) > 0.5

    def test_correlation_needs_two_edges(self):
        relations = build_relation_graph([_contact("a", "b", 0.0, 10.0)])
        with pytest.raises(ValueError, match="at least two"):
            strength_frequency_correlation(relations)

    def test_encounter_regularity(self, contacts):
        result = encounter_regularity(contacts, min_encounters=3)
        assert result["pairs_gaps"] == 2.0  # alice-bob has 3 meetings -> 2 gaps
        assert result["median_gap_s"] > 0
        assert result["cv"] >= 0

    def test_encounter_regularity_threshold(self, contacts):
        with pytest.raises(ValueError, match="no pair reached"):
            encounter_regularity(contacts, min_encounters=10)


class TestEndToEnd:
    def test_relation_graph_from_simulated_land(self):
        """Acquaintances emerge from POI co-location on a real trace."""
        from repro.core import BLUETOOTH_RANGE, extract_contacts
        from repro.lands import generic_land
        from repro.monitors import Crawler

        world = generic_land(n_pois=3, hourly_rate=150.0, seed=5).build(seed=8)
        trace = Crawler(tau=10.0).monitor(world, 2700.0)
        contacts = extract_contacts(trace, BLUETOOTH_RANGE)
        relations = build_relation_graph(contacts, min_encounters=2)
        assert len(relations) > 0
        # Re-meeting pairs are a strict subset of all meeting pairs.
        all_pairs = build_relation_graph(contacts, min_encounters=1)
        assert len(relations) < len(all_pairs)
        assert strength_frequency_correlation(all_pairs) > 0.0
