"""Unit tests for repro.geometry.vectors."""

import math

import numpy as np
import pytest

from repro.geometry import (
    ORIGIN,
    Position,
    distance,
    distance_2d,
    pairwise_distances,
    path_length,
    unit_direction,
)


class TestPosition:
    def test_fields(self):
        p = Position(1.0, 2.0, 3.0)
        assert (p.x, p.y, p.z) == (1.0, 2.0, 3.0)

    def test_z_defaults_to_zero(self):
        assert Position(1.0, 2.0).z == 0.0

    def test_to_2d(self):
        assert Position(3.0, 4.0, 5.0).to_2d() == (3.0, 4.0)

    def test_origin_detection(self):
        assert ORIGIN.is_origin()
        assert Position(0.0, 0.0, 0.0).is_origin()

    def test_nonzero_z_is_not_origin(self):
        assert not Position(0.0, 0.0, 1.0).is_origin()

    def test_translated(self):
        p = Position(1.0, 1.0).translated(2.0, -1.0, 0.5)
        assert p == Position(3.0, 0.0, 0.5)

    def test_is_a_tuple(self):
        # Positions index like tuples; geometry helpers rely on it.
        p = Position(7.0, 8.0, 9.0)
        assert p[0] == 7.0 and p[1] == 8.0 and p[2] == 9.0


class TestDistance:
    def test_planar_euclidean(self):
        assert distance(Position(0, 0), Position(3, 4)) == 5.0

    def test_z_is_ignored(self):
        assert distance(Position(0, 0, 0), Position(3, 4, 100)) == 5.0

    def test_symmetric(self):
        a, b = Position(1, 2), Position(5, 9)
        assert distance(a, b) == distance(b, a)

    def test_zero_for_same_point(self):
        assert distance(Position(2, 2), Position(2, 2)) == 0.0

    def test_accepts_raw_tuples(self):
        assert distance((0, 0), (0, 7)) == 7.0

    def test_distance_2d_matches(self):
        assert distance_2d(0, 0, 3, 4) == distance(Position(0, 0), Position(3, 4))


class TestUnitDirection:
    def test_axis_aligned(self):
        assert unit_direction(Position(0, 0), Position(5, 0)) == (1.0, 0.0)

    def test_normalized(self):
        dx, dy = unit_direction(Position(0, 0), Position(3, 4))
        assert math.isclose(math.hypot(dx, dy), 1.0)

    def test_coincident_points_give_zero(self):
        assert unit_direction(Position(1, 1), Position(1, 1)) == (0.0, 0.0)


class TestPairwiseDistances:
    def test_shape_and_diagonal(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        d = pairwise_distances(pts)
        assert d.shape == (3, 3)
        assert np.allclose(np.diag(d), 0.0)

    def test_values(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 100, (10, 2))
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)

    def test_third_column_ignored(self):
        pts3 = np.array([[0.0, 0.0, 99.0], [3.0, 4.0, -99.0]])
        assert pairwise_distances(pts3)[0, 1] == pytest.approx(5.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="expected"):
            pairwise_distances(np.array([1.0, 2.0, 3.0]))


class TestPathLength:
    def test_empty_iterable(self):
        assert path_length([]) == 0.0

    def test_single_point(self):
        assert path_length([Position(5, 5)]) == 0.0

    def test_straight_line(self):
        pts = [Position(0, 0), Position(3, 4), Position(6, 8)]
        assert path_length(pts) == pytest.approx(10.0)

    def test_closed_loop(self):
        square = [Position(0, 0), Position(1, 0), Position(1, 1), Position(0, 1), Position(0, 0)]
        assert path_length(square) == pytest.approx(4.0)
