"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest

from repro.geometry import CellIndex, SpatialGrid, cell_of, iter_cells
from repro.geometry.grid import occupancy_counts


class TestCellOf:
    def test_origin_in_first_cell(self):
        assert cell_of(0.0, 0.0, 20.0) == CellIndex(0, 0)

    def test_interior_point(self):
        assert cell_of(25.0, 45.0, 20.0) == CellIndex(1, 2)

    def test_boundary_goes_to_next_cell(self):
        assert cell_of(20.0, 0.0, 20.0) == CellIndex(1, 0)

    def test_rejects_non_positive_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            cell_of(1.0, 1.0, 0.0)


class TestIterCells:
    def test_exact_division(self):
        cells = list(iter_cells(40.0, 20.0, 20.0))
        assert len(cells) == 2 * 1

    def test_partial_cells_included(self):
        # 256 / 20 -> 13 columns and rows, as in the paper's zoning.
        cells = list(iter_cells(256.0, 256.0, 20.0))
        assert len(cells) == 13 * 13

    def test_row_major_order(self):
        cells = list(iter_cells(40.0, 40.0, 20.0))
        assert cells == [CellIndex(0, 0), CellIndex(1, 0), CellIndex(0, 1), CellIndex(1, 1)]


class TestSpatialGrid:
    def test_len_counts_points(self):
        grid = SpatialGrid(10.0)
        grid.insert_many([("a", 1, 1), ("b", 2, 2), ("c", 99, 99)])
        assert len(grid) == 3

    def test_within_finds_nearby(self):
        grid = SpatialGrid(10.0)
        grid.insert("a", 5.0, 5.0)
        grid.insert("b", 8.0, 5.0)
        grid.insert("far", 200.0, 200.0)
        assert sorted(grid.within(5.0, 5.0, 5.0)) == ["a", "b"]

    def test_within_is_strict(self):
        grid = SpatialGrid(10.0)
        grid.insert("edge", 10.0, 0.0)
        # Exactly at distance r: excluded, matching "distance < r".
        assert grid.within(0.0, 0.0, 10.0) == []

    def test_within_crosses_cell_borders(self):
        grid = SpatialGrid(5.0)
        grid.insert("a", 4.9, 4.9)
        grid.insert("b", 5.1, 5.1)
        assert sorted(grid.within(5.0, 5.0, 1.0)) == ["a", "b"]

    def test_within_rejects_negative_radius(self):
        grid = SpatialGrid(5.0)
        with pytest.raises(ValueError, match="non-negative"):
            grid.within(0, 0, -1.0)

    def test_neighbour_pairs_simple(self):
        grid = SpatialGrid(10.0)
        grid.insert("a", 0.0, 0.0)
        grid.insert("b", 3.0, 0.0)
        grid.insert("c", 100.0, 100.0)
        pairs = grid.neighbour_pairs(5.0)
        assert len(pairs) == 1
        assert set(pairs[0]) == {"a", "b"}

    def test_neighbour_pairs_unique(self):
        grid = SpatialGrid(4.0)
        grid.insert_many([("a", 1, 1), ("b", 2, 1), ("c", 3, 1)])
        pairs = grid.neighbour_pairs(10.0)
        as_sets = [frozenset(p) for p in pairs]
        assert len(as_sets) == len(set(as_sets)) == 3

    def test_neighbour_pairs_matches_bruteforce(self):
        rng = np.random.default_rng(7)
        points = [
            (f"p{i}", float(x), float(y))
            for i, (x, y) in enumerate(rng.uniform(0, 100, (60, 2)))
        ]
        grid = SpatialGrid(15.0)
        grid.insert_many(points)
        r = 12.0
        got = {frozenset(p) for p in grid.neighbour_pairs(r)}
        expected = set()
        for i, (ka, xa, ya) in enumerate(points):
            for kb, xb, yb in points[i + 1:]:
                if (xa - xb) ** 2 + (ya - yb) ** 2 < r * r:
                    expected.add(frozenset((ka, kb)))
        assert got == expected

    def test_clear(self):
        grid = SpatialGrid(10.0)
        grid.insert("a", 1, 1)
        grid.clear()
        assert len(grid) == 0
        assert grid.within(1, 1, 5) == []

    def test_occupancy(self):
        grid = SpatialGrid(10.0)
        grid.insert_many([("a", 1, 1), ("b", 2, 2), ("c", 55, 55)])
        occ = grid.occupancy()
        assert sorted(occ.values()) == [1, 2]


class TestOccupancyCounts:
    def test_total_preserved(self):
        rng = np.random.default_rng(3)
        xy = rng.uniform(0, 256, (40, 2))
        counts = occupancy_counts(xy, 256.0, 256.0, 20.0)
        assert counts.sum() == 40

    def test_cell_count_includes_empties(self):
        counts = occupancy_counts([(1.0, 1.0)], 256.0, 256.0, 20.0)
        assert counts.size == 13 * 13
        assert (counts == 0).sum() == 13 * 13 - 1

    def test_empty_input(self):
        counts = occupancy_counts([], 100.0, 100.0, 20.0)
        assert counts.sum() == 0
        assert counts.size == 5 * 5

    def test_clamps_overshoot(self):
        counts = occupancy_counts([(300.0, -5.0)], 256.0, 256.0, 20.0)
        assert counts.sum() == 1

    def test_strict_mode_raises(self):
        with pytest.raises(ValueError, match="outside"):
            occupancy_counts([(300.0, 5.0)], 256.0, 256.0, 20.0, clamp=False)
