"""Unit tests for repro.geometry.paths."""

import pytest

from repro.geometry import Path, Position, Segment


class TestSegment:
    def test_length(self):
        seg = Segment(Position(0, 0), Position(3, 4))
        assert seg.length == 5.0

    def test_point_at_endpoints(self):
        seg = Segment(Position(0, 0), Position(10, 0))
        assert seg.point_at(0.0) == Position(0, 0)
        assert seg.point_at(1.0) == Position(10, 0)

    def test_point_at_midpoint(self):
        seg = Segment(Position(0, 0), Position(10, 20))
        assert seg.point_at(0.5) == Position(5, 10)

    def test_interpolates_z(self):
        seg = Segment(Position(0, 0, 0), Position(0, 0, 10))
        assert seg.point_at(0.3).z == pytest.approx(3.0)


class TestPath:
    def test_requires_waypoint(self):
        with pytest.raises(ValueError, match="at least one"):
            Path(waypoints=[])

    def test_from_points_coerces_tuples(self):
        path = Path.from_points([(0, 0), (3, 4)])
        assert path.waypoints[1] == Position(3, 4, 0)

    def test_length(self):
        path = Path.from_points([(0, 0), (3, 4), (3, 10)])
        assert path.length == pytest.approx(11.0)

    def test_single_point_path_has_zero_length(self):
        path = Path.from_points([(5, 5)])
        assert path.length == 0.0
        assert path.finished

    def test_advance_moves_cursor(self):
        path = Path.from_points([(0, 0), (10, 0)])
        pos = path.advance(4.0)
        assert pos == Position(4, 0)
        assert path.walked == 4.0
        assert path.remaining == 6.0

    def test_advance_clamps_at_end(self):
        path = Path.from_points([(0, 0), (10, 0)])
        pos = path.advance(25.0)
        assert pos == Position(10, 0)
        assert path.finished

    def test_advance_rejects_negative(self):
        path = Path.from_points([(0, 0), (10, 0)])
        with pytest.raises(ValueError, match="non-negative"):
            path.advance(-1.0)

    def test_advance_across_segments(self):
        path = Path.from_points([(0, 0), (10, 0), (10, 10)])
        pos = path.advance(15.0)
        assert pos == Position(10, 5)

    def test_position_at_is_stateless(self):
        path = Path.from_points([(0, 0), (10, 0)])
        assert path.position_at(3.0) == Position(3, 0)
        assert path.walked == 0.0

    def test_position_at_negative_returns_start(self):
        path = Path.from_points([(2, 2), (10, 2)])
        assert path.position_at(-5.0) == Position(2, 2)

    def test_current_position_tracks_cursor(self):
        path = Path.from_points([(0, 0), (10, 0)])
        path.advance(7.0)
        assert path.current_position() == Position(7, 0)

    def test_zero_length_segments_are_skipped(self):
        path = Path.from_points([(0, 0), (0, 0), (10, 0)])
        assert path.advance(5.0) == Position(5, 0)

    def test_segments_iteration(self):
        path = Path.from_points([(0, 0), (1, 0), (1, 1)])
        segs = list(path.segments())
        assert len(segs) == 2
        assert segs[0].end == segs[1].start
