"""Unit tests for repro.dtn.messages and repro.dtn.routing."""

import numpy as np
import pytest

from repro.dtn import (
    DirectDelivery,
    Epidemic,
    FirstContact,
    Message,
    TwoHopRelay,
    uniform_workload,
)
from repro.netgraph import Graph
from repro.trace import random_walk_trace


@pytest.fixture
def rng():
    return np.random.default_rng(23)


class TestMessage:
    def test_expiry(self):
        m = Message("m1", "a", "b", created_at=100.0, ttl=50.0)
        assert m.expires_at == 150.0
        assert m.alive_at(100.0)
        assert m.alive_at(149.9)
        assert not m.alive_at(150.0)
        assert not m.alive_at(50.0)

    def test_infinite_ttl(self):
        m = Message("m1", "a", "b", created_at=0.0)
        assert m.alive_at(1e12)

    def test_validation(self):
        with pytest.raises(ValueError, match="src == dst"):
            Message("m", "a", "a", 0.0)
        with pytest.raises(ValueError, match="TTL"):
            Message("m", "a", "b", 0.0, ttl=0.0)


class TestUniformWorkload:
    def test_workload_size_and_order(self, rng):
        trace = random_walk_trace(10, 60, rng)
        messages = uniform_workload(trace, 20, rng)
        assert len(messages) == 20
        times = [m.created_at for m in messages]
        assert times == sorted(times)

    def test_endpoints_distinct_and_present(self, rng):
        trace = random_walk_trace(8, 60, rng)
        users = trace.unique_users()
        for m in uniform_workload(trace, 30, rng):
            assert m.src != m.dst
            assert m.src in users and m.dst in users

    def test_created_while_source_online(self, rng):
        trace = random_walk_trace(6, 40, rng)
        for m in uniform_workload(trace, 15, rng):
            present = [s.time for s in trace if m.src in s]
            assert m.created_at in present

    def test_min_presence_filter(self, rng):
        trace = random_walk_trace(3, 5, rng)
        with pytest.raises(ValueError, match="observations"):
            uniform_workload(trace, 5, rng, min_presence=100)

    def test_count_validation(self, rng):
        trace = random_walk_trace(5, 30, rng)
        with pytest.raises(ValueError, match="at least one"):
            uniform_workload(trace, 0, rng)


def _line_graph():
    """a - b - c - d chain."""
    return Graph(edges=[("a", "b"), ("b", "c"), ("c", "d")])


class TestEpidemicStep:
    def test_floods_neighbours(self, rng):
        holders, delivered = Epidemic().step(_line_graph(), {"a"}, "a", "d", rng)
        assert holders == {"a", "b"}
        assert not delivered

    def test_delivery_when_dst_reached(self, rng):
        holders, delivered = Epidemic().step(_line_graph(), {"c"}, "a", "d", rng)
        assert delivered
        assert "d" in holders

    def test_absent_carrier_is_noop(self, rng):
        g = Graph(nodes=["x"])
        holders, delivered = Epidemic().step(g, {"a"}, "a", "d", rng)
        assert holders == {"a"}
        assert not delivered


class TestDirectDeliveryStep:
    def test_only_src_to_dst(self, rng):
        g = _line_graph()
        holders, delivered = DirectDelivery().step(g, {"a"}, "a", "b", rng)
        assert delivered
        holders, delivered = DirectDelivery().step(g, {"a"}, "a", "d", rng)
        assert not delivered
        assert holders == {"a"}


class TestTwoHopStep:
    def test_relays_from_src_only(self, rng):
        g = _line_graph()
        holders, delivered = TwoHopRelay().step(g, {"a"}, "a", "d", rng)
        assert holders == {"a", "b"}
        # Relay b may now deliver to its neighbour c only if c == dst.
        holders2, delivered2 = TwoHopRelay().step(g, holders, "a", "c", rng)
        assert delivered2

    def test_relays_do_not_recruit(self, rng):
        g = _line_graph()
        holders = {"a", "b"}
        new_holders, _ = TwoHopRelay().step(g, holders, "a", "z", rng)
        # b's neighbour c must NOT become a holder (two-hop limit);
        # only src recruits.
        assert new_holders == {"a", "b"}


class TestFirstContactStep:
    def test_single_copy_moves(self, rng):
        g = _line_graph()
        holders, delivered = FirstContact().step(g, {"a"}, "a", "z", rng)
        assert len(holders) == 1
        assert holders == {"b"}  # only neighbour

    def test_delivers_when_adjacent(self, rng):
        g = _line_graph()
        holders, delivered = FirstContact().step(g, {"c"}, "a", "d", rng)
        assert delivered
        assert holders == {"c"}

    def test_stranded_carrier_waits(self, rng):
        g = Graph(nodes=["a", "b"])
        holders, delivered = FirstContact().step(g, {"a"}, "a", "b", rng)
        assert holders == {"a"}
        assert not delivered
