"""Unit tests for repro.dtn.replay and repro.dtn.metrics."""

import numpy as np
import pytest

from repro.dtn import (
    DirectDelivery,
    Epidemic,
    FirstContact,
    Message,
    TwoHopRelay,
    compare_protocols,
    replay,
    uniform_workload,
)
from repro.geometry import Position
from repro.trace import Snapshot, Trace, TraceMetadata, random_walk_trace


def _chain_trace(steps=6):
    """Static chain a-b-c-d with 5 m spacing: everything reachable at r=6."""
    positions = {
        "a": Position(0, 0),
        "b": Position(5, 0),
        "c": Position(10, 0),
        "d": Position(15, 0),
    }
    snaps = [Snapshot(i * 10.0, positions) for i in range(steps)]
    return Trace(snaps, TraceMetadata(tau=10.0))


class TestReplayOnChain:
    def test_epidemic_delivers_along_chain(self):
        trace = _chain_trace()
        msg = Message("m", "a", "d", created_at=0.0)
        result = replay(trace, 6.0, [msg], Epidemic())
        assert result.delivery_ratio == 1.0
        # One hop per snapshot: a->b at t0, ->c at t10, ->d at t20.
        assert result.outcomes[0].delivery_time == 20.0
        assert result.outcomes[0].copies == 4

    def test_direct_delivery_fails_across_chain(self):
        trace = _chain_trace()
        msg = Message("m", "a", "d", created_at=0.0)
        result = replay(trace, 6.0, [msg], DirectDelivery())
        assert result.delivery_ratio == 0.0
        assert result.median_delay is None

    def test_direct_delivery_succeeds_adjacent(self):
        trace = _chain_trace()
        msg = Message("m", "a", "b", created_at=0.0)
        result = replay(trace, 6.0, [msg], DirectDelivery())
        assert result.delivery_ratio == 1.0
        assert result.outcomes[0].delay == 0.0

    def test_two_hop_reaches_two_hops_only(self):
        trace = _chain_trace()
        reachable = Message("m1", "a", "c", created_at=0.0)
        unreachable = Message("m2", "a", "d", created_at=0.0)
        result = replay(trace, 6.0, [reachable, unreachable], TwoHopRelay())
        outcomes = {o.message.msg_id: o for o in result.outcomes}
        assert outcomes["m1"].delivered
        assert not outcomes["m2"].delivered

    def test_ttl_stops_forwarding(self):
        trace = _chain_trace()
        msg = Message("m", "a", "d", created_at=0.0, ttl=15.0)
        result = replay(trace, 6.0, [msg], Epidemic())
        # Needs 20 s; TTL expires at 15 s.
        assert result.delivery_ratio == 0.0

    def test_message_created_mid_trace(self):
        trace = _chain_trace()
        msg = Message("m", "a", "b", created_at=30.0)
        result = replay(trace, 6.0, [msg], Epidemic())
        assert result.outcomes[0].delivery_time == 30.0
        assert result.outcomes[0].delay == 0.0

    def test_range_validation(self):
        with pytest.raises(ValueError, match="positive"):
            replay(_chain_trace(), 0.0, [], Epidemic())


class TestReplayResult:
    def test_rows(self):
        trace = _chain_trace()
        msg = Message("m", "a", "b", created_at=0.0)
        row = replay(trace, 6.0, [msg], Epidemic()).row()
        assert row["protocol"] == "epidemic"
        assert row["delivery_ratio"] == 1.0

    def test_empty_workload(self):
        result = replay(_chain_trace(), 6.0, [], Epidemic())
        assert result.delivery_ratio == 0.0
        assert result.mean_copies == 0.0


class TestProtocolOrdering:
    """The classic DTN ordering on a mobile trace."""

    @pytest.fixture(scope="class")
    def results(self):
        rng = np.random.default_rng(3)
        trace = random_walk_trace(25, 240, rng, tau=10.0, step_std=10.0)
        messages = uniform_workload(trace, 40, rng)
        protocols = [Epidemic(), TwoHopRelay(), FirstContact(), DirectDelivery()]
        results = compare_protocols(trace, 20.0, messages, protocols)
        return {r.protocol: r for r in results}

    def test_epidemic_delivers_most(self, results):
        epidemic = results["epidemic"].delivery_ratio
        assert epidemic >= results["two-hop"].delivery_ratio
        assert epidemic >= results["direct"].delivery_ratio

    def test_epidemic_costs_most_copies(self, results):
        assert results["epidemic"].mean_copies >= results["two-hop"].mean_copies
        assert results["epidemic"].mean_copies > results["direct"].mean_copies

    def test_direct_is_single_copy(self, results):
        assert results["direct"].mean_copies == 1.0

    def test_two_hop_beats_direct(self, results):
        assert results["two-hop"].delivery_ratio >= results["direct"].delivery_ratio

    def test_compare_requires_protocols(self):
        with pytest.raises(ValueError, match="at least one"):
            compare_protocols(_chain_trace(), 6.0, [], [])
