"""Fault injection over the storage lifecycle: crash anywhere, tear nothing.

Every lifecycle rewrite (streaming compaction, tiering, retention)
funnels its crash-prone moments through
``repro.trace.sharding._lifecycle_checkpoint`` — after each copied
batch, each published file, just before and after the manifest swap,
and after cleanup.  These tests monkeypatch that hook to raise at the
N-th call *for every N* and assert the invariant the manifest-swap
design promises: a reader loading the directory after the crash sees
exactly the old generation or exactly the new one, bit for bit —
never a mix — and the next appender quietly clears the debris.

The second half exercises the live-follower side: auto-compaction
firing under an attached :class:`~repro.core.live.LiveAnalyzer` and
:class:`~repro.service.QueryService`, and retention racing an
in-flight reader that still holds memmaps into the dropped files.
"""

import json
import shutil
import urllib.request

import numpy as np
import pytest

import repro.trace.sharding as sharding_mod
from repro.core.analyzer import TraceAnalyzer
from repro.core.live import LiveAnalyzer
from repro.trace import (
    CompactionPolicy,
    RtrcDirAppender,
    StoreChangedError,
    compact_shard_dir,
    concat_shards,
    read_rtrc_dir,
    read_shard_manifest,
    retain_shard_dir,
    tier_shard_dir,
)
from repro.service import QueryService


class _Injected(Exception):
    """The simulated crash."""


class _FailAt:
    def __init__(self, n: int) -> None:
        self.n = n
        self.calls = 0

    def __call__(self, event: str) -> None:
        self.calls += 1
        if self.calls == self.n:
            raise _Injected(f"call {self.n}: {event}")


def _build_template(root, rounds=5, snaps=2, users=3) -> None:
    t = 0.0
    with RtrcDirAppender(root) as appender:
        for r in range(rounds):
            for _ in range(snaps):
                t += 10.0
                names = [f"u{k}" for k in range((r % users) + 1)]
                appender.append_snapshot(
                    t, names, np.full((len(names), 3), t)
                )
            appender.commit()


def _view(root):
    """The directory's loaded content plus its manifest document."""
    trace = concat_shards(read_rtrc_dir(root))
    manifest = read_shard_manifest(root)
    return trace, manifest


def _columns_equal(a, b) -> bool:
    return (
        np.array_equal(a.columns.times, b.columns.times)
        and np.array_equal(a.columns.snapshot_offsets, b.columns.snapshot_offsets)
        and np.array_equal(a.columns.user_ids, b.columns.user_ids)
        and np.array_equal(a.columns.xyz, b.columns.xyz)
        and a.columns.users.names == b.columns.users.names
    )


def _assert_old_or_new(root, old, new) -> str:
    """The crashed directory must load as exactly ``old`` or ``new``."""
    trace, manifest = _view(root)
    old_trace, old_manifest = old
    new_trace, new_manifest = new
    if manifest == old_manifest:
        assert _columns_equal(trace, old_trace)
        return "old"
    assert manifest == new_manifest
    assert _columns_equal(trace, new_trace)
    return "new"


def _crash_everywhere(tmp_path, monkeypatch, operation, cap=200):
    """Run ``operation`` with a crash injected at every checkpoint index.

    Returns the set of views ("old"/"new") observed after crashes —
    callers assert both sides were actually exercised, so the sweep
    cannot silently degenerate into only-before or only-after crashes.
    """
    template = tmp_path / "template"
    _build_template(template)
    old = _view(template)
    done = tmp_path / "final"
    shutil.copytree(template, done)
    operation(done)
    new = _view(done)

    seen = set()
    for n in range(1, cap + 1):
        root = tmp_path / f"crash-{n}"
        shutil.copytree(template, root)
        fault = _FailAt(n)
        monkeypatch.setattr(sharding_mod, "_lifecycle_checkpoint", fault)
        try:
            operation(root)
            crashed = False
        except _Injected:
            crashed = True
        finally:
            monkeypatch.undo()
        if not crashed:
            assert fault.calls < n, "operation swallowed the injected crash"
            assert n > 1, "operation must hit at least one checkpoint"
            return seen
        seen.add(_assert_old_or_new(root, old, new))
        # The next appender adopts the surviving manifest and clears
        # any orphaned files the crash left behind; the view the
        # reader saw is unchanged by that recovery.
        before = _view(root)
        appender = RtrcDirAppender(root)
        appender.close()
        after = _view(root)
        assert after[1] == before[1]
        assert _columns_equal(after[0], before[0])
        manifest = read_shard_manifest(root)
        on_disk = sorted(
            p.name for p in root.iterdir() if p.name != "manifest.json"
        )
        assert on_disk == sorted(manifest["files"])
        shutil.rmtree(root)
    raise AssertionError(f"operation still crashing after {cap} checkpoints")


class TestCrashConsistency:
    def test_streaming_compaction(self, tmp_path, monkeypatch):
        seen = _crash_everywhere(
            tmp_path,
            monkeypatch,
            lambda root: compact_shard_dir(root, 2, batch_snapshots=2),
        )
        assert seen == {"old", "new"}

    def test_streaming_compaction_gzip(self, tmp_path, monkeypatch):
        seen = _crash_everywhere(
            tmp_path,
            monkeypatch,
            lambda root: compact_shard_dir(
                root, 1, gzip_shards=True, batch_snapshots=2
            ),
        )
        assert seen == {"old", "new"}

    def test_materializing_compaction(self, tmp_path, monkeypatch):
        # The oracle path shares the checkpointed commit tail.
        seen = _crash_everywhere(
            tmp_path,
            monkeypatch,
            lambda root: compact_shard_dir(root, 2, batch_snapshots=None),
        )
        assert seen == {"old", "new"}

    def test_tiering(self, tmp_path, monkeypatch):
        seen = _crash_everywhere(
            tmp_path, monkeypatch, lambda root: tier_shard_dir(root, 20.0)
        )
        assert seen == {"old", "new"}

    def test_retention(self, tmp_path, monkeypatch):
        seen = _crash_everywhere(
            tmp_path, monkeypatch, lambda root: retain_shard_dir(root, 40.0)
        )
        assert seen == {"old", "new"}

    def test_policy_pipeline(self, tmp_path, monkeypatch):
        # Retention + compaction + tiering in one maybe_compact sweep:
        # each pass commits independently, so a crash can land between
        # them — the reader then sees one pass's "new" as the next
        # pass's "old", which the old-or-new invariant must survive
        # per *published manifest*, not per pipeline.  We assert the
        # weaker but crucial property directly: the directory always
        # loads, and its manifest always lists exactly the files on
        # disk after appender recovery.
        template = tmp_path / "template"
        _build_template(template)

        def operation(root):
            with RtrcDirAppender(root) as appender:
                appender.maybe_compact(
                    CompactionPolicy(
                        max_round_files=2,
                        batch_snapshots=2,
                        tier_after=20.0,
                        retain_for=40.0,
                    )
                )

        for n in range(1, 100):
            root = tmp_path / f"crash-{n}"
            shutil.copytree(template, root)
            fault = _FailAt(n)
            monkeypatch.setattr(sharding_mod, "_lifecycle_checkpoint", fault)
            try:
                operation(root)
                crashed = False
            except _Injected:
                crashed = True
            finally:
                monkeypatch.undo()
            trace, _ = _view(root)  # always loadable
            assert trace.columns.snapshot_count > 0
            appender = RtrcDirAppender(root)
            appender.close()
            manifest = read_shard_manifest(root)
            on_disk = sorted(
                p.name for p in root.iterdir() if p.name != "manifest.json"
            )
            assert on_disk == sorted(manifest["files"])
            shutil.rmtree(root)
            if not crashed:
                assert n > 1
                return
        raise AssertionError("pipeline still crashing after 100 checkpoints")


class TestLiveFollowers:
    def test_auto_compaction_under_live_analyzer(self, tmp_path):
        root = tmp_path / "dir"
        policy = CompactionPolicy(max_round_files=2, batch_snapshots=2)
        with RtrcDirAppender(root, policy=policy) as appender:
            appender.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
            appender.commit()
            follower = LiveAnalyzer(root)
            try:
                saw_change = False
                for t in range(2, 10):
                    appender.append_snapshot(
                        float(t), ["a", "b"], np.full((2, 3), float(t))
                    )
                    appender.commit()
                    try:
                        follower.refresh()
                    except StoreChangedError:
                        # Degrade exactly as the CLI/service do.
                        follower.close()
                        follower = LiveAnalyzer(root)
                        saw_change = True
                assert saw_change
                assert follower.snapshot_count == 9
                batch = TraceAnalyzer(concat_shards(read_rtrc_dir(root)))
                assert follower.contacts(10.0) == batch.contacts(10.0)
                assert follower.sessions() == batch.sessions()
            finally:
                follower.close()

    def test_auto_compaction_under_query_service(self, tmp_path):
        root = tmp_path / "dir"
        policy = CompactionPolicy(max_round_files=2, batch_snapshots=2)
        with RtrcDirAppender(root, policy=policy) as appender:
            appender.append_snapshot(1.0, ["a"], [[0.0, 0.0, 0.0]])
            appender.commit()
            with QueryService({"crawl": root}) as service:
                host, port = service.start()
                url = f"http://{host}:{port}/v1/crawl/contacts?r=10"

                def fetch():
                    with urllib.request.urlopen(url) as response:
                        return response.headers["ETag"], json.loads(
                            response.read()
                        )

                etag_before, _ = fetch()
                for t in range(2, 8):
                    appender.append_snapshot(
                        float(t), ["a", "b"], np.full((2, 3), float(t))
                    )
                    appender.commit()
                etag_after, doc = fetch()
                assert etag_after != etag_before
                assert service.stats.reopened_followers >= 1
                batch = TraceAnalyzer(concat_shards(read_rtrc_dir(root)))
                assert len(doc["contacts"]) == len(batch.contacts(10.0))

    def test_retention_racing_in_flight_reader(self, tmp_path):
        root = tmp_path / "dir"
        _build_template(root)
        shards = read_rtrc_dir(root, mmap=True)  # in-flight: holds memmaps
        before = concat_shards(shards)
        times_before = np.array(before.columns.times)
        dropped = retain_shard_dir(root, older_than=40.0)
        assert dropped
        # POSIX unlink removes names, not inodes: the reader's view is
        # still fully intact, bit for bit.
        again = concat_shards(shards)
        assert np.array_equal(again.columns.times, times_before)
        # A *new* reader sees exactly the pruned generation.
        pruned = concat_shards(read_rtrc_dir(root))
        kept = times_before[times_before >= float(pruned.columns.times[0])]
        assert np.array_equal(pruned.columns.times, kept)
