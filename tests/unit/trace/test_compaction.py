"""Compaction must be invisible to readers: same bytes, fewer files.

``compact_shard_dir`` folds many small append-round shards into a
balanced split, and ``compact_rtrc_store`` trims the capacity slack of
an appendable single file; in both cases the loaded store — columns
*and* user table — must be bit-for-bit what it was before.
"""

import gzip
import tracemalloc

import numpy as np
import pytest

from repro.trace import (
    RtrcAppender,
    RtrcDirAppender,
    Trace,
    TraceFormatError,
    TraceMetadata,
    compact_rtrc_store,
    compact_shard_dir,
    concat_shards,
    list_rtrc_dir,
    read_rtrc_dir,
    read_shard_manifest,
    read_trace_rtrc,
    to_rtrc_dir,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarBuilder
from tests.unit.core.test_sharded_equivalence import churn_trace


def _stream_dir(root, trace, rounds, metadata=None):
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    with RtrcDirAppender(root, metadata or trace.metadata) as appender:
        for lo, hi in zip(edges[:-1], edges[1:]):
            for index in range(int(lo), int(hi)):
                a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
                appender.append_snapshot(
                    float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
                )
            appender.commit()


def _assert_stores_equal(a: Trace, b: Trace) -> None:
    assert np.array_equal(a.columns.times, b.columns.times)
    assert np.array_equal(a.columns.snapshot_offsets, b.columns.snapshot_offsets)
    assert np.array_equal(a.columns.user_ids, b.columns.user_ids)
    assert np.array_equal(a.columns.xyz, b.columns.xyz)
    assert a.columns.users.names == b.columns.users.names
    assert a.metadata == b.metadata


@pytest.fixture(scope="module")
def trace():
    return churn_trace(41)


class TestShardDirCompaction:
    @pytest.mark.parametrize("k", (1, 2, 7))
    def test_compacted_dir_loads_bit_for_bit(self, tmp_path, trace, k):
        root = tmp_path / f"dir-{k}"
        _stream_dir(root, trace, 9)
        before = concat_shards(read_rtrc_dir(root))
        paths = compact_shard_dir(root, k)
        assert len(paths) == k
        after = concat_shards(read_rtrc_dir(root))
        _assert_stores_equal(before, after)
        _assert_stores_equal(trace, after)

    def test_compaction_balances_and_removes_round_files(self, tmp_path, trace):
        root = tmp_path / "balance"
        _stream_dir(root, trace, 9)
        compact_shard_dir(root, 3)
        manifest = read_shard_manifest(root)
        assert len(manifest["files"]) == 3
        counts = manifest["snapshot_counts"]
        assert sum(counts) == len(trace)
        assert max(counts) - min(counts) <= 1  # the even split
        # Only the compacted generation (plus the manifest) survives.
        on_disk = sorted(p.name for p in root.iterdir())
        assert on_disk == sorted(manifest["files"] + ["manifest.json"])

    def test_generation_names_never_collide_across_compactions(
        self, tmp_path, trace
    ):
        root = tmp_path / "gens"
        _stream_dir(root, trace, 5)
        compact_shard_dir(root, 2)
        assert read_shard_manifest(root)["generation"] == 1
        compact_shard_dir(root, 2)
        manifest = read_shard_manifest(root)
        assert manifest["generation"] == 2
        assert all(".g2." in name for name in manifest["files"])
        _assert_stores_equal(trace, concat_shards(read_rtrc_dir(root)))

    def test_compacted_dir_accepts_further_appends(self, tmp_path, trace):
        root = tmp_path / "then-append"
        _stream_dir(root, trace, 6)
        compact_shard_dir(root, 2)
        with RtrcDirAppender(root) as appender:
            t = trace.end_time + 10.0
            appender.append_snapshot(t, ["late"], [[0.0, 0.0, 0.0]])
        loaded = concat_shards(read_rtrc_dir(root))
        assert len(loaded) == len(trace) + 1

    def test_compacting_a_to_rtrc_dir_export(self, tmp_path, trace):
        root = tmp_path / "export"
        to_rtrc_dir(trace, 7, root)
        compact_shard_dir(root, 2)
        _assert_stores_equal(trace, concat_shards(read_rtrc_dir(root)))

    def test_gzip_compaction(self, tmp_path, trace):
        root = tmp_path / "gz"
        _stream_dir(root, trace, 4)
        paths = compact_shard_dir(root, 2, gzip_shards=True)
        assert all(p.suffix == ".gz" for p in paths)
        _assert_stores_equal(trace, concat_shards(read_rtrc_dir(root)))

    def test_empty_directory_rejected(self, tmp_path):
        root = tmp_path / "empty"
        RtrcDirAppender(root).close()
        with pytest.raises(TraceFormatError, match="no shard files"):
            compact_shard_dir(root, 2)

    def test_interrupted_compaction_leaves_old_view_loadable(
        self, tmp_path, trace, monkeypatch
    ):
        # Simulate a crash after the new generation's files are written
        # but before the manifest swap: the directory must still load
        # as the *old* view, and the next appender cleans the orphans.
        import repro.trace.sharding as sharding_mod

        root = tmp_path / "crash"
        _stream_dir(root, trace, 4)
        before = concat_shards(read_rtrc_dir(root))

        boom = RuntimeError("power loss")

        def exploding(*args, **kwargs):
            raise boom

        monkeypatch.setattr(sharding_mod, "write_shard_manifest", exploding)
        with pytest.raises(RuntimeError, match="power loss"):
            compact_shard_dir(root, 2)
        monkeypatch.undo()

        _assert_stores_equal(before, concat_shards(read_rtrc_dir(root)))
        appender = RtrcDirAppender(root)
        assert sorted(appender.recovered_files) == [
            "shard-00000.g1.rtrc",
            "shard-00001.g1.rtrc",
        ]
        appender.close()
        assert sorted(list_rtrc_dir(root)) == sorted(
            f"shard-{i:05d}.rtrc" for i in range(4)
        )


def _grid_trace(snapshots: int, users: int) -> Trace:
    names = [f"user-{k:03d}" for k in range(users)]
    xyz = np.arange(users * 3, dtype=np.float64).reshape(users, 3)
    builder = ColumnarBuilder()
    for step in range(snapshots):
        builder.append_snapshot(float(step), names, xyz + step)
    return Trace.from_columns(builder.build(), TraceMetadata(tau=1.0))


class TestStreamingCompactor:
    """The streaming path is pinned byte-for-byte to the materializing one."""

    @pytest.mark.parametrize("batch", (1, 3, 4096))
    def test_file_bytes_match_materializing_oracle(self, tmp_path, trace, batch):
        streamed = tmp_path / f"stream-{batch}"
        oracle = tmp_path / f"oracle-{batch}"
        _stream_dir(streamed, trace, 7)
        _stream_dir(oracle, trace, 7)
        compact_shard_dir(streamed, 3, batch_snapshots=batch)
        compact_shard_dir(oracle, 3, batch_snapshots=None)
        manifest = read_shard_manifest(streamed)
        assert manifest == read_shard_manifest(oracle)
        for name in manifest["files"]:
            assert (streamed / name).read_bytes() == (oracle / name).read_bytes()

    def test_gzip_payload_matches_materializing_oracle(self, tmp_path, trace):
        # The gzip container embeds an mtime, so only the decompressed
        # stream can be (and is) identical.
        streamed = tmp_path / "stream-gz"
        oracle = tmp_path / "oracle-gz"
        _stream_dir(streamed, trace, 5)
        _stream_dir(oracle, trace, 5)
        compact_shard_dir(streamed, 2, gzip_shards=True, batch_snapshots=3)
        compact_shard_dir(oracle, 2, gzip_shards=True, batch_snapshots=None)
        manifest = read_shard_manifest(streamed)
        assert manifest == read_shard_manifest(oracle)
        for name in manifest["files"]:
            assert gzip.decompress((streamed / name).read_bytes()) == (
                gzip.decompress((oracle / name).read_bytes())
            )

    def test_peak_memory_bounded_by_batch_not_directory(self, tmp_path):
        # ~2.6 MiB of payload in 8 round files; the streaming pass with
        # a 64-snapshot batch must never hold more than a small multiple
        # of one batch, while the materializing oracle holds everything.
        trace = _grid_trace(snapshots=1600, users=50)
        payload = trace.columns.xyz.nbytes + trace.columns.user_ids.nbytes
        batch = 64
        batch_bytes = (payload * batch) // 1600

        streamed = tmp_path / "stream"
        _stream_dir(streamed, trace, 8)
        tracemalloc.start()
        compact_shard_dir(streamed, 2, batch_snapshots=batch)
        _, peak_streaming = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        oracle = tmp_path / "oracle"
        _stream_dir(oracle, trace, 8)
        tracemalloc.start()
        compact_shard_dir(oracle, 2, batch_snapshots=None)
        _, peak_materializing = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert peak_materializing > payload  # the oracle really holds it all
        # Headroom: per-file offset tables, the user table, and one
        # in-flight chunk copy — but nowhere near the whole directory.
        assert peak_streaming < 8 * batch_bytes + 256 * 1024
        assert peak_streaming * 4 < peak_materializing

        manifest = read_shard_manifest(streamed)
        assert manifest == read_shard_manifest(oracle)
        for name in manifest["files"]:
            assert (streamed / name).read_bytes() == (oracle / name).read_bytes()


class TestSingleFileCompaction:
    def test_slack_trimmed_and_bytes_identical(self, tmp_path, trace):
        path = tmp_path / "grown.rtrc"
        cols = trace.columns
        with RtrcAppender(path, trace.metadata) as appender:
            for index in range(cols.snapshot_count):
                a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
                appender.append_snapshot(
                    float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
                )
                appender.commit()
        before = path.stat().st_size
        _, reclaimed = compact_rtrc_store(path)
        assert reclaimed > 0
        assert path.stat().st_size == before - reclaimed
        loaded = read_trace_rtrc(path)
        _assert_stores_equal(trace, loaded)
        # The compacted file is byte-identical to a one-shot write.
        oneshot = write_trace_rtrc(trace, tmp_path / "oneshot.rtrc")
        assert path.read_bytes() == oneshot.read_bytes()

    def test_compacted_file_reopens_for_append(self, tmp_path, trace):
        path = tmp_path / "reopen.rtrc"
        write_trace_rtrc(trace, path)
        compact_rtrc_store(path)
        with RtrcAppender(path) as appender:
            appender.append_snapshot(
                trace.end_time + 5.0, ["late"], [[0.0, 0.0, 0.0]]
            )
        assert len(read_trace_rtrc(path)) == len(trace) + 1

    def test_gzip_rejected(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "t.rtrc.gz")
        with pytest.raises(ValueError, match="gzip"):
            compact_rtrc_store(path)
