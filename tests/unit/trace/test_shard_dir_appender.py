"""RtrcDirAppender: every committed round is one immutable shard file.

The shard-dir appender is the streaming producer behind parallel live
analysis: rounds buffer in memory, ``commit()`` publishes them as a
new ``shard-*.rtrc`` file plus an atomic manifest swap, and the
directory stays a valid shard dir (loadable by ``read_rtrc_dir``,
concat equal to the one-shot trace) at every commit point.
"""

import json

import numpy as np
import pytest

from repro.trace import (
    RtrcDirAppender,
    StoreChangedError,
    Trace,
    TraceFormatError,
    TraceMetadata,
    compact_shard_dir,
    concat_shards,
    list_rtrc_dir,
    read_rtrc_dir,
    read_shard_manifest,
    read_trace_rtrc,
    to_rtrc_dir,
)
from tests.unit.core.test_sharded_equivalence import churn_trace


def _stream(appender, trace, rounds):
    cols = trace.columns
    edges = np.linspace(0, cols.snapshot_count, rounds + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for index in range(int(lo), int(hi)):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            appender.append_snapshot(
                float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
            )
        appender.commit()


@pytest.fixture(scope="module")
def trace():
    return churn_trace(37)


class TestCommit:
    def test_each_round_becomes_one_shard_file(self, tmp_path, trace):
        root = tmp_path / "rounds"
        with RtrcDirAppender(root, trace.metadata) as appender:
            _stream(appender, trace, 5)
            assert appender.shard_count == 5
        manifest = read_shard_manifest(root)
        assert manifest["files"] == [f"shard-{i:05d}.rtrc" for i in range(5)]
        assert sum(manifest["snapshot_counts"]) == len(trace)

    def test_concat_load_equals_one_shot_trace(self, tmp_path, trace):
        root = tmp_path / "equal"
        with RtrcDirAppender(root, trace.metadata) as appender:
            _stream(appender, trace, 7)
        loaded = concat_shards(read_rtrc_dir(root))
        assert np.array_equal(loaded.columns.times, trace.columns.times)
        assert np.array_equal(
            loaded.columns.snapshot_offsets, trace.columns.snapshot_offsets
        )
        assert np.array_equal(loaded.columns.user_ids, trace.columns.user_ids)
        assert np.array_equal(loaded.columns.xyz, trace.columns.xyz)
        assert loaded.columns.users.names == trace.columns.users.names
        assert loaded.metadata == trace.metadata

    def test_user_tables_are_prefixes_of_later_rounds(self, tmp_path, trace):
        # Round k's interner must be a prefix of round k+1's, so one
        # (latest) name table decodes ids from every round file.
        root = tmp_path / "prefix"
        with RtrcDirAppender(root, trace.metadata) as appender:
            _stream(appender, trace, 4)
        tables = [
            read_trace_rtrc(root / name).columns.users.names
            for name in list_rtrc_dir(root)
        ]
        for earlier, later in zip(tables, tables[1:]):
            assert later[: len(earlier)] == earlier

    def test_empty_commit_is_a_no_op(self, tmp_path):
        root = tmp_path / "noop"
        with RtrcDirAppender(root) as appender:
            assert appender.commit() is None
            assert appender.shard_count == 0
        assert list_rtrc_dir(root) == []

    def test_fresh_directory_gets_an_empty_manifest(self, tmp_path):
        root = tmp_path / "fresh"
        RtrcDirAppender(root).close()
        manifest = read_shard_manifest(root)
        assert manifest is not None
        assert manifest["files"] == []

    def test_pending_snapshots_survive_only_via_commit(self, tmp_path, trace):
        root = tmp_path / "pending"
        appender = RtrcDirAppender(root, trace.metadata)
        appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        assert appender.snapshot_count == 1
        assert appender.committed_snapshot_count == 0
        assert list_rtrc_dir(root) == []
        appender.close()  # close commits the pending round
        assert read_shard_manifest(root)["snapshot_counts"] == [1]


class TestValidation:
    def test_times_must_increase_across_rounds(self, tmp_path):
        root = tmp_path / "order"
        with RtrcDirAppender(root) as appender:
            appender.append_snapshot(10.0, ["a"], [[0.0, 0.0, 0.0]])
            appender.commit()
            with pytest.raises(ValueError, match="strictly increasing"):
                appender.append_snapshot(10.0, ["a"], [[0.0, 0.0, 0.0]])

    def test_duplicate_user_in_snapshot_rejected(self, tmp_path):
        root = tmp_path / "dup"
        with RtrcDirAppender(root) as appender:
            with pytest.raises(ValueError, match="twice"):
                appender.append_snapshot(
                    0.0, ["a", "a"], [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]
                )

    def test_closed_appender_rejects_appends(self, tmp_path):
        appender = RtrcDirAppender(tmp_path / "closed")
        appender.close()
        with pytest.raises(ValueError, match="closed"):
            appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        appender.close()  # idempotent

    def test_commit_after_concurrent_compaction_raises(self, tmp_path):
        # A compaction (or any history rewrite) under a live appender
        # breaks the append-only contract; the commit must raise the
        # typed error instead of publishing a manifest that resurrects
        # the pre-compaction files.
        root = tmp_path / "raced"
        appender = RtrcDirAppender(root)
        appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        appender.commit()
        appender.append_snapshot(10.0, ["a"], [[1.0, 0.0, 0.0]])
        appender.commit()
        compact_shard_dir(root, 1)
        appender.append_snapshot(20.0, ["a"], [[2.0, 0.0, 0.0]])
        with pytest.raises(StoreChangedError, match="compacted"):
            appender.commit()
        # The failed commit left no partial round file behind: the
        # directory is exactly the compacted store.
        manifest = read_shard_manifest(root)
        on_disk = sorted(p.name for p in root.iterdir() if p.suffix == ".rtrc")
        assert on_disk == manifest["files"]
        loaded = concat_shards(read_rtrc_dir(root))
        assert loaded.columns.snapshot_count == 2
        # close() flushes through commit, so it surfaces the same
        # conflict instead of silently dropping the pending round.
        with pytest.raises(StoreChangedError, match="compacted"):
            appender.close()

    def test_commit_after_manifest_deletion_raises(self, tmp_path):
        root = tmp_path / "vanished"
        appender = RtrcDirAppender(root)
        appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        appender.commit()
        (root / "manifest.json").unlink()
        appender.append_snapshot(10.0, ["a"], [[1.0, 0.0, 0.0]])
        with pytest.raises(StoreChangedError, match="manifest"):
            appender.commit()


class TestReopen:
    def test_reopen_resumes_after_last_committed_round(self, tmp_path, trace):
        root = tmp_path / "resume"
        half = len(trace) // 2
        first = Trace.from_columns(
            trace.columns.slice_snapshots(0, half), trace.metadata
        )
        rest = Trace.from_columns(
            trace.columns.slice_snapshots(half, len(trace)), trace.metadata
        )
        with RtrcDirAppender(root, trace.metadata) as appender:
            _stream(appender, first, 2)
        with RtrcDirAppender(root) as appender:
            assert appender.committed_snapshot_count == half
            assert appender.metadata == trace.metadata
            _stream(appender, rest, 2)
        loaded = concat_shards(read_rtrc_dir(root))
        assert np.array_equal(loaded.columns.times, trace.columns.times)
        assert np.array_equal(loaded.columns.user_ids, trace.columns.user_ids)
        assert loaded.columns.users.names == trace.columns.users.names

    def test_orphan_shard_files_are_recovered_on_reopen(self, tmp_path, trace):
        # A crash between the shard-file write and the manifest swap
        # leaves a file the manifest never mentions; reopening must
        # delete it so its name can be reused.
        root = tmp_path / "orphan"
        with RtrcDirAppender(root, trace.metadata) as appender:
            _stream(appender, trace, 2)
        orphan = root / "shard-00002.rtrc"
        orphan.write_bytes((root / "shard-00001.rtrc").read_bytes())
        appender = RtrcDirAppender(root)
        assert appender.recovered_files == ["shard-00002.rtrc"]
        assert not orphan.exists()
        assert appender.shard_count == 2
        appender.close()

    def test_reopen_a_to_rtrc_dir_export_appends_after_it(self, tmp_path, trace):
        root = tmp_path / "export"
        to_rtrc_dir(trace, 3, root)
        with RtrcDirAppender(root) as appender:
            assert appender.committed_snapshot_count == len(trace)
            t = trace.end_time + 10.0
            appender.append_snapshot(t, ["late"], [[1.0, 2.0, 0.0]])
        shards = read_rtrc_dir(root)
        loaded = concat_shards(shards)
        assert len(loaded) == len(trace) + 1
        assert loaded.columns.users.names[-1] == "late"

    def test_unordered_foreign_directory_rejected(self, tmp_path, trace):
        root = tmp_path / "unordered"
        to_rtrc_dir(trace, 2, root)
        manifest = read_shard_manifest(root)
        manifest["files"] = list(reversed(manifest["files"]))
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TraceFormatError, match="strictly after"):
            RtrcDirAppender(root)

    def test_manifest_naming_missing_file_rejected(self, tmp_path, trace):
        root = tmp_path / "missing"
        with RtrcDirAppender(root, trace.metadata) as appender:
            _stream(appender, trace, 2)
        (root / "shard-00000.rtrc").unlink()
        with pytest.raises(TraceFormatError, match="missing shard file"):
            RtrcDirAppender(root)


class TestFsync:
    def test_fsync_commit_round_trips(self, tmp_path, trace):
        # Durability knob parity with RtrcAppender: the fsynced path
        # must publish the same bytes (power-loss ordering itself is
        # not observable in a test).
        root = tmp_path / "durable"
        with RtrcDirAppender(root, trace.metadata, fsync=True) as appender:
            _stream(appender, trace, 3)
        loaded = concat_shards(read_rtrc_dir(root))
        assert np.array_equal(loaded.columns.times, trace.columns.times)
        assert np.array_equal(loaded.columns.xyz, trace.columns.xyz)


class TestSinkCompatibility:
    def test_metadata_assignment_like_rtrc_appender(self, tmp_path):
        # Monitors assign sink.metadata on attach; round files written
        # afterwards must carry it.
        root = tmp_path / "meta"
        with RtrcDirAppender(root) as appender:
            appender.metadata = TraceMetadata(land_name="Dance Island", tau=10.0)
            appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
            appender.commit()
        loaded = read_trace_rtrc(root / "shard-00000.rtrc")
        assert loaded.metadata.land_name == "Dance Island"
