"""Unit tests for the metaverse-scale synthetic-world generator."""

import numpy as np
import pytest

from repro.metaverse import HotspotField
from repro.trace import metaverse_trace, random_walk_trace


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestHotspotField:
    def test_generate_shapes(self, rng):
        field = HotspotField.generate(32, 1024.0, rng)
        assert field.centers.shape == (32, 2)
        assert field.weights.shape == (32,)
        assert field.weights.sum() == pytest.approx(1.0)

    def test_zipf_popularity_decreasing(self, rng):
        field = HotspotField.generate(16, 1024.0, rng, zipf_exponent=1.2)
        assert all(a >= b for a, b in zip(field.weights, field.weights[1:]))
        # Rank-1 venue dominates rank-16 by 16^1.2.
        assert field.weights[0] / field.weights[-1] == pytest.approx(16 ** 1.2)

    def test_assignment_respects_popularity(self, rng):
        field = HotspotField.generate(8, 512.0, rng, zipf_exponent=1.5)
        assignment = field.assign(20000, rng)
        counts = np.bincount(assignment, minlength=8)
        assert counts[0] > counts[-1]

    def test_materialize_within_bounds(self, rng):
        field = HotspotField.generate(8, 512.0, rng, scatter=64.0)
        coords = field.materialize(field.assign(500, rng), rng)
        assert coords.shape == (500, 2)
        assert coords.min() >= 0.0 and coords.max() <= 512.0


class TestMetaverseTrace:
    def test_shape_and_metadata(self, rng):
        trace = metaverse_trace(50, 12, rng, tau=10.0, size=512.0)
        assert len(trace) == 12
        assert len(trace.unique_users()) == 50
        assert trace.metadata.land_name == "synthetic-metaverse"
        assert trace.metadata.source == "synthetic"
        assert trace.metadata.tau == 10.0

    def test_positions_within_world(self, rng):
        trace = metaverse_trace(80, 20, rng, size=256.0)
        xyz = trace.columns.xyz
        assert xyz[:, :2].min() >= 0.0
        assert xyz[:, :2].max() <= 256.0
        assert np.all(xyz[:, 2] == 0.0)

    def test_bit_reproducible_under_seed(self):
        a = metaverse_trace(40, 15, np.random.default_rng(3))
        b = metaverse_trace(40, 15, np.random.default_rng(3))
        c = metaverse_trace(40, 15, np.random.default_rng(4))
        assert np.array_equal(a.columns.xyz, b.columns.xyz)
        assert not np.array_equal(a.columns.xyz, c.columns.xyz)

    def test_hotspot_concentration_beats_random_walk(self):
        # The point of the generator: avatars crowd venues, so typical
        # nearest-neighbour distances are far below the uniform walk's.
        n, size = 400, 2048.0
        mv = metaverse_trace(
            n, 1, np.random.default_rng(0), size=size, n_hotspots=16
        )
        rw = random_walk_trace(n, 1, np.random.default_rng(0), size=size)

        def median_nn(trace):
            pts = trace.columns.xyz[:, :2]
            deltas = pts[:, None, :] - pts[None, :, :]
            d2 = (deltas ** 2).sum(axis=2)
            np.fill_diagonal(d2, np.inf)
            return float(np.median(np.sqrt(d2.min(axis=1))))

        assert median_nn(mv) < median_nn(rw) / 3.0

    def test_venue_hops_move_avatars(self):
        # With certain hops every step, positions decorrelate fast.
        trace = metaverse_trace(
            30, 3, np.random.default_rng(5),
            size=4096.0, hop_probability=1.0, step_std=0.0,
        )
        xyz = trace.columns.xyz.reshape(3, 30, 3)
        moved = np.linalg.norm(xyz[1, :, :2] - xyz[0, :, :2], axis=1)
        assert np.median(moved) > 100.0

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            metaverse_trace(0, 5, rng)
        with pytest.raises(ValueError, match="at least one"):
            metaverse_trace(5, 0, rng)
