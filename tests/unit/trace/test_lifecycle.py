"""The storage lifecycle: policy, slack, tiering, retention, one-writer locks.

``CompactionPolicy`` makes a long-running :class:`RtrcDirAppender`
self-maintaining — compaction, tiering and retention fire between
commits and the appender re-adopts each swapped manifest.  These tests
pin the policy semantics, the age thresholds, the generation bumps
followers key on, and the PR-5 footgun fix: ``compact_rtrc_store``
against a store a live ``RtrcAppender`` holds open now raises a typed
:class:`StoreInUseError` instead of silently orphaning the appender's
inode.
"""

import numpy as np
import pytest

from repro.trace import (
    CompactionPolicy,
    RtrcAppender,
    RtrcDirAppender,
    StoreChangedError,
    StoreInUseError,
    compact_rtrc_store,
    compact_shard_dir,
    concat_shards,
    list_rtrc_dir,
    read_rtrc_dir,
    read_shard_manifest,
    retain_shard_dir,
    shard_dir_generation,
    shard_dir_slack,
    tier_shard_dir,
    write_trace_rtrc,
)
from repro.trace.storage import fcntl
from tests.unit.core.test_sharded_equivalence import churn_trace
from tests.unit.trace.test_compaction import _assert_stores_equal, _stream_dir


@pytest.fixture(scope="module")
def trace():
    return churn_trace(37)


def _round_dir(tmp_path, name, rounds=6, snaps_per_round=3, users=2):
    """A fresh appender directory: ``rounds`` files, 10 s per snapshot."""
    root = tmp_path / name
    t = 0.0
    with RtrcDirAppender(root) as appender:
        for _ in range(rounds):
            for _ in range(snaps_per_round):
                t += 10.0
                names = [f"u{k}" for k in range(users)]
                appender.append_snapshot(t, names, np.full((users, 3), t))
            appender.commit()
    return root


class TestCompactionPolicy:
    def test_all_thresholds_unset_rejected(self):
        with pytest.raises(ValueError, match="at least one threshold"):
            CompactionPolicy()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_round_files": 0}, "max_round_files"),
            ({"max_slack_fraction": 1.0}, "max_slack_fraction"),
            ({"max_slack_fraction": -0.1}, "max_slack_fraction"),
            ({"max_round_files": 4, "target_shards": 0}, "target_shards"),
            ({"max_round_files": 4, "batch_snapshots": 0}, "batch_snapshots"),
            ({"tier_after": -1.0}, "tier_after"),
            ({"retain_for": -1.0}, "retain_for"),
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            CompactionPolicy(**kwargs)

    def test_compaction_due(self):
        policy = CompactionPolicy(max_round_files=4, max_slack_fraction=0.5)
        assert not policy.compaction_due(4, 0.5)
        assert policy.compaction_due(5, 0.0)
        assert policy.compaction_due(1, 0.51)

    def test_file_count_trigger_folds_directory(self, tmp_path, trace):
        root = tmp_path / "auto"
        policy = CompactionPolicy(max_round_files=3)
        cols = trace.columns
        with RtrcDirAppender(root, trace.metadata, policy=policy) as appender:
            for index in range(cols.snapshot_count):
                a, b = (
                    cols.snapshot_offsets[index],
                    cols.snapshot_offsets[index + 1],
                )
                appender.append_snapshot(
                    float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]
                )
                appender.commit()
        # Never more than max_round_files + the round that tripped it.
        assert len(list_rtrc_dir(root)) <= 4
        assert shard_dir_generation(root)[0] > 0
        _assert_stores_equal(trace, concat_shards(read_rtrc_dir(root)))

    def test_appender_survives_its_own_compaction(self, tmp_path):
        root = tmp_path / "continue"
        policy = CompactionPolicy(max_round_files=2)
        with RtrcDirAppender(root, policy=policy) as appender:
            for r in range(8):
                appender.append_snapshot(float(r + 1), ["u"], [[0.0, 0.0, 0.0]])
                appender.commit()  # must not raise StoreChangedError
            assert appender.committed_snapshot_count == 8
        loaded = concat_shards(read_rtrc_dir(root))
        assert np.array_equal(
            loaded.columns.times, np.arange(1.0, 9.0)
        )

    def test_maybe_compact_without_policy_rejected(self, tmp_path):
        root = _round_dir(tmp_path, "nopolicy")
        with RtrcDirAppender(root) as appender:
            with pytest.raises(ValueError, match="no CompactionPolicy"):
                appender.maybe_compact()

    def test_maybe_compact_with_pending_snapshots_rejected(self, tmp_path):
        root = _round_dir(tmp_path, "pending")
        with RtrcDirAppender(root) as appender:
            appender.append_snapshot(1e6, ["u"], [[0.0, 0.0, 0.0]])
            with pytest.raises(ValueError, match="pending"):
                appender.maybe_compact(CompactionPolicy(max_round_files=1))
            appender.commit()

    def test_explicit_policy_argument_wins(self, tmp_path):
        root = _round_dir(tmp_path, "explicit", rounds=5)
        with RtrcDirAppender(root) as appender:
            assert appender.maybe_compact(CompactionPolicy(max_round_files=2))
            assert len(appender.shard_files) == 1
            # Already at the target: a second call is a no-op.
            assert not appender.maybe_compact(CompactionPolicy(max_round_files=2))

    def test_slack_trigger(self, tmp_path):
        # Many tiny round files are nearly all header: slack near 1.
        root = _round_dir(tmp_path, "slacky", rounds=8, snaps_per_round=1)
        assert shard_dir_slack(root) > 0.5
        with RtrcDirAppender(root) as appender:
            assert appender.maybe_compact(
                CompactionPolicy(max_slack_fraction=0.5)
            )
        assert len(list_rtrc_dir(root)) == 1

    def test_retention_policy_via_appender(self, tmp_path):
        root = _round_dir(tmp_path, "retain", rounds=6, snaps_per_round=3)
        with RtrcDirAppender(root) as appender:
            assert appender.maybe_compact(CompactionPolicy(retain_for=60.0))
            files = appender.shard_files
            # The appender keeps committing after the prefix drop,
            # without colliding with surviving high-index names.
            t = appender.last_time
            appender.append_snapshot(t + 10.0, ["w"], [[1.0, 1.0, 1.0]])
            path = appender.commit()
            assert path.name not in files
        assert len(list_rtrc_dir(root)) == len(files) + 1


class TestSlack:
    def test_empty_directory_is_zero(self, tmp_path):
        root = tmp_path / "none"
        RtrcDirAppender(root).close()
        assert shard_dir_slack(root) == 0.0

    def test_compaction_reduces_slack(self, tmp_path, trace):
        root = tmp_path / "reduce"
        _stream_dir(root, trace, 12)
        before = shard_dir_slack(root)
        compact_shard_dir(root)
        assert shard_dir_slack(root) < before


class TestTiering:
    def test_cold_files_gzipped_bit_identical(self, tmp_path):
        root = _round_dir(tmp_path, "tier", rounds=5, snaps_per_round=2)
        before = concat_shards(read_rtrc_dir(root))
        generation = shard_dir_generation(root)[0]
        tiered = tier_shard_dir(root, older_than=40.0)
        assert tiered and all(p.name.endswith(".rtrc.gz") for p in tiered)
        assert shard_dir_generation(root)[0] == generation + 1
        _assert_stores_equal(before, concat_shards(read_rtrc_dir(root)))
        # The plain originals are gone; the manifest is consistent.
        manifest = read_shard_manifest(root)
        on_disk = sorted(p.name for p in root.iterdir())
        assert on_disk == sorted(manifest["files"] + ["manifest.json"])

    def test_newest_file_never_tiered(self, tmp_path):
        root = _round_dir(tmp_path, "hot", rounds=4)
        tier_shard_dir(root, older_than=0.0)
        files = list_rtrc_dir(root)
        assert not files[-1].endswith(".gz")
        assert all(name.endswith(".gz") for name in files[:-1])

    def test_idempotent(self, tmp_path):
        root = _round_dir(tmp_path, "again", rounds=4)
        assert tier_shard_dir(root, older_than=0.0)
        generation = shard_dir_generation(root)[0]
        assert tier_shard_dir(root, older_than=0.0) == []
        assert shard_dir_generation(root)[0] == generation

    def test_negative_age_rejected(self, tmp_path):
        root = _round_dir(tmp_path, "neg")
        with pytest.raises(ValueError, match="older_than"):
            tier_shard_dir(root, older_than=-1.0)

    def test_appender_resumes_over_tiered_directory(self, tmp_path):
        root = _round_dir(tmp_path, "resume", rounds=3)
        tier_shard_dir(root, older_than=0.0)
        with RtrcDirAppender(root) as appender:
            t = appender.last_time
            appender.append_snapshot(t + 10.0, ["u0"], [[0.0, 0.0, 0.0]])
        assert concat_shards(read_rtrc_dir(root)).columns.snapshot_count == 10


class TestRetention:
    def test_drops_old_prefix_and_bumps_generation(self, tmp_path):
        root = _round_dir(tmp_path, "drop", rounds=6, snaps_per_round=3)
        generation = shard_dir_generation(root)[0]
        # Each file covers 30 s; the newest snapshot is t=180, so the
        # horizon 60 is cutoff t=120 and files ending before it
        # (0..2, ending 30/60/90) drop; file 3 ends exactly at 120
        # and survives.
        dropped = retain_shard_dir(root, older_than=60.0)
        assert dropped == [f"shard-{i:05d}.rtrc" for i in range(3)]
        assert shard_dir_generation(root)[0] == generation + 1
        survivors = concat_shards(read_rtrc_dir(root))
        assert float(survivors.columns.times[0]) == 100.0
        # Cumulative interner tables keep surviving ids decodable.
        assert survivors.columns.users.names == ["u0", "u1"]

    def test_newest_file_always_survives(self, tmp_path):
        root = _round_dir(tmp_path, "survivor", rounds=4)
        retain_shard_dir(root, older_than=0.0)
        files = list_rtrc_dir(root)
        assert len(files) == 1
        assert concat_shards(read_rtrc_dir(root)).columns.snapshot_count == 3

    def test_nothing_old_is_a_noop(self, tmp_path):
        root = _round_dir(tmp_path, "noop", rounds=3)
        generation = shard_dir_generation(root)[0]
        assert retain_shard_dir(root, older_than=1e9) == []
        assert shard_dir_generation(root)[0] == generation

    def test_negative_age_rejected(self, tmp_path):
        root = _round_dir(tmp_path, "neg2")
        with pytest.raises(ValueError, match="older_than"):
            retain_shard_dir(root, older_than=-0.5)

    def test_external_retention_supersedes_live_appender(self, tmp_path):
        # An appender that did NOT run the retention itself must refuse
        # its next commit (the generation moved under it).
        root = _round_dir(tmp_path, "raced", rounds=5)
        with RtrcDirAppender(root) as appender:
            retain_shard_dir(root, older_than=60.0)
            appender.append_snapshot(1e6, ["u0"], [[0.0, 0.0, 0.0]])
            with pytest.raises(StoreChangedError, match="re-open"):
                appender.commit()
            appender._pending_times = []  # allow close() to not re-raise


@pytest.mark.skipif(fcntl is None, reason="flock needs fcntl (POSIX only)")
class TestStoreInUse:
    def test_compact_under_live_appender_raises(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "live.rtrc")
        with RtrcAppender(path) as appender:
            appender.append_snapshot(
                trace.end_time + 5.0, ["late"], [[0.0, 0.0, 0.0]]
            )
            with pytest.raises(StoreInUseError, match="close the appender"):
                compact_rtrc_store(path)
            # The appender is unharmed: its commit still lands.
            appender.commit()
        compact_rtrc_store(path)  # fine once the appender closed

    def test_second_appender_on_same_store_raises(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "twice.rtrc")
        with RtrcAppender(path):
            with pytest.raises(StoreInUseError, match="one writer"):
                RtrcAppender(path)
        RtrcAppender(path).close()  # released on close
