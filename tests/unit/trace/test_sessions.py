"""Unit tests for repro.trace.sessions."""

import pytest

from repro.geometry import Position
from repro.trace import Snapshot, Trace, TraceMetadata, UserSession, extract_sessions


def _trace(observations, tau=10.0):
    """observations: {user: [(t, x, y), ...]}"""
    by_time = {}
    for user, obs in observations.items():
        for t, x, y in obs:
            by_time.setdefault(t, {})[user] = Position(x, y)
    snaps = [Snapshot(t, positions) for t, positions in sorted(by_time.items())]
    return Trace(snaps, TraceMetadata(tau=tau))


class TestUserSession:
    def test_validation_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            UserSession("u", (), ())

    def test_validation_alignment(self):
        with pytest.raises(ValueError, match="align"):
            UserSession("u", (0.0, 1.0), (Position(0, 0),))

    def test_validation_ordering(self):
        with pytest.raises(ValueError, match="ordered"):
            UserSession("u", (1.0, 1.0), (Position(0, 0), Position(1, 1)))

    def test_travel_time(self):
        s = UserSession("u", (0.0, 10.0, 20.0), tuple(Position(i, 0) for i in range(3)))
        assert s.travel_time == 20.0

    def test_travel_length(self):
        s = UserSession("u", (0.0, 10.0), (Position(0, 0), Position(3, 4)))
        assert s.travel_length() == 5.0

    def test_effective_travel_time_excludes_pauses(self):
        positions = (Position(0, 0), Position(10, 0), Position(10, 0.1), Position(20, 0))
        s = UserSession("u", (0.0, 10.0, 20.0, 30.0), positions)
        # Interval 2 covers 0.1 m < epsilon: a pause.
        assert s.effective_travel_time(pause_epsilon=0.5) == 20.0
        assert s.pause_time(pause_epsilon=0.5) == 10.0

    def test_net_displacement(self):
        s = UserSession("u", (0.0, 10.0, 20.0),
                        (Position(0, 0), Position(100, 100), Position(3, 4)))
        assert s.net_displacement() == 5.0

    def test_single_observation_session(self):
        s = UserSession("u", (5.0,), (Position(1, 1),))
        assert s.travel_time == 0.0
        assert s.travel_length() == 0.0


class TestExtractSessions:
    def test_continuous_presence_is_one_session(self):
        trace = _trace({"u": [(t, t, 0.0) for t in range(0, 100, 10)]})
        sessions = extract_sessions(trace)
        assert len(sessions) == 1
        assert sessions[0].observation_count == 10

    def test_gap_splits_sessions(self):
        obs = [(0, 0, 0), (10, 1, 0), (100, 2, 0), (110, 3, 0)]
        trace = _trace({"u": obs})
        sessions = extract_sessions(trace)
        assert len(sessions) == 2
        assert sessions[0].logout_time == 10
        assert sessions[1].login_time == 100

    def test_default_gap_tolerates_one_missed_snapshot(self):
        obs = [(0, 0, 0), (20, 1, 0)]  # one missing sample at t=10
        trace = _trace({"u": obs}, tau=10.0)
        assert len(extract_sessions(trace)) == 1

    def test_custom_gap_threshold(self):
        obs = [(0, 0, 0), (20, 1, 0)]
        trace = _trace({"u": obs}, tau=10.0)
        assert len(extract_sessions(trace, gap_threshold=15.0)) == 2

    def test_invalid_gap_threshold(self):
        trace = _trace({"u": [(0, 0, 0)]})
        with pytest.raises(ValueError, match="positive"):
            extract_sessions(trace, gap_threshold=0.0)

    def test_multiple_users_independent(self):
        trace = _trace({
            "a": [(0, 0, 0), (10, 1, 0)],
            "b": [(50, 5, 5), (60, 6, 6)],
        })
        sessions = extract_sessions(trace)
        assert len(sessions) == 2
        assert {s.user for s in sessions} == {"a", "b"}

    def test_sorted_by_login_time(self):
        trace = _trace({
            "late": [(100, 0, 0)],
            "early": [(0, 0, 0)],
        })
        sessions = extract_sessions(trace)
        assert [s.user for s in sessions] == ["early", "late"]

    def test_empty_trace_yields_no_sessions(self):
        assert extract_sessions(Trace([])) == []

    def test_travel_metrics_respect_session_split(self):
        # User walks 10 m, leaves, comes back far away and walks 20 m:
        # the teleport between visits must not count as travel.
        obs = [(0, 0, 0), (10, 10, 0), (500, 100, 100), (510, 100, 120)]
        trace = _trace({"u": obs})
        sessions = extract_sessions(trace)
        lengths = sorted(s.travel_length() for s in sessions)
        assert lengths == [10.0, 20.0]
