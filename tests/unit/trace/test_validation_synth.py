"""Unit tests for repro.trace.validation and repro.trace.synth."""

import numpy as np
import pytest

from repro.geometry import Position
from repro.trace import (
    Snapshot,
    Trace,
    TraceMetadata,
    constant_positions_trace,
    crossing_users_trace,
    orbiting_users_trace,
    random_walk_trace,
    validate_trace,
)


class TestValidation:
    def test_clean_trace_has_no_issues(self):
        trace = constant_positions_trace({"a": (10, 10), "b": (50, 50)}, steps=5)
        assert validate_trace(trace) == []

    def test_empty_trace_is_error(self):
        issues = validate_trace(Trace([]))
        assert issues[0].severity == "error"
        assert issues[0].code == "empty-trace"

    def test_sampling_gap_detected(self):
        meta = TraceMetadata(tau=10.0)
        snaps = [
            Snapshot(0.0, {"a": Position(1, 1)}),
            Snapshot(10.0, {"a": Position(1, 1)}),
            Snapshot(120.0, {"a": Position(1, 1)}),  # 110 s gap
        ]
        issues = validate_trace(Trace(snaps, meta))
        assert any(i.code == "sampling-gap" for i in issues)

    def test_gap_check_disabled(self):
        meta = TraceMetadata(tau=10.0)
        snaps = [Snapshot(0.0, {"a": Position(1, 1)}), Snapshot(500.0, {"a": Position(1, 1)})]
        issues = validate_trace(Trace(snaps, meta), check_gaps=False)
        assert not any(i.code == "sampling-gap" for i in issues)

    def test_out_of_bounds_detected(self):
        snaps = [Snapshot(0.0, {"a": Position(300.0, 10.0)})]
        issues = validate_trace(Trace(snaps, TraceMetadata()))
        assert any(i.code == "out-of-bounds" for i in issues)

    def test_bounds_check_disabled(self):
        snaps = [Snapshot(0.0, {"a": Position(300.0, 10.0)})]
        issues = validate_trace(Trace(snaps, TraceMetadata()), check_bounds=False)
        assert not any(i.code == "out-of-bounds" for i in issues)

    def test_sitting_artifact_detected(self):
        snaps = [Snapshot(0.0, {"a": Position(0.0, 0.0, 0.0)})]
        issues = validate_trace(Trace(snaps, TraceMetadata()))
        assert any(i.code == "sitting-artifact" for i in issues)

    def test_empty_snapshot_warned(self):
        snaps = [Snapshot(0.0, {})]
        issues = validate_trace(Trace(snaps, TraceMetadata()))
        assert any(i.code == "empty-snapshot" for i in issues)

    def test_issue_str_includes_location(self):
        snaps = [Snapshot(5.0, {"bob": Position(999.0, 10.0)})]
        issue = validate_trace(Trace(snaps, TraceMetadata()))[0]
        text = str(issue)
        assert "t=5" in text and "bob" in text


class TestSynthBuilders:
    def test_constant_positions(self):
        trace = constant_positions_trace({"a": (0, 0), "b": (5, 0)}, steps=10, tau=5.0)
        assert len(trace) == 10
        assert trace.metadata.tau == 5.0
        first, last = trace[0], trace[-1]
        assert first.position_of("a") == last.position_of("a")

    def test_constant_requires_steps(self):
        with pytest.raises(ValueError):
            constant_positions_trace({"a": (0, 0)}, steps=0)

    def test_crossing_users_meet_once(self):
        trace = crossing_users_trace(steps=61, tau=10.0, speed=1.0, lane_gap=2.0)
        from repro.core import extract_contacts

        contacts = extract_contacts(trace, r=15.0)
        assert len(contacts) == 1
        contact = contacts[0]
        # The crossing happens mid-trace.
        mid = trace.duration / 2.0
        assert contact.start <= mid <= contact.end

    def test_crossing_users_never_meet_below_lane_gap(self):
        trace = crossing_users_trace(lane_gap=5.0)
        from repro.core import extract_contacts

        assert extract_contacts(trace, r=4.0) == []

    def test_orbiting_users_distance_constant(self):
        trace = orbiting_users_trace(steps=30, radius=40.0)
        from repro.geometry import distance

        for snap in trace:
            d = distance(snap.position_of("a"), snap.position_of("b"))
            assert d == pytest.approx(80.0, abs=1e-6)

    def test_random_walk_stays_in_bounds(self):
        rng = np.random.default_rng(0)
        trace = random_walk_trace(5, 200, rng, step_std=30.0, size=100.0)
        for snap in trace:
            for pos in snap.positions.values():
                assert 0.0 <= pos.x <= 100.0
                assert 0.0 <= pos.y <= 100.0

    def test_random_walk_user_count(self):
        rng = np.random.default_rng(1)
        trace = random_walk_trace(7, 3, rng)
        assert len(trace.unique_users()) == 7

    def test_random_walk_validation(self):
        with pytest.raises(ValueError):
            random_walk_trace(0, 5, np.random.default_rng(0))
