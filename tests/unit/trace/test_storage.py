"""Unit tests for the binary columnar ``.rtrc`` trace format."""


import numpy as np
import pytest

from repro.trace import (
    Trace,
    TraceMetadata,
    random_walk_trace,
    read_store_rtrc,
    read_trace_rtrc,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarBuilder, empty_store
from repro.trace.io import read_trace
from repro.trace.storage import (
    ALIGNMENT,
    MAGIC,
    RtrcFormatError,
    TraceFormatError,
    _align,
    _PREAMBLE,
)


def _assert_stores_equal(a, b):
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.snapshot_offsets, b.snapshot_offsets)
    assert np.array_equal(a.user_ids, b.user_ids)
    assert np.array_equal(a.xyz, b.xyz)
    assert a.users.names == b.users.names


class TestRoundTrip:
    def test_random_walk_round_trip(self, tmp_path):
        trace = random_walk_trace(12, 30, np.random.default_rng(3))
        path = write_trace_rtrc(trace, tmp_path / "walk.rtrc")
        loaded = read_trace_rtrc(path)
        _assert_stores_equal(trace.columns, loaded.columns)
        assert loaded.metadata == trace.metadata

    def test_metadata_survives(self, tmp_path):
        meta = TraceMetadata(
            land_name="Dance Island", width=128.0, height=64.0,
            tau=2.5, source="crawler", notes="unicode ✓ comma, quote\"",
        )
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, ["a", "b"], [[1, 2, 0], [3, 4, 5]])
        trace = Trace.from_columns(builder.build(), meta)
        loaded = read_trace_rtrc(write_trace_rtrc(trace, tmp_path / "m.rtrc"))
        assert loaded.metadata == meta

    def test_empty_trace(self, tmp_path):
        trace = Trace.from_columns(empty_store())
        loaded = read_trace_rtrc(write_trace_rtrc(trace, tmp_path / "e.rtrc"))
        assert len(loaded) == 0
        assert loaded.columns.observation_count == 0

    def test_empty_snapshots_survive(self, tmp_path):
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, [], np.empty((0, 3)))
        builder.append_snapshot(10.0, ["solo"], [[5.0, 5.0, 0.0]])
        builder.append_snapshot(20.0, [], np.empty((0, 3)))
        trace = Trace.from_columns(builder.build())
        loaded = read_trace_rtrc(write_trace_rtrc(trace, tmp_path / "s.rtrc"))
        _assert_stores_equal(trace.columns, loaded.columns)
        assert loaded.concurrency() == [0, 1, 0]

    def test_gzip_round_trip(self, tmp_path):
        trace = random_walk_trace(5, 10, np.random.default_rng(1))
        path = write_trace_rtrc(trace, tmp_path / "walk.rtrc.gz")
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"  # actually gzipped
        _assert_stores_equal(trace.columns, read_trace_rtrc(path).columns)

    def test_rewrite_onto_own_memmap_source(self, tmp_path):
        # A memmapped trace written back to its own backing file must
        # not truncate the pages it is still reading from (the write
        # goes to a temp sibling and renames into place).
        trace = random_walk_trace(6, 15, np.random.default_rng(8))
        path = write_trace_rtrc(trace, tmp_path / "self.rtrc")
        loaded = read_trace_rtrc(path, mmap=True)
        write_trace_rtrc(loaded, path)
        again = read_trace_rtrc(path, mmap=True)
        _assert_stores_equal(trace.columns, again.columns)
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter

    def test_written_file_honors_umask(self, tmp_path):
        # The temp-file dance must not leak mkstemp's 0600 mode; the
        # result should match what a plain open() would have created.
        trace = random_walk_trace(3, 4, np.random.default_rng(0))
        rtrc = write_trace_rtrc(trace, tmp_path / "perm.rtrc")
        plain = tmp_path / "plain"
        plain.write_bytes(b"x")
        assert (rtrc.stat().st_mode & 0o777) == (plain.stat().st_mode & 0o777)

    def test_in_memory_load_matches_mmap(self, tmp_path):
        trace = random_walk_trace(6, 12, np.random.default_rng(9))
        path = write_trace_rtrc(trace, tmp_path / "w.rtrc")
        mapped, meta_a = read_store_rtrc(path, mmap=True)
        buffered, meta_b = read_store_rtrc(path, mmap=False)
        _assert_stores_equal(mapped, buffered)
        assert meta_a == meta_b


class TestMemmapSemantics:
    def test_mmap_load_is_lazy_view(self, tmp_path):
        trace = random_walk_trace(8, 20, np.random.default_rng(5))
        path = write_trace_rtrc(trace, tmp_path / "w.rtrc")
        store, _ = read_store_rtrc(path, mmap=True)
        for column in (store.times, store.user_ids, store.xyz):
            backing = column
            while not isinstance(backing, np.memmap) and getattr(backing, "base", None) is not None:
                backing = backing.base
            assert isinstance(backing, np.memmap)

    def test_mmap_columns_are_read_only(self, tmp_path):
        trace = random_walk_trace(4, 6, np.random.default_rng(2))
        path = write_trace_rtrc(trace, tmp_path / "w.rtrc")
        store, _ = read_store_rtrc(path, mmap=True)
        with pytest.raises((ValueError, RuntimeError)):
            store.xyz[0, 0] = 99.0

    def test_sections_are_aligned(self, tmp_path):
        trace = random_walk_trace(4, 6, np.random.default_rng(2))
        path = write_trace_rtrc(trace, tmp_path / "w.rtrc")
        import json
        import struct

        raw = path.read_bytes()
        _, _, _, hlen = struct.unpack_from("<4sHHQ", raw)
        header = json.loads(raw[16:16 + hlen])
        for spec in header["sections"].values():
            assert spec["offset"] % ALIGNMENT == 0


class TestErrors:
    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not.rtrc"
        path.write_bytes(b"time,user,x,y,z\n0.0,a,1,2,3\n")
        with pytest.raises(RtrcFormatError, match="bad magic"):
            read_trace_rtrc(path)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.rtrc"
        path.write_bytes(MAGIC)
        with pytest.raises(RtrcFormatError, match="truncated"):
            read_trace_rtrc(path, mmap=False)

    def test_rejects_future_version(self, tmp_path):
        trace = random_walk_trace(3, 4, np.random.default_rng(0))
        path = write_trace_rtrc(trace, tmp_path / "v.rtrc")
        raw = bytearray(path.read_bytes())
        raw[4] = 99  # bump the version field
        path.write_bytes(bytes(raw))
        with pytest.raises(RtrcFormatError, match="version"):
            read_trace_rtrc(path)

    def test_rejects_corrupt_header(self, tmp_path):
        trace = random_walk_trace(3, 4, np.random.default_rng(0))
        path = write_trace_rtrc(trace, tmp_path / "c.rtrc")
        raw = bytearray(path.read_bytes())
        raw[20] = 0xFF  # stomp the JSON header
        path.write_bytes(bytes(raw))
        with pytest.raises(RtrcFormatError):
            read_trace_rtrc(path)


def _rewrite_header(path, mutate):
    """Re-serialize a valid rtrc file with a mutated JSON header.

    The data region is carried over untouched, so these tests corrupt
    exactly one thing: what the header *claims* about the data.
    """
    import json
    import struct

    raw = path.read_bytes()
    magic, version, reserved, hlen = _PREAMBLE.unpack_from(raw)
    data_start = _align(_PREAMBLE.size + hlen)
    header = json.loads(raw[_PREAMBLE.size:_PREAMBLE.size + hlen])
    result = mutate(header)
    header = header if result is None else result
    payload = json.dumps(header).encode("utf-8")
    new_start = _align(_PREAMBLE.size + len(payload))
    out = _PREAMBLE.pack(magic, version, reserved, len(payload))
    out += payload
    out += b"\0" * (new_start - _PREAMBLE.size - len(payload))
    out += raw[data_start:]
    path.write_bytes(out)


class TestCorruption:
    """Broken files must fail with a clear error, never a numpy traceback."""

    @pytest.fixture
    def valid(self, tmp_path):
        trace = random_walk_trace(6, 8, np.random.default_rng(11))
        return write_trace_rtrc(trace, tmp_path / "v.rtrc")

    @pytest.mark.parametrize("mmap", (True, False))
    def test_truncated_data_region(self, valid, mmap):
        import os

        raw = valid.read_bytes()
        _, _, _, hlen = _PREAMBLE.unpack_from(raw)
        data_start = _align(_PREAMBLE.size + hlen)
        os.truncate(valid, data_start + 16)  # cut into the times section
        with pytest.raises(RtrcFormatError, match="truncated"):
            read_trace_rtrc(valid, mmap=mmap)

    @pytest.mark.parametrize("mmap", (True, False))
    def test_header_longer_than_file(self, valid, mmap):
        import os

        os.truncate(valid, _PREAMBLE.size + 4)
        with pytest.raises(RtrcFormatError, match="truncated"):
            read_trace_rtrc(valid, mmap=mmap)

    @pytest.mark.parametrize("mmap", (True, False))
    def test_section_nbytes_mismatch(self, valid, mmap):
        def lie(header):
            header["sections"]["xyz"]["nbytes"] += 8

        _rewrite_header(valid, lie)
        with pytest.raises(RtrcFormatError, match="length mismatch"):
            read_trace_rtrc(valid, mmap=mmap)

    @pytest.mark.parametrize("mmap", (True, False))
    def test_section_shape_lie(self, valid, mmap):
        # Previously this surfaced as a numpy reshape/memmap traceback.
        def lie(header):
            header["sections"]["xyz"]["shape"][0] += 3

        _rewrite_header(valid, lie)
        with pytest.raises(RtrcFormatError, match="length mismatch"):
            read_trace_rtrc(valid, mmap=mmap)

    def test_missing_section_entry(self, valid):
        def drop(header):
            del header["sections"]["times"]

        _rewrite_header(valid, drop)
        with pytest.raises(RtrcFormatError, match="misses sections"):
            read_trace_rtrc(valid)

    def test_invalid_section_offset(self, valid):
        def skew(header):
            header["sections"]["user_ids"]["offset"] = 13  # unaligned

        _rewrite_header(valid, skew)
        with pytest.raises(RtrcFormatError, match="invalid offset"):
            read_trace_rtrc(valid)

    def test_non_object_header(self, valid):
        _rewrite_header(valid, lambda header: ["not", "an", "object"])
        with pytest.raises(RtrcFormatError, match="not a JSON object"):
            read_trace_rtrc(valid)

    def test_bad_metadata_fields(self, valid):
        def poison(header):
            header["metadata"]["tau"] = -1.0

        _rewrite_header(valid, poison)
        with pytest.raises(RtrcFormatError, match="metadata"):
            read_trace_rtrc(valid)

    def test_inconsistent_columns_wrapped(self, valid):
        # Sections that load fine but do not form a valid store (the
        # offsets column no longer spans the observation rows).
        def shrink(header):
            spec = header["sections"]["snapshot_offsets"]
            spec["shape"] = [spec["shape"][0] - 2]
            spec["nbytes"] -= 16

        _rewrite_header(valid, shrink)
        with pytest.raises(RtrcFormatError, match="valid trace"):
            read_trace_rtrc(valid)

    def test_errors_share_the_trace_format_base(self, valid):
        assert issubclass(RtrcFormatError, TraceFormatError)
        assert issubclass(TraceFormatError, ValueError)
        valid.write_bytes(b"garbage that is definitely not rtrc")
        with pytest.raises(TraceFormatError):
            read_trace(valid)
