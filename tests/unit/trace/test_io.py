"""Unit tests for repro.trace.io: round-trips and format edge cases."""

import gzip

import pytest

from repro.geometry import Position
from repro.trace import (
    Snapshot,
    Trace,
    TraceMetadata,
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)


@pytest.fixture
def sample_trace():
    meta = TraceMetadata(land_name="Test Land", tau=10.0, source="unit-test")
    snapshots = [
        Snapshot(0.0, {"alice": Position(1.5, 2.5, 0.0), "bob": Position(100.0, 200.0, 5.0)}),
        Snapshot(10.0, {"alice": Position(2.0, 3.0, 0.0)}),
        Snapshot(20.0, {}),
    ]
    return Trace(snapshots, meta)


def _assert_traces_equal(a: Trace, b: Trace, *, empty_snapshots_preserved: bool):
    assert a.metadata.land_name == b.metadata.land_name
    assert a.metadata.tau == b.metadata.tau
    snaps_a = [s for s in a if len(s) > 0] if not empty_snapshots_preserved else list(a)
    snaps_b = [s for s in b if len(s) > 0] if not empty_snapshots_preserved else list(b)
    assert len(snaps_a) == len(snaps_b)
    for sa, sb in zip(snaps_a, snaps_b):
        assert sa.time == sb.time
        assert sa.users == sb.users
        for user in sa.users:
            pa, pb = sa.position_of(user), sb.position_of(user)
            assert pa.x == pytest.approx(pb.x, abs=1e-3)
            assert pa.y == pytest.approx(pb.y, abs=1e-3)
            assert pa.z == pytest.approx(pb.z, abs=1e-3)


class TestCsv:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_trace_csv(sample_trace, tmp_path / "t.csv")
        loaded = read_trace_csv(path)
        # CSV is record-based, but the empty-snapshots header comment
        # preserves zero-user snapshots across the round trip.
        _assert_traces_equal(sample_trace, loaded, empty_snapshots_preserved=True)
        assert loaded.concurrency() == [2, 1, 0]

    def test_empty_snapshot_times_quantized_like_rows(self, tmp_path):
        # Row times are rendered %.3f; the empty-snapshots header must
        # quantize identically, or a freshly written file could re-load
        # with snapshots reordered around a sub-millisecond boundary.
        meta = TraceMetadata(land_name="Q")
        trace = Trace(
            [
                Snapshot(0.9994, {}),
                Snapshot(1.0004, {"u": Position(1.0, 1.0, 0.0)}),
                Snapshot(2.0026, {}),
            ],
            meta,
        )
        loaded = read_trace_csv(write_trace_csv(trace, tmp_path / "q.csv"))
        assert loaded.columns.times.tolist() == [0.999, 1.0, 2.003]
        assert loaded.concurrency() == [0, 1, 0]

    def test_same_millisecond_empty_snapshot_collides_loudly(self, tmp_path):
        # CSV resolution is one millisecond; an empty and an occupied
        # snapshot inside the same millisecond cannot be represented,
        # and the re-load must fail loudly instead of silently
        # reordering (full-precision header times used to do that).
        meta = TraceMetadata(land_name="Q")
        trace = Trace(
            [
                Snapshot(2.0006, {"u": Position(1.0, 1.0, 0.0)}),
                Snapshot(2.0011, {}),
            ],
            meta,
        )
        path = write_trace_csv(trace, tmp_path / "clash.csv")
        with pytest.raises(ValueError, match="duplicate"):
            read_trace_csv(path)

    def test_gzip_roundtrip(self, sample_trace, tmp_path):
        path = write_trace_csv(sample_trace, tmp_path / "t.csv.gz")
        with gzip.open(path, "rt") as f:
            assert "repro-trace-metadata" in f.readline()
        loaded = read_trace_csv(path)
        assert loaded.metadata.land_name == "Test Land"

    def test_header_without_metadata_accepted(self, tmp_path):
        path = tmp_path / "bare.csv"
        path.write_text("time,user,x,y,z\n5.0,u1,1.0,2.0,0.0\n")
        loaded = read_trace_csv(path)
        assert len(loaded) == 1
        assert loaded.metadata.land_name == "unknown"

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,user,x,y,z\n1.0,u\n")
        with pytest.raises(ValueError, match="malformed"):
            read_trace_csv(path)

    def test_user_ids_with_commas_quoted(self, tmp_path):
        meta = TraceMetadata(land_name="L")
        trace = Trace([Snapshot(0.0, {'weird,user': Position(1, 1)})], meta)
        loaded = read_trace_csv(write_trace_csv(trace, tmp_path / "q.csv"))
        assert loaded.unique_users() == {"weird,user"}


class TestJsonl:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        loaded = read_trace_jsonl(path)
        # JSONL keeps empty snapshots.
        _assert_traces_equal(sample_trace, loaded, empty_snapshots_preserved=True)

    def test_gzip_roundtrip(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl.gz")
        loaded = read_trace_jsonl(path)
        assert len(loaded) == 3

    def test_metadata_first_line(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        first = path.read_text().splitlines()[0]
        assert "metadata" in first

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text('{"metadata": {"land_name": "L", "width": 256.0, '
                        '"height": 256.0, "tau": 10.0, "source": "x", "notes": ""}}\n'
                        "\n"
                        '{"t": 1.0, "users": {"u": [1.0, 2.0, 0.0]}}\n')
        loaded = read_trace_jsonl(path)
        assert len(loaded) == 1


class TestCrossFormat:
    def test_csv_and_jsonl_agree(self, sample_trace, tmp_path):
        csv_loaded = read_trace_csv(write_trace_csv(sample_trace, tmp_path / "a.csv"))
        jsonl_loaded = read_trace_jsonl(write_trace_jsonl(sample_trace, tmp_path / "a.jsonl"))
        _assert_traces_equal(csv_loaded, jsonl_loaded, empty_snapshots_preserved=False)
