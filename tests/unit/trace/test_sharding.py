"""Unit tests for time-window shard split/concat on the columnar store."""

import numpy as np
import pytest

from repro.trace import (
    Trace,
    concat_shards,
    concat_stores,
    random_walk_trace,
    split_time_shards,
)
from repro.trace.columnar import ColumnarBuilder, UserInterner, empty_store


def _assert_stores_equal(a, b):
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.snapshot_offsets, b.snapshot_offsets)
    assert np.array_equal(a.user_ids, b.user_ids)
    assert np.array_equal(a.xyz, b.xyz)


class TestSplit:
    def test_round_trip_identity(self):
        trace = random_walk_trace(9, 23, np.random.default_rng(4))
        for k in (1, 2, 3, 7, 23, 50):
            back = concat_shards(split_time_shards(trace, k))
            _assert_stores_equal(back.columns, trace.columns)
            assert back.metadata == trace.metadata

    def test_shards_are_contiguous_and_balanced(self):
        trace = random_walk_trace(3, 10, np.random.default_rng(0))
        shards = split_time_shards(trace, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        stitched = [t for s in shards for t in s.columns.times.tolist()]
        assert stitched == trace.columns.times.tolist()

    def test_shards_share_interner(self):
        trace = random_walk_trace(4, 8, np.random.default_rng(1))
        shards = split_time_shards(trace, 2)
        assert all(s.columns.users is trace.columns.users for s in shards)

    def test_oversharding_yields_empty_tails(self):
        trace = random_walk_trace(2, 3, np.random.default_rng(2))
        shards = split_time_shards(trace, 10)
        assert len(shards) == 10
        assert sum(len(s) for s in shards) == 3
        assert len(shards[-1]) == 0

    def test_invalid_shard_count(self):
        trace = random_walk_trace(2, 3, np.random.default_rng(2))
        with pytest.raises(ValueError, match="shard count"):
            split_time_shards(trace, 0)


class TestConcat:
    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError, match="zero shards"):
            concat_shards([])

    def test_rejects_out_of_order_shards(self):
        trace = random_walk_trace(3, 6, np.random.default_rng(5))
        first, second = split_time_shards(trace, 2)
        with pytest.raises(ValueError):
            concat_shards([second, first])

    def test_concat_all_empty_keeps_interner(self):
        users = UserInterner(["ghost"])
        store = concat_stores([empty_store(users), empty_store(users)])
        assert store.snapshot_count == 0
        assert store.users is users

    def test_caller_supplied_empty_interner_is_used(self):
        # An interner with no names is falsy — it must still win over
        # a fresh throwaway one when passed explicitly.
        target = UserInterner()
        b1 = ColumnarBuilder()
        b1.append_snapshot(0.0, ["alice"], [[0, 0, 0]])
        b2 = ColumnarBuilder()
        b2.append_snapshot(10.0, ["bob"], [[1, 1, 0]])
        merged = concat_stores([b1.build(), b2.build()], users=target)
        assert merged.users is target
        assert target.names == ["alice", "bob"]
        assert concat_stores([], users=target).users is target
        assert empty_store(target).users is target

    def test_concat_remaps_foreign_interners(self):
        # Two independently built stores observing overlapping user
        # sets in different first-appearance orders.
        b1 = ColumnarBuilder()
        b1.append_snapshot(0.0, ["alice", "bob"], [[0, 0, 0], [1, 1, 0]])
        b2 = ColumnarBuilder()
        b2.append_snapshot(10.0, ["bob", "carol"], [[2, 2, 0], [3, 3, 0]])
        merged = concat_stores([b1.build(), b2.build()])
        assert merged.users.names == ["alice", "bob", "carol"]
        assert merged.names_of(0) == ["alice", "bob"]
        assert merged.names_of(1) == ["bob", "carol"]
        trace = Trace.from_columns(merged)
        assert trace.unique_users() == {"alice", "bob", "carol"}
