"""Unit tests for repro.trace.records."""

import pytest

from repro.geometry import Position
from repro.trace import PositionRecord, Snapshot


class TestPositionRecord:
    def test_fields(self):
        r = PositionRecord(10.0, "alice", 1.0, 2.0, 3.0)
        assert r.time == 10.0 and r.user == "alice"
        assert r.position == Position(1.0, 2.0, 3.0)

    def test_z_defaults(self):
        assert PositionRecord(0.0, "u", 1.0, 2.0).z == 0.0

    def test_sitting_artifact(self):
        assert PositionRecord(0.0, "u", 0.0, 0.0, 0.0).is_sitting_artifact
        assert not PositionRecord(0.0, "u", 0.0, 0.1, 0.0).is_sitting_artifact


class TestSnapshot:
    def test_len_and_contains(self):
        s = Snapshot(5.0, {"a": Position(1, 1), "b": Position(2, 2)})
        assert len(s) == 2
        assert "a" in s and "c" not in s

    def test_users_frozenset(self):
        s = Snapshot(0.0, {"a": Position(0, 1)})
        assert s.users == frozenset({"a"})

    def test_position_of(self):
        s = Snapshot(0.0, {"a": Position(3, 4)})
        assert s.position_of("a") == Position(3, 4)
        with pytest.raises(KeyError):
            s.position_of("ghost")

    def test_immutable_against_source_mutation(self):
        source = {"a": Position(1, 1)}
        s = Snapshot(0.0, source)
        source["b"] = Position(2, 2)
        assert len(s) == 1

    def test_records_roundtrip(self):
        s = Snapshot(7.0, {"a": Position(1, 2, 3)})
        records = s.records()
        assert records == [PositionRecord(7.0, "a", 1.0, 2.0, 3.0)]

    def test_as_arrays_alignment(self):
        s = Snapshot(0.0, {"a": Position(1, 2, 3), "b": Position(4, 5, 6)})
        users, coords = s.as_arrays()
        assert coords.shape == (2, 3)
        for i, user in enumerate(users):
            assert tuple(coords[i]) == tuple(s.position_of(user))

    def test_as_arrays_empty(self):
        users, coords = Snapshot(0.0, {}).as_arrays()
        assert users == []
        assert coords.shape == (0, 3)

    def test_iteration(self):
        s = Snapshot(0.0, {"a": Position(0, 0), "b": Position(1, 1)})
        assert sorted(s) == ["a", "b"]
