"""Unit tests for repro.trace.trace."""

import pytest

from repro.geometry import Position
from repro.trace import PositionRecord, Snapshot, Trace, TraceMetadata


def _snap(t, users):
    return Snapshot(t, {u: Position(float(i), float(i)) for i, u in enumerate(users)})


class TestTraceMetadata:
    def test_defaults(self):
        meta = TraceMetadata()
        assert meta.width == 256.0 and meta.height == 256.0
        assert meta.tau == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceMetadata(width=0.0)
        with pytest.raises(ValueError):
            TraceMetadata(tau=-1.0)


class TestConstruction:
    def test_sorts_snapshots(self):
        trace = Trace([_snap(20, ["a"]), _snap(10, ["a"])])
        assert [s.time for s in trace] == [10, 20]

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Trace([_snap(10, ["a"]), _snap(10, ["b"])])

    def test_from_records_groups_by_time(self):
        records = [
            PositionRecord(0.0, "a", 1, 1, 0),
            PositionRecord(0.0, "b", 2, 2, 0),
            PositionRecord(10.0, "a", 3, 3, 0),
        ]
        trace = Trace.from_records(records)
        assert len(trace) == 2
        assert len(trace[0]) == 2

    def test_from_records_duplicate_user_rejected(self):
        records = [
            PositionRecord(0.0, "a", 1, 1, 0),
            PositionRecord(0.0, "a", 2, 2, 0),
        ]
        with pytest.raises(ValueError, match="twice"):
            Trace.from_records(records)


class TestAccessors:
    def test_time_span(self):
        trace = Trace([_snap(t, ["a"]) for t in (0, 10, 20)])
        assert trace.start_time == 0
        assert trace.end_time == 20
        assert trace.duration == 20

    def test_empty_trace_properties(self):
        trace = Trace([])
        assert trace.is_empty
        with pytest.raises(ValueError, match="non-empty"):
            _ = trace.start_time

    def test_unique_users(self):
        trace = Trace([_snap(0, ["a", "b"]), _snap(10, ["b", "c"])])
        assert trace.unique_users() == {"a", "b", "c"}

    def test_concurrency(self):
        trace = Trace([_snap(0, ["a", "b"]), _snap(10, ["b"]), _snap(20, [])])
        assert trace.concurrency() == [2, 1, 0]
        assert trace.mean_concurrency() == pytest.approx(1.0)

    def test_observations_of(self):
        trace = Trace([_snap(0, ["a"]), _snap(10, ["b"]), _snap(20, ["a"])])
        obs = trace.observations_of("a")
        assert [t for t, _p in obs] == [0, 20]

    def test_records_flat(self):
        trace = Trace([_snap(0, ["a", "b"]), _snap(10, ["a"])])
        assert len(trace.records()) == 3

    def test_indexing(self):
        trace = Trace([_snap(0, ["a"]), _snap(10, ["a"])])
        assert trace[1].time == 10


class TestWindowAndResample:
    def test_window(self):
        trace = Trace([_snap(t, ["a"]) for t in range(0, 100, 10)])
        sub = trace.window(20, 50)
        assert [s.time for s in sub] == [20, 30, 40, 50]

    def test_window_shares_metadata(self):
        meta = TraceMetadata(land_name="X")
        trace = Trace([_snap(0, ["a"])], meta)
        assert trace.window(0, 10).metadata.land_name == "X"

    def test_window_invalid(self):
        trace = Trace([_snap(0, ["a"])])
        with pytest.raises(ValueError):
            trace.window(10, 0)

    def test_resampled_stride(self):
        trace = Trace([_snap(t, ["a"]) for t in range(0, 100, 10)])
        coarse = trace.resampled(3)
        assert [s.time for s in coarse] == [0, 30, 60, 90]

    def test_resampled_scales_tau(self):
        trace = Trace([_snap(t, ["a"]) for t in range(0, 50, 10)], TraceMetadata(tau=10.0))
        assert trace.resampled(3).metadata.tau == 30.0

    def test_resampled_identity(self):
        trace = Trace([_snap(t, ["a"]) for t in range(0, 50, 10)])
        assert len(trace.resampled(1)) == len(trace)

    def test_resampled_invalid(self):
        with pytest.raises(ValueError):
            Trace([_snap(0, ["a"])]).resampled(0)
