"""Crash-safety and equivalence tests for :class:`RtrcAppender`.

The contract under test: a trace streamed through the appender in any
number of append/commit rounds loads (memmap included) bit-for-bit
identical to the same trace written in one shot; a torn append — rows
written but the header commit never reached — is detected and
truncated on reopen; and a concurrent reader always sees a consistent
committed prefix.
"""

import numpy as np
import pytest

from repro.trace import (
    RtrcAppender,
    TraceMetadata,
    random_walk_trace,
    read_store_rtrc,
    read_trace_rtrc,
    write_trace_rtrc,
)
from repro.trace.storage import MIN_HEADER_RESERVE, RtrcFormatError


def _assert_stores_equal(a, b):
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.snapshot_offsets, b.snapshot_offsets)
    assert np.array_equal(a.user_ids, b.user_ids)
    assert np.array_equal(a.xyz, b.xyz)
    assert a.users.names == b.users.names


def _stream(appender, trace, start=0, stop=None, commit_every=None):
    """Append snapshots ``[start, stop)`` of ``trace``, committing on a cadence."""
    cols = trace.columns
    stop = cols.snapshot_count if stop is None else stop
    for index in range(start, stop):
        lo, hi = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
        appender.append_snapshot(
            float(cols.times[index]), cols.names_of(index), cols.xyz[lo:hi]
        )
        if commit_every and (index - start) % commit_every == commit_every - 1:
            appender.commit()


@pytest.fixture
def trace():
    return random_walk_trace(12, 30, np.random.default_rng(3))


class TestEquivalence:
    @pytest.mark.parametrize("rounds", (1, 3, 7))
    def test_streamed_rounds_match_one_shot(self, tmp_path, trace, rounds):
        one_shot = write_trace_rtrc(trace, tmp_path / "one.rtrc")
        streamed = tmp_path / "streamed.rtrc"
        edges = np.linspace(0, len(trace), rounds + 1).astype(int)
        with RtrcAppender(streamed, trace.metadata) as appender:
            for lo, hi in zip(edges[:-1], edges[1:]):
                _stream(appender, trace, int(lo), int(hi))
                appender.commit()
        expected = read_trace_rtrc(one_shot)
        loaded = read_trace_rtrc(streamed)  # memmap load
        _assert_stores_equal(expected.columns, loaded.columns)
        assert loaded.metadata == expected.metadata

    def test_growth_paths_forced_by_tiny_capacities(self, tmp_path, trace):
        streamed = tmp_path / "tiny.rtrc"
        with RtrcAppender(
            streamed,
            trace.metadata,
            snapshot_capacity=1,
            observation_capacity=2,
            header_reserve=64,
        ) as appender:
            _stream(appender, trace, commit_every=4)
        _assert_stores_equal(trace.columns, read_trace_rtrc(streamed).columns)

    def test_empty_snapshots_stream(self, tmp_path):
        with RtrcAppender(tmp_path / "e.rtrc") as appender:
            appender.append_snapshot(0.0, [], np.empty((0, 3)))
            appender.append_snapshot(10.0, ["solo"], [[1.0, 2.0, 3.0]])
            appender.append_snapshot(20.0, [], np.empty((0, 3)))
        loaded = read_trace_rtrc(tmp_path / "e.rtrc")
        assert loaded.concurrency() == [0, 1, 0]

    def test_reopen_continues_the_stream(self, tmp_path, trace):
        path = tmp_path / "resume.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            _stream(appender, trace, 0, 11)
        with RtrcAppender(path) as appender:
            assert appender.snapshot_count == 11
            assert appender.metadata == trace.metadata
            _stream(appender, trace, 11)
        _assert_stores_equal(trace.columns, read_trace_rtrc(path).columns)

    def test_append_to_one_shot_file_converts_it(self, tmp_path, trace):
        path = write_trace_rtrc(trace, tmp_path / "grown.rtrc")
        with RtrcAppender(path) as appender:
            appender.append_snapshot(
                trace.end_time + 5.0, ["late"], [[1.0, 1.0, 0.0]]
            )
        loaded = read_trace_rtrc(path)
        assert len(loaded) == len(trace) + 1
        prefix = loaded.columns.slice_snapshots(0, len(trace))
        assert np.array_equal(prefix.times, trace.columns.times)
        assert np.array_equal(prefix.user_ids, trace.columns.user_ids)
        assert np.array_equal(prefix.xyz, trace.columns.xyz)
        # The interner keeps the original table as a prefix and only
        # appends the new user.
        assert loaded.columns.users.names[:-1] == trace.columns.users.names
        assert loaded.columns.users.names[-1] == "late"

    def test_in_memory_load_matches_mmap(self, tmp_path, trace):
        path = tmp_path / "buf.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            _stream(appender, trace, commit_every=7)
        mapped, _ = read_store_rtrc(path, mmap=True)
        buffered, _ = read_store_rtrc(path, mmap=False)
        _assert_stores_equal(mapped, buffered)


class TestCommitSemantics:
    def test_uncommitted_appends_are_invisible(self, tmp_path):
        path = tmp_path / "pending.rtrc"
        appender = RtrcAppender(path, TraceMetadata())
        appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        appender.commit()
        appender.append_snapshot(10.0, ["a"], [[1.0, 0.0, 0.0]])
        assert len(read_trace_rtrc(path)) == 1  # reader sees the commit only
        assert appender.snapshot_count == 2
        assert appender.committed_snapshot_count == 1
        appender.commit()
        assert len(read_trace_rtrc(path)) == 2
        appender.close()

    def test_close_commits(self, tmp_path):
        path = tmp_path / "close.rtrc"
        with RtrcAppender(path) as appender:
            appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        assert len(read_trace_rtrc(path)) == 1

    def test_closed_appender_rejects_writes(self, tmp_path):
        appender = RtrcAppender(tmp_path / "c.rtrc")
        appender.close()
        appender.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            appender.append_snapshot(0.0, [], np.empty((0, 3)))
        with pytest.raises(ValueError, match="closed"):
            appender.commit()

    def test_metadata_assignment_lands_at_commit(self, tmp_path):
        path = tmp_path / "meta.rtrc"
        meta = TraceMetadata(land_name="Dance Island", tau=10.0, source="crawler")
        with RtrcAppender(path) as appender:
            appender.metadata = meta
        assert read_trace_rtrc(path).metadata == meta

    def test_commit_without_changes_is_a_noop(self, tmp_path):
        path = tmp_path / "noop.rtrc"
        with RtrcAppender(path) as appender:
            appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
            appender.commit()
            before = path.stat().st_mtime_ns
            appender.commit()
            assert path.stat().st_mtime_ns == before


class TestValidation:
    def test_gzip_store_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="gzip"):
            RtrcAppender(tmp_path / "t.rtrc.gz")

    def test_non_increasing_time_rejected(self, tmp_path):
        with RtrcAppender(tmp_path / "t.rtrc") as appender:
            appender.append_snapshot(5.0, ["a"], [[0.0, 0.0, 0.0]])
            with pytest.raises(ValueError, match="strictly increasing"):
                appender.append_snapshot(5.0, ["b"], [[0.0, 0.0, 0.0]])

    def test_duplicate_user_in_snapshot_rejected(self, tmp_path):
        with RtrcAppender(tmp_path / "t.rtrc") as appender:
            with pytest.raises(ValueError, match="twice"):
                appender.append_snapshot(
                    0.0, ["a", "a"], [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]
                )

    def test_rejected_snapshot_does_not_pollute_the_user_table(self, tmp_path):
        path = tmp_path / "t.rtrc"
        with RtrcAppender(path) as appender:
            with pytest.raises(ValueError, match="twice"):
                appender.append_snapshot(
                    0.0,
                    ["dup", "phantom", "dup"],
                    [[0.0, 0.0, 0.0]] * 3,
                )
            assert appender.user_names == []  # nothing leaked
            appender.append_snapshot(1.0, ["real"], [[0.0, 0.0, 0.0]])
        assert read_trace_rtrc(path).columns.users.names == ["real"]

    def test_fsync_mode_streams_and_grows(self, tmp_path):
        # Exercises the fsync'd commit and growth-rewrite paths
        # (durability itself is not observable in a test).
        path = tmp_path / "durable.rtrc"
        with RtrcAppender(
            path, fsync=True, snapshot_capacity=1, observation_capacity=2
        ) as appender:
            for index in range(6):
                appender.append_snapshot(
                    float(index), [f"u{index}"], [[0.0, 0.0, 0.0]]
                )
                appender.commit()
        assert len(read_trace_rtrc(path)) == 6

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.rtrc"
        path.write_bytes(b"time,user,x,y,z\n")
        with pytest.raises(RtrcFormatError, match="bad magic"):
            RtrcAppender(path)


class TestCrashSafety:
    """Torn appends must be detected and truncated, never half-loaded."""

    def _crash(self, appender):
        """Abandon the appender mid-append: flush data, skip the commit."""
        appender._fh.flush()
        appender._fh.close()
        appender._fh = None

    def test_torn_append_truncated_on_reload(self, tmp_path, trace):
        path = tmp_path / "torn.rtrc"
        appender = RtrcAppender(path, trace.metadata)
        _stream(appender, trace, 0, 10)
        appender.commit()
        _stream(appender, trace, 10, 20)  # written but never committed
        self._crash(appender)

        committed = read_trace_rtrc(path)
        assert len(committed) == 10  # plain readers see the commit only

        reopened = RtrcAppender(path)
        assert reopened.snapshot_count == 10
        assert reopened.recovered_bytes > 0  # the torn tail was cut off
        _stream(reopened, trace, 10)  # overwrite the torn region
        reopened.close()
        _assert_stores_equal(trace.columns, read_trace_rtrc(path).columns)

    def test_torn_first_append_leaves_valid_empty_store(self, tmp_path):
        path = tmp_path / "torn0.rtrc"
        appender = RtrcAppender(path)
        appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        self._crash(appender)
        assert len(read_trace_rtrc(path)) == 0
        with RtrcAppender(path) as reopened:
            assert reopened.snapshot_count == 0
            reopened.append_snapshot(1.0, ["b"], [[1.0, 0.0, 0.0]])
        loaded = read_trace_rtrc(path)
        assert loaded.columns.times.tolist() == [1.0]
        assert loaded.columns.users.names == ["b"]

    def test_no_temp_litter_after_growth(self, tmp_path, trace):
        path = tmp_path / "grow.rtrc"
        with RtrcAppender(
            path, trace.metadata, snapshot_capacity=1, observation_capacity=2
        ) as appender:
            _stream(appender, trace)
        assert not list(tmp_path.glob("*.tmp"))

    def test_concurrent_reader_sees_consistent_prefix(self, tmp_path, trace):
        path = tmp_path / "shared.rtrc"
        appender = RtrcAppender(path, trace.metadata)
        _stream(appender, trace, 0, 10)
        appender.commit()

        reader = read_trace_rtrc(path, mmap=True)  # holds a live memmap
        frozen_times = reader.columns.times.copy()
        frozen_xyz = reader.columns.xyz.copy()

        # Keep appending (including capacity growth) under the reader.
        _stream(appender, trace, 10)
        appender.commit()
        appender.close()

        assert len(reader) == 10
        assert np.array_equal(reader.columns.times, frozen_times)
        assert np.array_equal(reader.columns.xyz, frozen_xyz)
        _assert_stores_equal(
            reader.columns, read_trace_rtrc(path).columns.slice_snapshots(0, 10)
        )

    def test_truncation_below_committed_data_is_corruption(self, tmp_path, trace):
        # A file cut into its *committed* sections (bad copy, disk
        # trouble) is not a torn append; reopening must fail cleanly
        # instead of resuming over a zero-filled hole.
        import os

        path = tmp_path / "cut.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            _stream(appender, trace)
        os.truncate(path, path.stat().st_size - 16)
        with pytest.raises(RtrcFormatError, match="truncated"):
            RtrcAppender(path)

    def test_recovered_clean_store_reports_nothing(self, tmp_path, trace):
        path = tmp_path / "clean.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            _stream(appender, trace)
        reopened = RtrcAppender(path)
        assert reopened.recovered_bytes == 0
        reopened.close()


class TestLayout:
    def test_plain_reader_ignores_the_append_key(self, tmp_path, trace):
        # The appendable layout stays a valid version-1 file: padded
        # header, capacity gaps between sections, extra "append" key.
        path = tmp_path / "layout.rtrc"
        with RtrcAppender(path, trace.metadata) as appender:
            _stream(appender, trace)
        store, metadata = read_store_rtrc(path, mmap=True)
        _assert_stores_equal(store, trace.columns)
        assert metadata == trace.metadata

    def test_header_reserve_grows_with_the_user_table(self, tmp_path):
        path = tmp_path / "users.rtrc"
        with RtrcAppender(path, header_reserve=64) as appender:
            for index in range(40):
                appender.append_snapshot(
                    float(index),
                    [f"user-with-a-long-name-{index:04d}"],
                    [[0.0, 0.0, 0.0]],
                )
                appender.commit()
            assert appender._reserve > 64
        loaded = read_trace_rtrc(path)
        assert loaded.columns.users.names[-1] == "user-with-a-long-name-0039"

    def test_default_reserve_fits_typical_headers(self, tmp_path):
        with RtrcAppender(tmp_path / "d.rtrc") as appender:
            assert appender._reserve == MIN_HEADER_RESERVE
