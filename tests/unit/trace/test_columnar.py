"""Unit tests for the columnar trace backend."""

import numpy as np
import pytest

from repro.geometry import Position
from repro.trace import (
    ColumnarBuilder,
    Snapshot,
    Trace,
    TraceMetadata,
    UserInterner,
    store_from_records,
)
from repro.trace.columnar import _concat_aranges


class TestUserInterner:
    def test_first_appearance_order(self):
        table = UserInterner()
        assert table.intern("bob") == 0
        assert table.intern("amy") == 1
        assert table.intern("bob") == 0
        assert table.name_of(1) == "amy"
        assert "amy" in table and "zed" not in table
        assert len(table) == 2


class TestColumnarBuilder:
    def test_sorts_snapshots_by_time(self):
        builder = ColumnarBuilder()
        builder.append_snapshot(20.0, ["a"], [[1.0, 2.0, 0.0]])
        builder.append_snapshot(10.0, ["b"], [[3.0, 4.0, 0.0]])
        store = builder.build()
        assert store.times.tolist() == [10.0, 20.0]
        assert store.names_of(0) == ["b"]
        assert store.names_of(1) == ["a"]

    def test_duplicate_user_in_snapshot_rejected(self):
        builder = ColumnarBuilder()
        with pytest.raises(ValueError, match="twice"):
            builder.append_snapshot(0.0, ["a", "a"], np.zeros((2, 3)))

    def test_empty_snapshot_kept(self):
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, [], np.zeros((0, 3)))
        store = builder.build()
        assert store.snapshot_count == 1
        assert store.counts().tolist() == [0]


class TestStoreFromRecords:
    def test_groups_by_time_stably(self):
        store = store_from_records(
            np.array([10.0, 0.0, 10.0]),
            ["x", "y", "z"],
            np.arange(9, dtype=float).reshape(3, 3),
        )
        assert store.times.tolist() == [0.0, 10.0]
        assert store.names_of(1) == ["x", "z"]

    def test_duplicate_time_user_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            store_from_records(
                np.array([5.0, 5.0]), ["a", "a"], np.zeros((2, 3))
            )


class TestTraceColumns:
    def _trace(self):
        snaps = [
            Snapshot(0.0, {"a": Position(1, 2, 3), "b": Position(4, 5, 6)}),
            Snapshot(10.0, {"b": Position(7, 8, 9)}),
            Snapshot(20.0, {}),
        ]
        return Trace(snaps, TraceMetadata(tau=10.0))

    def test_layout(self):
        cols = self._trace().columns
        assert cols.times.tolist() == [0.0, 10.0, 20.0]
        assert cols.snapshot_offsets.tolist() == [0, 2, 3, 3]
        assert cols.user_ids.tolist() == [0, 1, 1]
        assert cols.xyz.shape == (3, 3)
        assert cols.row_times().tolist() == [0.0, 0.0, 10.0]

    def test_snapshot_views_are_cached_and_consistent(self):
        trace = self._trace()
        first = trace[0]
        assert trace[0] is first
        users, coords = first.as_arrays()
        users2, coords2 = first.as_arrays()
        assert users is users2 and coords is coords2
        assert users == ["a", "b"]
        assert coords[1].tolist() == [4.0, 5.0, 6.0]

    def test_from_columns_roundtrip_through_window(self):
        trace = self._trace()
        sub = trace.window(5.0, 25.0)
        assert [s.time for s in sub] == [10.0, 20.0]
        # Interner shared: ids stable across views.
        assert sub.columns.users is trace.columns.users
        assert sub.unique_users() == {"b"}

    def test_resampled_strides_columns(self):
        trace = self._trace()
        coarse = trace.resampled(2)
        assert coarse.columns.times.tolist() == [0.0, 20.0]
        assert coarse.columns.user_ids.tolist() == [0, 1]
        assert coarse.metadata.tau == 20.0

    def test_negative_indexing(self):
        trace = self._trace()
        assert trace[-1].time == 20.0
        assert trace[-3].time == 0.0
        with pytest.raises(IndexError):
            trace[3]

    def test_slice_indexing(self):
        trace = self._trace()
        assert [s.time for s in trace[0:2]] == [0.0, 10.0]
        assert [s.time for s in trace[::2]] == [0.0, 20.0]
        assert trace[10:] == []

    def test_select_empty(self):
        cols = self._trace().columns.select(np.array([], dtype=int))
        assert cols.snapshot_count == 0
        assert cols.observation_count == 0


class TestConcatAranges:
    def test_basic(self):
        out = _concat_aranges(np.array([3, 10]), np.array([2, 3]))
        assert out.tolist() == [3, 4, 10, 11, 12]

    def test_skips_empty_groups(self):
        out = _concat_aranges(np.array([5, 7, 9]), np.array([1, 0, 2]))
        assert out.tolist() == [5, 9, 10]

    def test_all_empty(self):
        assert _concat_aranges(np.array([1]), np.array([0])).tolist() == []
