"""Unit tests for the experiment harness (scaled-down configuration)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    analyzer_for,
    clear_cache,
    fig1_temporal,
    fig3_zone_occupation,
    table1_summary,
    trace_for,
)
from repro.experiments.figures import FIG1_PANELS, FIG2_PANELS
from repro.experiments.runner import all_analyzers, quick_config

#: One tiny shared configuration so the whole module simulates each
#: land exactly once (~45 min windows).
TINY = ExperimentConfig(duration=2700.0, every=30, start_hour=13, spinup=1200.0)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_trace_cached(self):
        first = trace_for("Dance Island", TINY)
        second = trace_for("Dance Island", TINY)
        assert first is second

    def test_analyzer_cached(self):
        assert analyzer_for("Dance Island", TINY) is analyzer_for("Dance Island", TINY)

    def test_unknown_land_rejected(self):
        with pytest.raises(KeyError, match="unknown land"):
            trace_for("Atlantis", TINY)

    def test_trace_window_matches_config(self):
        trace = trace_for("Dance Island", TINY)
        assert trace.duration == pytest.approx(TINY.duration - TINY.tau, abs=2 * TINY.tau)
        assert trace.metadata.tau == TINY.tau

    def test_all_analyzers_covers_three_lands(self):
        analyzers = all_analyzers(TINY)
        assert set(analyzers) == {"Apfel Land", "Dance Island", "Isle of View"}

    def test_quick_config(self):
        cfg = quick_config(2.0)
        assert cfg.duration == 7200.0
        with pytest.raises(ValueError):
            quick_config(0.0)

    def test_config_flags(self):
        assert not TINY.scaled_to_paper()
        assert ExperimentConfig().scaled_to_paper()


class TestFigureBuilders:
    def test_fig1_panel_structure(self):
        fig1 = fig1_temporal(TINY)
        assert tuple(fig1) == FIG1_PANELS
        for panel in FIG1_PANELS:
            assert set(fig1[panel]) == {"Apfel Land", "Dance Island", "Isle of View"}

    def test_fig1_ccdf_values_sane(self):
        fig1 = fig1_temporal(TINY)
        for series in fig1.values():
            for ecdf in series.values():
                assert 0.0 <= ecdf.ccdf(ecdf.median) <= 0.5 + 1.0 / ecdf.n

    def test_fig3_empty_cells_dominate(self):
        fig3 = fig3_zone_occupation(TINY)
        for land, ecdf in fig3.items():
            assert float(ecdf.cdf(0.0)) > 0.7, land

    def test_table1_rows(self):
        rows = table1_summary(TINY)
        assert len(rows) == 3
        for row in rows:
            assert row["unique_users"] > 0
            assert row["mean_concurrent"] > 0
            assert "paper_unique_users" in row

    def test_fig2_panel_names(self):
        assert FIG2_PANELS[0] == "degree_rb"
        assert len(FIG2_PANELS) == 6
