"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.trace import read_trace_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "x.csv"])
        assert args.land == "dance"
        assert args.tau == 10.0
        assert args.monitor == "crawler"

    def test_unknown_land_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--land", "atlantis", "--out", "x.csv"])

    def test_analyze_repeatable_range(self):
        args = build_parser().parse_args(["analyze", "t.csv", "--range", "10", "--range", "80"])
        assert args.range == [10.0, 80.0]

    def test_analyze_shards_flag(self):
        args = build_parser().parse_args(["analyze", "t.rtrc", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["analyze", "t.rtrc"]).shards == 1

    def test_analyze_help_documents_shards(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--help"])
        help_text = capsys.readouterr().out
        assert "--shards" in help_text
        assert "fan contact/session/zone/graph extraction" in help_text
        assert "--backend" in help_text

    def test_convert_positionals(self):
        args = build_parser().parse_args(["convert", "in.csv.gz", "out.rtrc"])
        assert args.input == "in.csv.gz"
        assert args.output == "out.rtrc"

    def test_convert_help_names_formats(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["convert", "--help"])
        help_text = capsys.readouterr().out
        assert "rtrc" in help_text

    def test_simulate_help_mentions_rtrc(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--help"])
        assert ".rtrc" in capsys.readouterr().out


class TestSimulateAnalyzeRoundTrip:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli") / "mini.csv.gz"
        code = main([
            "simulate",
            "--land", "dance",
            "--hours", "0.1",
            "--spinup", "600",
            "--seed", "3",
            "--out", str(out),
        ])
        assert code == 0
        return out

    def test_simulate_writes_loadable_trace(self, trace_path):
        trace = read_trace_csv(trace_path)
        assert len(trace) == 36
        assert trace.metadata.land_name == "Dance Island"

    def test_analyze_runs(self, trace_path, capsys):
        code = main(["analyze", str(trace_path), "--range", "10", "--every", "6"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Dance Island" in output
        assert "temporal metrics" in output
        assert "trip metrics" in output

    def test_validate_clean(self, trace_path, capsys):
        code = main(["validate", str(trace_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_jsonl_output(self, tmp_path):
        out = tmp_path / "mini.jsonl"
        code = main([
            "simulate", "--land", "apfel", "--hours", "0.05",
            "--spinup", "300", "--out", str(out),
        ])
        assert code == 0
        from repro.trace import read_trace_jsonl

        assert read_trace_jsonl(out).metadata.land_name == "Apfel Land"

    def test_sensor_monitor_option(self, tmp_path):
        out = tmp_path / "sensed.csv"
        code = main([
            "simulate", "--land", "dance", "--hours", "0.05",
            "--spinup", "300", "--monitor", "sensors", "--out", str(out),
        ])
        assert code == 0
        assert read_trace_csv(out).metadata.source == "sensor-network"

    def test_rtrc_output(self, tmp_path):
        out = tmp_path / "mini.rtrc"
        code = main([
            "simulate", "--land", "dance", "--hours", "0.05",
            "--spinup", "300", "--out", str(out),
        ])
        assert code == 0
        from repro.trace import read_trace_rtrc

        assert read_trace_rtrc(out).metadata.land_name == "Dance Island"


class TestConvertAndShards:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("convert") / "mini.csv"
        assert main([
            "simulate", "--land", "dance", "--hours", "0.1",
            "--spinup", "600", "--seed", "3", "--out", str(out),
        ]) == 0
        return out

    def test_convert_csv_to_rtrc_preserves_columns(self, trace_path, tmp_path, capsys):
        out = tmp_path / "mini.rtrc"
        assert main(["convert", str(trace_path), str(out)]) == 0
        import numpy as np

        from repro.trace import read_trace_rtrc

        original = read_trace_csv(trace_path)
        converted = read_trace_rtrc(out)
        assert np.array_equal(original.columns.times, converted.columns.times)
        assert np.array_equal(original.columns.user_ids, converted.columns.user_ids)
        assert np.array_equal(original.columns.xyz, converted.columns.xyz)

    def test_analyze_rtrc_with_shards_matches_unsharded(self, trace_path, tmp_path, capsys):
        out = tmp_path / "mini.rtrc"
        assert main(["convert", str(trace_path), str(out)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(out), "--range", "10", "--every", "6"]) == 0
        unsharded = capsys.readouterr().out
        assert main([
            "analyze", str(out), "--range", "10", "--every", "6", "--shards", "3",
        ]) == 0
        sharded = capsys.readouterr().out
        assert sharded == unsharded
        assert "Dance Island" in sharded


class TestCrawlStreaming:
    @pytest.fixture(scope="class")
    def crawl_store(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("crawl") / "live.rtrc"
        code = main([
            "crawl", "--land", "dance", "--hours", "0.1",
            "--spinup", "600", "--seed", "3",
            "--round-minutes", "2", "--out", str(out),
        ])
        assert code == 0
        return out

    def test_crawl_matches_one_shot_simulate(self, crawl_store, tmp_path):
        # Same seed, same land: the streamed store must be bit-for-bit
        # the trace the buffered simulate pipeline writes.
        import numpy as np

        from repro.trace import read_trace_rtrc

        one_shot = tmp_path / "one.rtrc"
        assert main([
            "simulate", "--land", "dance", "--hours", "0.1",
            "--spinup", "600", "--seed", "3", "--out", str(one_shot),
        ]) == 0
        streamed = read_trace_rtrc(crawl_store)
        expected = read_trace_rtrc(one_shot)
        assert np.array_equal(streamed.columns.times, expected.columns.times)
        assert np.array_equal(streamed.columns.user_ids, expected.columns.user_ids)
        assert np.array_equal(streamed.columns.xyz, expected.columns.xyz)
        assert streamed.columns.users.names == expected.columns.users.names
        assert streamed.metadata == expected.metadata

    def test_crawl_follow_prints_live_status(self, tmp_path, capsys):
        out = tmp_path / "follow.rtrc"
        code = main([
            "crawl", "--land", "dance", "--hours", "0.05",
            "--spinup", "300", "--round-minutes", "1",
            "--out", str(out), "--follow",
        ])
        assert code == 0
        status = capsys.readouterr().err
        assert "contacts(r=10)" in status
        assert "sessions=" in status

    def test_crawl_rejects_non_rtrc_target(self, tmp_path, capsys):
        code = main([
            "crawl", "--land", "dance", "--hours", "0.05",
            "--out", str(tmp_path / "x.csv"),
        ])
        assert code == 2
        assert ".rtrc" in capsys.readouterr().err

    def test_analyze_follow_reports_and_exits(self, crawl_store, capsys):
        code = main([
            "analyze", str(crawl_store), "--follow",
            "--idle-rounds", "0", "--range", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "contacts(r=10)" in out
        assert "no growth" in out

    def test_analyze_follow_rejects_csv(self, tmp_path, capsys):
        csv = tmp_path / "x.csv"
        csv.write_text("time,user,x,y,z\n")
        assert main(["analyze", str(csv), "--follow"]) == 2

    def test_analyze_follow_rejects_gzip_store(self, tmp_path, capsys):
        # A gzipped store can never grow (the appender rejects it);
        # tailing one would just re-decompress forever.
        gz = tmp_path / "x.rtrc.gz"
        gz.write_bytes(b"")
        assert main(["analyze", str(gz), "--follow"]) == 2
        assert ".rtrc" in capsys.readouterr().err

    def test_crawl_help_documents_streaming(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crawl", "--help"])
        help_text = capsys.readouterr().out
        assert "--round-minutes" in help_text
        assert "--follow" in help_text


class TestValidateExitCodes:
    def test_validate_flags_dirty_trace(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.csv"
        dirty.write_text(
            "time,user,x,y,z\n"
            "0.0,sitter,0.0,0.0,0.0\n"
            "10.0,oob,999.0,10.0,0.0\n"
        )
        code = main(["validate", str(dirty)])
        # Warnings only: exit code stays 0, but issues are printed.
        assert code == 0
        out = capsys.readouterr().out
        assert "sitting-artifact" in out
        assert "out-of-bounds" in out


class TestShardDirCli:
    """The shard-dir surface: clean diagnostics, no raw tracebacks."""

    def _grown_dir(self, tmp_path):
        import numpy as np

        from repro.trace import RtrcDirAppender
        from tests.unit.core.test_sharded_equivalence import churn_trace

        trace = churn_trace(47)
        cols = trace.columns
        root = tmp_path / "shards"
        edges = np.linspace(0, cols.snapshot_count, 4).astype(int)
        with RtrcDirAppender(root, trace.metadata) as appender:
            for lo, hi in zip(edges[:-1], edges[1:]):
                for i in range(int(lo), int(hi)):
                    a, b = cols.snapshot_offsets[i], cols.snapshot_offsets[i + 1]
                    appender.append_snapshot(
                        float(cols.times[i]), cols.names_of(i), cols.xyz[a:b]
                    )
                appender.commit()
        return root

    def test_follow_before_producer_exits_cleanly(self, tmp_path, capsys):
        # Follower started before the crawler: exit 2 + message, not a
        # FileNotFoundError traceback (for dirs and files alike).
        assert main(["analyze", str(tmp_path / "not-yet"), "--follow"]) == 2
        assert "start the crawl" in capsys.readouterr().err
        assert main(["analyze", str(tmp_path / "not.rtrc"), "--follow"]) == 2
        assert "start the crawl" in capsys.readouterr().err

    def test_batch_analyze_loads_a_shard_dir(self, tmp_path, capsys):
        root = self._grown_dir(tmp_path)
        assert main(["analyze", str(root), "--range", "15", "--every", "6"]) == 0
        assert "churn" in capsys.readouterr().out

    def test_batch_analyze_rejects_a_non_shard_dir(self, tmp_path, capsys):
        empty = tmp_path / "empty-dir"
        empty.mkdir()
        assert main(["analyze", str(empty)]) == 2
        assert "shard directory" in capsys.readouterr().err

    def test_analyze_backend_serial_needs_follow(self, tmp_path, capsys):
        root = self._grown_dir(tmp_path)
        assert main(["analyze", str(root), "--backend", "serial"]) == 2
        assert "--follow" in capsys.readouterr().err

    def test_compact_missing_target_exits_cleanly(self, tmp_path, capsys):
        assert main(["compact", str(tmp_path / "nothere.rtrc")]) == 2
        assert "no such store" in capsys.readouterr().err

    def test_compact_non_shard_dir_exits_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty-dir"
        empty.mkdir()
        assert main(["compact", str(empty)]) == 2
        assert "cannot compact" in capsys.readouterr().err

    def test_compact_shard_dir_round_trips(self, tmp_path, capsys):
        root = self._grown_dir(tmp_path)
        assert main(["compact", str(root), "--shards", "2"]) == 0
        assert "2 shard file(s)" in capsys.readouterr().err
        assert main(["analyze", str(root), "--range", "15"]) == 0

    def test_follow_racing_compaction_exits_with_guidance(
        self, tmp_path, capsys, monkeypatch
    ):
        # Regression: a compaction racing `analyze --follow` used to
        # escape as a raw StoreChangedError traceback.  It must exit 2
        # with the "compact only between followers" guidance.
        from repro.core import StoreChangedError

        root = self._grown_dir(tmp_path)

        def compacted_under(live):
            raise StoreChangedError(
                f"{root}: committed shard files changed under the analyzer"
            )

        monkeypatch.setattr("repro.cli._refresh_live", compacted_under)
        code = main([
            "analyze", str(root), "--follow",
            "--poll", "0.01", "--idle-rounds", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "compact only between followers" in err
        assert "slmob serve" in err


class TestServeCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "crawl-dir"])
        assert args.stores == ["crawl-dir"]
        assert args.host == "127.0.0.1"
        assert args.port == 8700
        assert args.backend == "serial"
        assert not args.ingest

    def test_serve_help_documents_ingest(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        help_text = capsys.readouterr().out
        assert "--ingest" in help_text
        assert "POST" in help_text

    def test_store_specs_default_names_strip_rtrc(self):
        from repro.cli import _serve_store_specs

        stores = _serve_store_specs(
            ["crawls/dance.rtrc", "apfel", "iov=crawls/live.rtrc.gz"]
        )
        assert sorted(stores) == ["apfel", "dance", "iov"]
        assert str(stores["dance"]) == "crawls/dance.rtrc"

    def test_store_specs_reject_duplicate_names(self):
        from repro.cli import _serve_store_specs

        with pytest.raises(ValueError, match="used twice"):
            _serve_store_specs(["a/dance.rtrc", "b/dance.rtrc"])

    def test_serve_missing_store_exits_cleanly(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nothere")]) == 2
        assert "cannot serve" in capsys.readouterr().err

    def test_serve_duplicate_store_names_exit_cleanly(self, tmp_path, capsys):
        assert main([
            "serve", str(tmp_path / "x" / "dance"), str(tmp_path / "y" / "dance"),
        ]) == 2
        assert "used twice" in capsys.readouterr().err

    def test_crawl_to_http_sink_posts_rounds(self, tmp_path, capsys):
        # End to end: `crawl --out http://...` streams through the
        # ingest endpoint into a service-owned shard directory.
        from repro.service import QueryService
        from repro.trace import read_rtrc_dir

        root = tmp_path / "ingested"
        with QueryService({"crawl": root}, ingest=True) as service:
            host, port = service.start()
            code = main([
                "crawl", "--land", "dance", "--hours", "0.05",
                "--spinup", "300", "--round-minutes", "1",
                "--out", f"http://{host}:{port}/v1/crawl",
            ])
            assert code == 0
            assert service.stats.ingested_rounds == 3
        err = capsys.readouterr().err
        assert "rounds_posted=3" in err
        shards = read_rtrc_dir(root)
        assert len(shards) == 3  # one committed shard file per round
        assert shards[0].metadata.land_name == "Dance Island"

    def test_crawl_http_sink_rejects_follow(self, capsys):
        code = main([
            "crawl", "--land", "dance", "--hours", "0.05",
            "--out", "http://127.0.0.1:1/v1/crawl", "--follow",
        ])
        assert code == 2
        assert "local store" in capsys.readouterr().err

    def test_crawl_http_sink_unreachable_service_fails_cleanly(self, capsys):
        # Nothing listens on the target: exit 1 + message, no traceback.
        code = main([
            "crawl", "--land", "dance", "--hours", "0.05",
            "--spinup", "0", "--round-minutes", "1",
            "--out", "http://127.0.0.1:1/v1/crawl",
        ])
        assert code == 1
        assert "ingest failed" in capsys.readouterr().err


class TestScenarioFlags:
    def test_campus_land_available(self):
        args = build_parser().parse_args(
            ["simulate", "--land", "campus", "--out", "x.rtrc"]
        )
        assert args.land == "campus"

    def test_association_monitor_flag(self):
        args = build_parser().parse_args(
            ["simulate", "--land", "campus", "--monitor", "association",
             "--out", "x.rtrc"]
        )
        assert args.monitor == "association"

    def test_sensor_model_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--monitor", "sensors", "--sensor-model", "pathloss",
             "--sensor-sigma", "4", "--out", "x.rtrc"]
        )
        assert args.sensor_model == "pathloss"
        assert args.sensor_sigma == 4.0

    def test_metaverse_land_and_users(self):
        args = build_parser().parse_args(
            ["crawl", "--land", "metaverse", "--users", "500",
             "--out", "x.rtrc"]
        )
        assert args.land == "metaverse"
        assert args.users == 500

    def test_crawl_monitor_choices_exclude_sensors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["crawl", "--monitor", "sensors", "--out", "x.rtrc"]
            )

    def test_association_needs_access_points(self, tmp_path, capsys):
        code = main([
            "simulate", "--land", "dance", "--monitor", "association",
            "--hours", "0.01", "--spinup", "0",
            "--out", str(tmp_path / "x.rtrc"),
        ])
        assert code == 2
        assert "access" in capsys.readouterr().err


class TestScenarioRoundTrips:
    def test_campus_association_simulate_analyze(self, tmp_path, capsys):
        out = tmp_path / "campus.rtrc"
        assert main([
            "simulate", "--land", "campus", "--monitor", "association",
            "--hours", "0.15", "--spinup", "600", "--seed", "5",
            "--out", str(out),
        ]) == 0
        assert main(["analyze", str(out), "--range", "1", "--every", "6"]) == 0
        assert "Campus WLAN" in capsys.readouterr().out

    def test_campus_streamed_crawl_equals_buffered_simulate(self, tmp_path):
        import numpy as np

        from repro.trace import read_trace

        sim = tmp_path / "sim.rtrc"
        crawled = tmp_path / "crawl.rtrc"
        world = ["--land", "campus", "--monitor", "association",
                 "--hours", "0.05", "--spinup", "300", "--seed", "5"]
        assert main(["simulate", *world, "--out", str(sim)]) == 0
        assert main([
            "crawl", *world, "--round-minutes", "1", "--out", str(crawled),
        ]) == 0
        a, b = read_trace(sim).columns, read_trace(crawled).columns
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.xyz, b.xyz)
        assert np.array_equal(a.snapshot_offsets, b.snapshot_offsets)
        assert [a.users.names[i] for i in a.user_ids] == [
            b.users.names[i] for i in b.user_ids
        ]

    def test_metaverse_streamed_crawl_equals_buffered_simulate(self, tmp_path):
        import numpy as np

        from repro.trace import read_trace

        sim = tmp_path / "sim.rtrc"
        crawled = tmp_path / "crawl.rtrc"
        world = ["--land", "metaverse", "--users", "80", "--hours", "0.05",
                 "--seed", "9"]
        assert main(["simulate", *world, "--out", str(sim)]) == 0
        assert main([
            "crawl", *world, "--round-minutes", "1", "--out", str(crawled),
        ]) == 0
        a, b = read_trace(sim).columns, read_trace(crawled).columns
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.xyz, b.xyz)

    def test_pathloss_sensor_simulate_reproducible(self, tmp_path):
        import filecmp

        world = ["--land", "dance", "--monitor", "sensors",
                 "--sensor-model", "pathloss", "--hours", "0.05",
                 "--spinup", "300", "--seed", "4"]
        one = tmp_path / "one.rtrc"
        two = tmp_path / "two.rtrc"
        assert main(["simulate", *world, "--out", str(one)]) == 0
        assert main(["simulate", *world, "--out", str(two)]) == 0
        assert filecmp.cmp(one, two, shallow=False)
