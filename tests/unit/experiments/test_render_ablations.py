"""Unit tests for the ablation runners and the report renderer."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ablation_crawler_perturbation,
    ablation_mobility_models,
    ablation_monitor_fidelity,
    ablation_tau,
    clear_cache,
    dtn_replay_experiment,
    render_experiment_report,
)

TINY = ExperimentConfig(duration=1800.0, every=30, start_hour=13, spinup=900.0)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestAblationTau:
    def test_rows_and_monotonicity(self):
        rows = ablation_tau(TINY, factors=(1, 2, 4))
        assert [row["tau_s"] for row in rows] == [10.0, 20.0, 40.0]
        counts = [row["contacts"] for row in rows]
        assert counts[0] > counts[-1]


class TestAblationCrawler:
    def test_naive_vs_mimic(self):
        rows = ablation_crawler_perturbation(duration=1200.0)
        kinds = {row["crawler"] for row in rows}
        assert kinds == {"naive", "mimic"}
        naive = next(r for r in rows if r["crawler"] == "naive")
        mimic = next(r for r in rows if r["crawler"] == "mimic")
        assert naive["redirects"] > mimic["redirects"] == 0


class TestAblationMonitors:
    def test_columns_uniform(self):
        rows = ablation_monitor_fidelity(duration=900.0)
        keys = {tuple(sorted(row)) for row in rows}
        assert len(keys) == 1  # renderable
        truth = next(r for r in rows if r["monitor"] == "ground-truth")
        assert truth["record_coverage"] == 1.0


class TestAblationMobility:
    def test_three_families(self):
        rows = ablation_mobility_models(duration=1200.0)
        assert [row["mobility"] for row in rows] == ["poi", "rwp", "levy"]
        for row in rows:
            assert 0.0 <= row["isolation"] <= 1.0


class TestDtnReplayExperiment:
    def test_four_protocols(self):
        rows = dtn_replay_experiment(TINY, message_count=10)
        assert [row["protocol"] for row in rows] == [
            "epidemic", "two-hop", "first-contact", "direct",
        ]
        for row in rows:
            assert 0.0 <= row["delivery_ratio"] <= 1.0


class TestRenderReport:
    def test_report_structure(self):
        report = render_experiment_report(TINY)
        for heading in (
            "## T1 — Trace summary",
            "## F1 — Temporal analysis",
            "## F2 — Line-of-sight networks",
            "## F3 — Zone occupation",
            "## F4 — Trip analysis",
        ):
            assert heading in report
        # Every figure panel appears.
        for panel in ("Fig 1(a)", "Fig 1(f)", "Fig 2(a)", "Fig 2(f)", "Fig 3", "Fig 4(c)"):
            assert panel in report
        # The report renders verdict lines.
        assert "PASS" in report or "DEVIATES" in report
