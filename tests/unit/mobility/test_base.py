"""Unit tests for repro.mobility.base."""

import numpy as np
import pytest

from repro.geometry import Path, Position
from repro.mobility import Leg, RandomWaypoint


class TestLeg:
    def test_travel_seconds(self):
        leg = Leg(Path.from_points([(0, 0), (30, 0)]), speed=3.0, pause=10.0)
        assert leg.travel_seconds == 10.0
        assert leg.total_seconds == 20.0

    def test_pure_pause_leg(self):
        leg = Leg(Path.from_points([(5, 5)]), speed=0.0, pause=60.0)
        assert leg.travel_seconds == 0.0
        assert leg.total_seconds == 60.0

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError, match="non-negative"):
            Leg(Path.from_points([(0, 0)]), speed=-1.0, pause=0.0)

    def test_rejects_zero_speed_with_distance(self):
        with pytest.raises(ValueError, match="zero speed"):
            Leg(Path.from_points([(0, 0), (10, 0)]), speed=0.0, pause=0.0)

    def test_rejects_negative_pause(self):
        with pytest.raises(ValueError, match="non-negative"):
            Leg(Path.from_points([(0, 0)]), speed=0.0, pause=-5.0)


class TestModelHelpers:
    def test_clamp(self):
        model = RandomWaypoint(100.0, 50.0)
        assert model.clamp(-5.0, 60.0) == Position(0.0, 50.0)
        assert model.clamp(42.0, 7.0) == Position(42.0, 7.0)

    def test_uniform_point_in_bounds(self):
        model = RandomWaypoint(100.0, 50.0)
        rng = np.random.default_rng(0)
        for _i in range(100):
            p = model.uniform_point(rng)
            assert 0.0 <= p.x <= 100.0
            assert 0.0 <= p.y <= 50.0

    def test_size_validation(self):
        with pytest.raises(ValueError, match="positive"):
            RandomWaypoint(0.0, 10.0)

    def test_straight_leg(self):
        model = RandomWaypoint(100.0, 100.0)
        leg = model.straight_leg(Position(0, 0), Position(10, 0), speed=2.0, pause=1.0)
        assert leg.path.length == 10.0
        assert leg.travel_seconds == 5.0
