"""Unit tests for the concrete mobility models."""


import math

import numpy as np
import pytest

from repro.geometry import Position, distance
from repro.mobility import (
    GaussMarkov,
    GaussMarkovState,
    LevyWalk,
    PoiMobility,
    PointOfInterest,
    RandomDirection,
    RandomWaypoint,
    StaticModel,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestRandomWaypoint:
    def test_legs_stay_in_bounds(self, rng):
        model = RandomWaypoint(200.0, 100.0)
        pos = model.initial_position(rng)
        for _i in range(50):
            leg = model.next_leg(pos, rng)
            end = leg.path.waypoints[-1]
            assert 0.0 <= end.x <= 200.0
            assert 0.0 <= end.y <= 100.0
            pos = end

    def test_speed_range_respected(self, rng):
        model = RandomWaypoint(100.0, 100.0, min_speed=2.0, max_speed=3.0)
        for _i in range(50):
            leg = model.next_leg(Position(50, 50), rng)
            assert 2.0 <= leg.speed < 3.0

    def test_pause_range_respected(self, rng):
        model = RandomWaypoint(100.0, 100.0, min_pause=5.0, max_pause=6.0)
        for _i in range(50):
            leg = model.next_leg(Position(50, 50), rng)
            assert 5.0 <= leg.pause < 6.0

    def test_fixed_pause(self, rng):
        model = RandomWaypoint(100.0, 100.0, min_pause=7.0, max_pause=7.0)
        assert model.next_leg(Position(0, 0), rng).pause == 7.0

    def test_zero_min_speed_rejected(self):
        with pytest.raises(ValueError, match="min_speed"):
            RandomWaypoint(100.0, 100.0, min_speed=0.0)


class TestLevyWalk:
    def test_flight_lengths_truncated(self, rng):
        model = LevyWalk(1000.0, 1000.0, min_flight=5.0, max_flight=50.0)
        start = Position(500.0, 500.0)
        for _i in range(200):
            leg = model.next_leg(start, rng)
            # Reflection can shorten the chord but never lengthen it.
            assert leg.path.length <= 50.0 + 1e-9

    def test_reflection_keeps_walker_inside(self, rng):
        model = LevyWalk(100.0, 100.0, min_flight=50.0, max_flight=400.0)
        pos = Position(5.0, 5.0)
        for _i in range(100):
            leg = model.next_leg(pos, rng)
            pos = leg.path.waypoints[-1]
            assert 0.0 <= pos.x <= 100.0
            assert 0.0 <= pos.y <= 100.0

    def test_reflect_axis(self):
        assert LevyWalk._reflect_axis(-10.0, 100.0) == 10.0
        assert LevyWalk._reflect_axis(110.0, 100.0) == 90.0
        assert LevyWalk._reflect_axis(250.0, 100.0) == 50.0
        assert LevyWalk._reflect_axis(30.0, 100.0) == 30.0

    def test_heavy_tailed_flights(self, rng):
        model = LevyWalk(10000.0, 10000.0, flight_alpha=1.5,
                         min_flight=1.0, max_flight=1000.0)
        lengths = [model.next_leg(Position(5000, 5000), rng).path.length for _ in range(2000)]
        # Heavy tail: p99 much larger than the median.
        assert np.quantile(lengths, 0.99) > 10 * np.median(lengths)

    def test_speed_validation(self):
        with pytest.raises(ValueError, match="speed"):
            LevyWalk(100.0, 100.0, speed=0.0)


class TestStaticModel:
    def test_anchor_spawn(self, rng):
        model = StaticModel(100.0, 100.0, anchor=Position(10.0, 20.0))
        assert model.initial_position(rng) == Position(10.0, 20.0)

    def test_region_spawn_inside_disc(self, rng):
        model = StaticModel(256.0, 256.0, region=(100.0, 100.0, 30.0))
        for _i in range(100):
            p = model.initial_position(rng)
            assert distance(p, Position(100.0, 100.0)) <= 30.0 + 1e-9

    def test_uniform_spawn(self, rng):
        model = StaticModel(50.0, 50.0)
        p = model.initial_position(rng)
        assert 0.0 <= p.x <= 50.0

    def test_never_moves(self, rng):
        model = StaticModel(100.0, 100.0)
        pos = Position(5.0, 5.0)
        leg = model.next_leg(pos, rng)
        assert leg.path.length == 0.0
        assert leg.pause > 0.0

    def test_anchor_and_region_exclusive(self):
        with pytest.raises(ValueError, match="either"):
            StaticModel(100.0, 100.0, anchor=Position(1, 1), region=(5, 5, 2))

    def test_anchor_bounds_checked(self):
        with pytest.raises(ValueError, match="outside"):
            StaticModel(100.0, 100.0, anchor=Position(500.0, 5.0))


class TestPointOfInterest:
    def test_contains(self):
        poi = PointOfInterest("p", 50.0, 50.0, radius=10.0)
        assert poi.contains(Position(55.0, 50.0))
        assert not poi.contains(Position(65.0, 50.0))

    def test_validation(self):
        with pytest.raises(ValueError, match="radius"):
            PointOfInterest("p", 0, 0, radius=0.0)
        with pytest.raises(ValueError, match="weights"):
            PointOfInterest("p", 0, 0, radius=1.0, weight=-1.0)
        with pytest.raises(ValueError, match="dwell"):
            PointOfInterest("p", 0, 0, radius=1.0, dwell_scale=0.0)


class TestPoiMobility:
    def _model(self, **kwargs):
        pois = [
            PointOfInterest("hub", 128.0, 128.0, radius=15.0, weight=5.0, spawn_weight=1.0),
            PointOfInterest("side", 50.0, 50.0, radius=10.0, weight=1.0),
        ]
        defaults = dict(stay_probability=0.8, explore_probability=0.05)
        defaults.update(kwargs)
        return PoiMobility(256.0, 256.0, pois, **defaults)

    def test_requires_pois(self):
        with pytest.raises(ValueError, match="at least one"):
            PoiMobility(256.0, 256.0, [])

    def test_requires_positive_weight(self):
        pois = [PointOfInterest("p", 10, 10, radius=5.0, weight=0.0)]
        with pytest.raises(ValueError, match="positive weight"):
            PoiMobility(256.0, 256.0, pois)

    def test_poi_outside_land_rejected(self):
        pois = [PointOfInterest("p", 500.0, 10.0, radius=5.0)]
        with pytest.raises(ValueError, match="outside"):
            PoiMobility(256.0, 256.0, pois)

    def test_spawn_at_weighted_poi(self, rng):
        model = self._model()
        for _i in range(50):
            p = model.initial_position(rng)
            # Only the hub has spawn weight.
            assert distance(p, Position(128.0, 128.0)) <= 15.0 + 1e-9

    def test_uniform_spawn_without_spawn_weights(self, rng):
        pois = [PointOfInterest("p", 128.0, 128.0, radius=10.0, weight=1.0)]
        model = PoiMobility(256.0, 256.0, pois)
        points = [model.initial_position(rng) for _ in range(300)]
        outside = [p for p in points if distance(p, Position(128, 128)) > 10.0]
        assert len(outside) > 200  # uniform: most spawns miss the POI

    def test_poi_at(self):
        model = self._model()
        assert model.poi_at(Position(128.0, 130.0)).name == "hub"
        assert model.poi_at(Position(200.0, 200.0)) is None

    def test_micro_move_stays_in_poi(self, rng):
        model = self._model(stay_probability=1.0)
        pos = Position(128.0, 128.0)
        for _i in range(50):
            leg = model.next_leg(pos, rng)
            pos = leg.path.waypoints[-1]
            assert distance(pos, Position(128.0, 128.0)) <= 15.0 + 1e-9

    def test_relocation_targets_other_poi(self, rng):
        model = self._model(stay_probability=0.0, explore_probability=0.0)
        # From the hub, the only other destination is "side".
        for _i in range(20):
            leg = model.next_leg(Position(128.0, 128.0), rng)
            end = leg.path.waypoints[-1]
            assert distance(end, Position(50.0, 50.0)) <= 10.0 + 1e-9

    def test_dwell_scale_stretches_pauses(self, rng):
        pois = [
            PointOfInterest("fast", 50.0, 50.0, radius=8.0, weight=1.0),
            PointOfInterest("slow", 200.0, 200.0, radius=8.0, weight=1.0, dwell_scale=10.0),
        ]
        model = PoiMobility(256.0, 256.0, pois, stay_probability=1.0,
                            explore_probability=0.0)
        fast = [model.next_leg(Position(50, 50), rng).pause for _ in range(200)]
        slow = [model.next_leg(Position(200, 200), rng).pause for _ in range(200)]
        assert np.median(slow) > 5 * np.median(fast)

    def test_local_wander_short_steps(self, rng):
        model = self._model(local_wander_probability=1.0, local_wander_reach=6.0)
        pos = Position(200.0, 60.0)  # outside every POI
        leg = model.next_leg(pos, rng)
        assert leg.path.length <= 6.0 + 1e-9

    def test_exploration_reaches_whole_land(self, rng):
        model = self._model(stay_probability=0.0, explore_probability=1.0)
        ends = [model.next_leg(Position(128, 128), rng).path.waypoints[-1] for _ in range(300)]
        xs = [p.x for p in ends]
        assert min(xs) < 40 and max(xs) > 216  # spans the land

    def test_point_within_always_inside(self, rng):
        model = self._model()
        poi = model.pois[0]
        for _i in range(200):
            assert poi.contains(model.point_within(poi, rng))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="stay_probability"):
            self._model(stay_probability=1.5)
        with pytest.raises(ValueError, match="explore_probability"):
            self._model(explore_probability=-0.1)
        with pytest.raises(ValueError, match="micro_move_scale"):
            self._model(micro_move_scale=0.0)
        with pytest.raises(ValueError, match="local_wander_probability"):
            self._model(local_wander_probability=2.0)
        with pytest.raises(ValueError, match="local_wander_reach"):
            self._model(local_wander_reach=0.0)


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        pois = [PointOfInterest("p", 100.0, 100.0, radius=10.0, weight=1.0)]
        model = PoiMobility(256.0, 256.0, pois)

        def run(seed):
            rng = np.random.default_rng(seed)
            pos = model.initial_position(rng)
            out = [pos]
            for _i in range(20):
                leg = model.next_leg(pos, rng)
                pos = leg.path.waypoints[-1]
                out.append(pos)
            return out

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestGaussMarkov:
    def _walk(self, model, rng, n, start=None):
        pos = start or model.initial_position(rng)
        state = model.initial_state(pos, rng)
        legs = []
        for _i in range(n):
            leg, state = model.next_leg_from(pos, state, rng)
            pos = leg.path.waypoints[-1]
            legs.append(leg)
        return legs

    def test_legs_stay_in_bounds(self, rng):
        model = GaussMarkov(200.0, 100.0, edge_margin=10.0)
        for leg in self._walk(model, rng, 300):
            end = leg.path.waypoints[-1]
            assert 0.0 <= end.x <= 200.0
            assert 0.0 <= end.y <= 100.0

    def test_speed_autocorrelation_tracks_alpha(self, rng):
        # Lag-1 autocorrelation of the sampled speed sequence is alpha
        # (the AR(1) property); large land so edge steering never bites
        # and a high mean keeps the min-speed floor out of play.
        for alpha in (0.3, 0.8):
            model = GaussMarkov(
                100000.0, 100000.0, alpha=alpha, mean_speed=10.0,
                speed_sigma=1.0, min_speed=0.2,
            )
            start = Position(50000.0, 50000.0)
            state = model.initial_state(start, rng)
            speeds = []
            for _i in range(4000):
                leg, state = model.next_leg_from(start, state, rng)
                speeds.append(leg.speed)
            s = np.asarray(speeds)
            measured = float(np.corrcoef(s[:-1], s[1:])[0, 1])
            assert abs(measured - alpha) < 0.08, (alpha, measured)

    def test_edge_steering_turns_walkers_around(self, rng):
        # An avatar in the margin heading outward gets its mean heading
        # redirected; within a few epochs it is walking back inside.
        model = GaussMarkov(400.0, 400.0, alpha=0.5, edge_margin=40.0)
        pos = Position(5.0, 200.0)
        state = GaussMarkovState(2.0, math.pi, math.pi)  # heading out
        for _i in range(40):
            leg, state = model.next_leg_from(pos, state, rng)
            pos = leg.path.waypoints[-1]
        assert pos.x > 40.0

    def test_next_leg_delegates_to_fresh_state(self, rng):
        model = GaussMarkov(256.0, 256.0)
        leg = model.next_leg(Position(128.0, 128.0), rng)
        assert leg.speed >= model.min_speed
        assert leg.pause == 0.0

    def test_same_seed_same_trajectory(self):
        model = GaussMarkov(256.0, 256.0)

        def run(seed):
            rng = np.random.default_rng(seed)
            legs = TestGaussMarkov()._walk(
                model, rng, 30, start=Position(128.0, 128.0)
            )
            return [(leg.speed, leg.path.waypoints[-1]) for leg in legs]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            GaussMarkov(256.0, 256.0, alpha=1.0)
        with pytest.raises(ValueError, match="mean speed"):
            GaussMarkov(256.0, 256.0, mean_speed=0.0)
        with pytest.raises(ValueError, match="min_speed"):
            GaussMarkov(256.0, 256.0, min_speed=0.0)
        with pytest.raises(ValueError, match="edge margin"):
            GaussMarkov(100.0, 100.0, edge_margin=60.0)


class TestRandomDirection:
    def test_legs_end_on_border(self, rng):
        model = RandomDirection(200.0, 100.0)
        pos = Position(100.0, 50.0)
        for _i in range(100):
            leg = model.next_leg(pos, rng)
            end = leg.path.waypoints[-1]
            assert 0.0 <= end.x <= 200.0 and 0.0 <= end.y <= 100.0
            gap = min(end.x, 200.0 - end.x, end.y, 100.0 - end.y)
            assert gap < 1e-6
            pos = end

    def test_headings_uniform(self, rng):
        # From the centre of a square, headings bin uniformly: each of
        # 8 sectors holds n/8 +- 5 sigma of a binomial(n, 1/8).
        model = RandomDirection(100.0, 100.0)
        centre = Position(50.0, 50.0)
        n = 4000
        angles = []
        for _i in range(n):
            end = model.next_leg(centre, rng).path.waypoints[-1]
            angles.append(math.atan2(end.y - centre.y, end.x - centre.x))
        bins = np.histogram(angles, bins=8, range=(-math.pi, math.pi))[0]
        expect = n / 8.0
        tolerance = 5.0 * math.sqrt(n * (1 / 8) * (7 / 8))
        assert all(abs(count - expect) < tolerance for count in bins), bins

    def test_speed_and_pause_ranges(self, rng):
        model = RandomDirection(
            100.0, 100.0, min_speed=2.0, max_speed=3.0,
            min_pause=5.0, max_pause=6.0,
        )
        for _i in range(50):
            leg = model.next_leg(Position(50.0, 50.0), rng)
            assert 2.0 <= leg.speed < 3.0
            assert 5.0 <= leg.pause < 6.0

    def test_survives_starting_on_the_border(self, rng):
        # A corner start rejects ~half the headings; the re-draw loop
        # must still terminate with a real leg.
        model = RandomDirection(100.0, 100.0)
        for _i in range(50):
            leg = model.next_leg(Position(0.0, 0.0), rng)
            assert leg.path.length > 1e-6

    def test_same_seed_same_trajectory(self):
        model = RandomDirection(256.0, 256.0)

        def run(seed):
            rng = np.random.default_rng(seed)
            pos = Position(17.0, 203.0)
            out = []
            for _i in range(30):
                leg = model.next_leg(pos, rng)
                pos = leg.path.waypoints[-1]
                out.append((leg.speed, leg.pause, pos))
            return out

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="min_speed"):
            RandomDirection(100.0, 100.0, min_speed=0.0)
        with pytest.raises(ValueError, match="pause"):
            RandomDirection(100.0, 100.0, min_pause=10.0, max_pause=5.0)
