"""Unit tests for repro.netgraph.algorithms."""

import pytest

from repro.netgraph import (
    Graph,
    bfs_distances,
    complete_graph,
    connected_components,
    cycle_graph,
    diameter,
    eccentricity,
    largest_component,
    path_graph,
    shortest_path_length,
    star_graph,
)


class TestBfsDistances:
    def test_source_is_zero(self):
        g = path_graph(3)
        assert bfs_distances(g, 0)[0] == 0

    def test_path_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_absent(self):
        g = Graph(nodes=["a", "b"])
        assert bfs_distances(g, "a") == {"a": 0}

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            bfs_distances(Graph(), "ghost")


class TestShortestPath:
    def test_direct_edge(self):
        g = path_graph(4)
        assert shortest_path_length(g, 1, 2) == 1

    def test_across_cycle(self):
        g = cycle_graph(6)
        assert shortest_path_length(g, 0, 3) == 3

    def test_disconnected_raises(self):
        g = Graph(nodes=["a", "b"])
        with pytest.raises(ValueError, match="no path"):
            shortest_path_length(g, "a", "b")


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(complete_graph(5))) == 1

    def test_isolated_nodes_are_components(self):
        g = Graph(nodes=["a", "b", "c"], edges=[("a", "b")])
        comps = connected_components(g)
        assert len(comps) == 2
        assert comps[0] == {"a", "b"}  # largest first

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_largest_component_subgraph(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("x", "y")])
        lcc = largest_component(g)
        assert set(lcc.nodes()) == {"a", "b", "c"}
        assert lcc.edge_count == 2

    def test_largest_component_of_empty(self):
        assert largest_component(Graph()).node_count == 0


class TestDiameter:
    def test_path(self):
        assert diameter(path_graph(7)) == 6

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4

    def test_complete(self):
        assert diameter(complete_graph(10)) == 1

    def test_star(self):
        assert diameter(star_graph(6)) == 2

    def test_singleton(self):
        assert diameter(Graph(nodes=["a"])) == 0

    def test_empty(self):
        assert diameter(Graph()) == 0

    def test_disconnected_uses_largest_component(self):
        # This is the paper's convention: the diameter of a
        # disconnected LoS snapshot is that of the biggest island.
        g = Graph(edges=[("a", "b"), ("b", "c"), ("x", "y")])
        assert diameter(g) == 2

    def test_disconnected_strict_mode_raises(self):
        g = Graph(nodes=["a", "b"])
        with pytest.raises(ValueError, match="disconnected"):
            diameter(g, of_largest_component=False)

    def test_apfel_paradox(self):
        """Small range -> small components -> small diameter.

        The paper's Fig. 2(b)/(e) 'contradiction': at r=10 m Apfel's
        LCC diameter is *smaller* than at r=80 m because the land
        fragments.  Model the situation with two island cliques plus a
        long chain appearing once the range grows.
        """
        sparse = Graph(edges=[("a", "b"), ("c", "d")])  # fragments
        dense = path_graph(6)  # one long component
        assert diameter(sparse) < diameter(dense)


class TestEccentricity:
    def test_center_vs_leaf(self):
        g = path_graph(5)
        assert eccentricity(g, 2) == 2
        assert eccentricity(g, 0) == 4
