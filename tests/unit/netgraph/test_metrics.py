"""Unit tests for repro.netgraph.metrics, cross-validated vs networkx."""

import numpy as np
import pytest

from repro.netgraph import (
    Graph,
    average_clustering,
    clustering_coefficients,
    complete_graph,
    cycle_graph,
    degree_sequence,
    density,
    erdos_renyi,
    geometric_graph,
    local_clustering,
    path_graph,
    star_graph,
    triangle_count,
)

networkx = pytest.importorskip("networkx")


def _to_networkx(graph: Graph):
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


class TestKnownAnswers:
    def test_complete_graph_clustering_is_one(self):
        assert average_clustering(complete_graph(5)) == 1.0

    def test_star_clustering_is_zero(self):
        assert average_clustering(star_graph(5)) == 0.0

    def test_path_clustering_is_zero(self):
        assert average_clustering(path_graph(6)) == 0.0

    def test_triangle_with_tail(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        assert local_clustering(g, "a") == 1.0
        assert local_clustering(g, "c") == pytest.approx(1.0 / 3.0)
        assert local_clustering(g, "d") == 0.0

    def test_low_degree_contributes_zero(self):
        g = Graph(nodes=["lonely"], edges=[("a", "b")])
        assert local_clustering(g, "lonely") == 0.0
        assert local_clustering(g, "a") == 0.0

    def test_triangle_count_complete(self):
        # C(5, 3) triangles in K5.
        assert triangle_count(complete_graph(5)) == 10

    def test_triangle_count_cycle(self):
        assert triangle_count(cycle_graph(6)) == 0

    def test_density_bounds(self):
        assert density(complete_graph(6)) == 1.0
        assert density(Graph(nodes=range(6))) == 0.0
        assert density(Graph(nodes=["a"])) == 0.0

    def test_degree_sequence(self):
        assert sorted(degree_sequence(star_graph(4))) == [1, 1, 1, 1, 4]

    def test_empty_graph_average_clustering(self):
        assert average_clustering(Graph()) == 0.0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_clustering_matches_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(30, 0.15, rng)
        ours = clustering_coefficients(g)
        theirs = networkx.clustering(_to_networkx(g))
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node])

    @pytest.mark.parametrize("seed", [3, 4])
    def test_clustering_matches_on_geometric_graphs(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 100, (40, 2))
        g = geometric_graph(positions, radius=18.0)
        assert average_clustering(g) == pytest.approx(
            networkx.average_clustering(_to_networkx(g))
        )

    @pytest.mark.parametrize("seed", [5, 6])
    def test_triangles_match(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(25, 0.2, rng)
        nx_triangles = sum(networkx.triangles(_to_networkx(g)).values()) // 3
        assert triangle_count(g) == nx_triangles

    def test_geometric_graph_is_los_construction(self):
        # Two points at distance 5, one far away: one edge at r=6.
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [50.0, 50.0]])
        g = geometric_graph(pts, radius=6.0)
        assert g.edge_count == 1
        assert g.has_edge(0, 1)

    def test_geometric_graph_strict_threshold(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert geometric_graph(pts, radius=10.0).edge_count == 0

    def test_erdos_renyi_probability_extremes(self):
        rng = np.random.default_rng(0)
        assert erdos_renyi(10, 0.0, rng).edge_count == 0
        assert erdos_renyi(10, 1.0, rng).edge_count == 45

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(ValueError, match="probability"):
            erdos_renyi(5, 1.5, np.random.default_rng(0))
