"""Unit tests for repro.netgraph.graph."""

import pytest

from repro.netgraph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.node_count == 0
        assert g.edge_count == 0

    def test_from_nodes_and_edges(self):
        g = Graph(nodes=["a", "b", "c"], edges=[("a", "b")])
        assert g.node_count == 3
        assert g.edge_count == 1

    def test_edge_creates_endpoints(self):
        g = Graph(edges=[("x", "y")])
        assert "x" in g and "y" in g

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.node_count == 1

    def test_parallel_edges_merge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="self-loops"):
            g.add_edge("a", "a")


class TestQueries:
    def test_degree(self):
        g = Graph(edges=[("a", "b"), ("a", "c")])
        assert g.degree("a") == 2
        assert g.degree("b") == 1

    def test_degree_unknown_node_raises(self):
        with pytest.raises(KeyError):
            Graph().degree("ghost")

    def test_has_edge(self):
        g = Graph(edges=[("a", "b")])
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")
        assert not g.has_edge("a", "c")

    def test_has_edge_unknown_nodes_is_false(self):
        assert not Graph().has_edge("u", "v")

    def test_neighbours_returns_copy(self):
        g = Graph(edges=[("a", "b")])
        nbrs = g.neighbours("a")
        nbrs.add("z")
        assert g.neighbours("a") == {"b"}

    def test_edges_listed_once(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert len(g.edges()) == 3

    def test_iteration_and_len(self):
        g = Graph(nodes=range(5))
        assert len(g) == 5
        assert sorted(g) == [0, 1, 2, 3, 4]


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[("a", "b")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.node_count == 2

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=["a", "b"])
        with pytest.raises(KeyError):
            g.remove_edge("a", "b")

    def test_remove_node_cleans_adjacency(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        g.remove_node("b")
        assert "b" not in g
        assert g.degree("a") == 0
        assert g.degree("c") == 0

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_node("ghost")


class TestSubgraphAndCopy:
    def test_subgraph_induced(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        sub = g.subgraph(["a", "b", "c"])
        assert sub.node_count == 3
        assert sub.has_edge("a", "b") and sub.has_edge("b", "c")
        assert not sub.has_edge("c", "d")

    def test_subgraph_ignores_unknown(self):
        g = Graph(nodes=["a"])
        sub = g.subgraph(["a", "ghost"])
        assert sub.nodes() == ["a"]

    def test_copy_is_independent(self):
        g = Graph(edges=[("a", "b")])
        clone = g.copy()
        clone.add_edge("a", "c")
        assert not g.has_edge("a", "c")
        assert clone.has_edge("a", "b")

    def test_adjacency_snapshot_immutable_values(self):
        g = Graph(edges=[(1, 2)])
        adj = g.adjacency()
        assert adj[1] == frozenset({2})
