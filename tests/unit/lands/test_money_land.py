"""Tests for the money-land preset and the sitting artefact flow."""

import pytest

from repro.lands import money_land
from repro.monitors import Crawler
from repro.trace import validate_trace


class TestMoneyLand:
    @pytest.fixture(scope="class")
    def trace(self):
        world = money_land(hourly_rate=120.0).build(seed=6)
        return Crawler(tau=10.0).monitor(world, 1800.0)

    def test_campers_sit_and_report_origin(self, trace):
        # A majority population of sitting campers shows up as the SL
        # {0,0,0} artefact in the recorded trace.
        origin_records = [
            r for r in trace.records() if r.is_sitting_artifact
        ]
        assert len(origin_records) > 0
        camper_records = [r for r in origin_records if r.user.startswith("camper")]
        assert camper_records, "sitting records must come from campers"

    def test_validator_flags_money_land(self, trace):
        issues = validate_trace(trace)
        sitting = [i for i in issues if i.code == "sitting-artifact"]
        assert len(sitting) > 10

    def test_visitors_still_move_normally(self, trace):
        visitor_records = [
            r for r in trace.records()
            if r.user.startswith("visitor") and not r.is_sitting_artifact
        ]
        assert visitor_records

    def test_trip_metrics_are_distorted(self, trace):
        """The reason the paper avoided money lands: per-user travel
        becomes meaningless when most of the population reports the
        origin."""
        from repro.core import TraceAnalyzer

        analyzer = TraceAnalyzer(trace)
        lengths = analyzer.travel_lengths()
        # A large point mass at (near) zero travel from the campers.
        assert float(lengths.cdf(1.0)) > 0.3

    def test_camper_fraction_validation(self):
        with pytest.raises(ValueError, match="camper fraction"):
            money_land(camper_fraction=0.0)
        with pytest.raises(ValueError, match="camper fraction"):
            money_land(camper_fraction=1.0)
