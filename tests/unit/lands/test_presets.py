"""Unit tests for repro.lands presets and calibration data."""

import pytest

from repro.lands import (
    campus_wlan,
    scenario_presets,
    PAPER_TARGETS,
    apfel_land,
    dance_island,
    generic_land,
    isle_of_view,
    paper_presets,
)
from repro.metaverse import World


class TestCalibrationData:
    def test_three_lands_recorded(self):
        assert set(PAPER_TARGETS) == {"Apfel Land", "Dance Island", "Isle of View"}

    def test_paper_unique_user_counts(self):
        assert PAPER_TARGETS["Apfel Land"].unique_users == 1568
        assert PAPER_TARGETS["Dance Island"].unique_users == 3347
        assert PAPER_TARGETS["Isle of View"].unique_users == 2656

    def test_paper_concurrency(self):
        assert PAPER_TARGETS["Apfel Land"].mean_concurrency == 13.0
        assert PAPER_TARGETS["Dance Island"].mean_concurrency == 34.0
        assert PAPER_TARGETS["Isle of View"].mean_concurrency == 65.0

    def test_ct_ordering_matches_paper(self):
        """§4: CT medians ~30/60/100 s for Apfel/IoV/Dance at r_b."""
        ct = {name: t.ct_median_rb for name, t in PAPER_TARGETS.items()}
        assert ct["Apfel Land"] < ct["Isle of View"] < ct["Dance Island"]

    def test_ict_band_midpoint(self):
        assert PAPER_TARGETS["Dance Island"].ict_median_mid == 750.0


class TestPresets:
    @pytest.mark.parametrize("factory", [apfel_land, dance_island, isle_of_view])
    def test_preset_builds_world(self, factory):
        preset = factory()
        world = preset.build(seed=1)
        assert isinstance(world, World)
        world.run_until(60.0)

    def test_names_match_paper(self):
        presets = paper_presets()
        assert set(presets) == set(PAPER_TARGETS)
        for name, preset in presets.items():
            assert preset.name == name

    def test_isle_of_view_has_event(self):
        preset = isle_of_view()
        assert len(preset.events) == 1
        event = preset.events[0]
        assert event.name == "St. Valentine's"
        assert event.duration == 4 * 3600.0

    def test_apfel_has_builders(self):
        preset = apfel_land()
        names = {p.name for p in preset.populations}
        assert "builders" in names

    def test_dance_floor_dominates_weights(self):
        preset = dance_island()
        floor = preset.land.poi_named("dance-floor")
        assert floor.weight == max(p.weight for p in preset.land.pois)

    def test_lands_are_default_sl_size(self):
        for preset in paper_presets().values():
            assert preset.land.width == 256.0
            assert preset.land.height == 256.0

    def test_builds_are_independent(self):
        preset = dance_island()
        w1 = preset.build(seed=1)
        w2 = preset.build(seed=1)
        w1.run_until(300.0)
        assert w2.now == 0.0


class TestGenericLand:
    def test_poi_count(self):
        preset = generic_land(n_pois=6)
        assert len(preset.land.pois) == 6

    @pytest.mark.parametrize(
        "kind", ["poi", "rwp", "levy", "gauss-markov", "random-direction"]
    )
    def test_mobility_kinds(self, kind):
        preset = generic_land(mobility=kind)
        world = preset.build(seed=0)
        world.run_until(120.0)
        assert world.stats.logins > 0

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility"):
            generic_land(mobility="teleport")

    def test_deterministic_layout(self):
        a = generic_land(seed=5).land.pois
        b = generic_land(seed=5).land.pois
        assert [(p.x, p.y) for p in a] == [(p.x, p.y) for p in b]

    def test_poi_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            generic_land(n_pois=0)


class TestCampusWlan:
    def test_listed_in_scenario_presets(self):
        presets = scenario_presets()
        assert set(paper_presets()) < set(presets)
        assert "Campus WLAN" in presets

    def test_ap_deployment_shape_and_bounds(self):
        preset = campus_wlan(n_aps=300)
        assert preset.access_points.shape == (300, 2)
        assert preset.access_points.min() >= 0.0
        assert preset.access_points.max() <= 1024.0

    def test_deterministic_from_seed(self):
        import numpy as np

        a = campus_wlan(seed=5)
        b = campus_wlan(seed=5)
        c = campus_wlan(seed=6)
        assert np.array_equal(a.access_points, b.access_points)
        assert not np.array_equal(a.access_points, c.access_points)
        assert [(p.x, p.y) for p in a.land.pois] == [
            (p.x, p.y) for p in b.land.pois
        ]

    def test_three_populations(self):
        preset = campus_wlan()
        assert [p.name for p in preset.populations] == [
            "students", "strollers", "couriers",
        ]
        assert preset.attraction_probability == 0.0

    def test_world_builds_and_runs(self):
        world = campus_wlan(hourly_rate=400.0).build(seed=1)
        world.run_until(600.0)
        assert world.stats.logins > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="access point"):
            campus_wlan(n_aps=0)
        with pytest.raises(ValueError, match="hourly rate"):
            campus_wlan(hourly_rate=0.0)
