"""Unit tests for repro.monitors.association."""

import numpy as np
import pytest

from repro.metaverse import Land, Population, SessionProcess, World
from repro.mobility import RandomWaypoint
from repro.monitors import AssociationMonitor
from repro.monitors.database import TraceDatabase
from repro.trace import TraceMetadata


def _world(seed=0, rate=200.0, size=256.0):
    pop = Population(
        "devices",
        SessionProcess(hourly_rate=rate),
        RandomWaypoint(size, size),
    )
    return World(Land("Assoc", width=size, height=size), [pop], seed=seed)


def _grid_aps(n_side=4, size=256.0):
    pitch = size / n_side
    return np.array(
        [
            [(c + 0.5) * pitch, (r + 0.5) * pitch]
            for r in range(n_side)
            for c in range(n_side)
        ]
    )


class TestAssociate:
    def test_nearest_ap_wins(self):
        aps = np.array([[0.0, 0.0], [100.0, 0.0]])
        monitor = AssociationMonitor(aps, association_range=60.0)
        names, coords = monitor.associate(
            ["near-a", "near-b"],
            np.array([[10.0, 0.0, 0.0], [90.0, 5.0, 0.0]]),
        )
        assert names == ["near-a", "near-b"]
        assert coords[0].tolist() == [0.0, 0.0, 0.0]
        assert coords[1].tolist() == [100.0, 0.0, 0.0]

    def test_out_of_range_devices_absent(self):
        monitor = AssociationMonitor([[0.0, 0.0]], association_range=50.0)
        names, coords = monitor.associate(
            ["in", "out"],
            np.array([[30.0, 0.0, 0.0], [80.0, 0.0, 0.0]]),
        )
        assert names == ["in"]
        assert len(coords) == 1

    def test_equidistant_tie_breaks_to_lowest_index(self):
        aps = np.array([[0.0, 0.0], [100.0, 0.0]])
        monitor = AssociationMonitor(aps, association_range=60.0)
        names, coords = monitor.associate(
            ["mid"], np.array([[50.0, 0.0, 0.0]])
        )
        assert names == ["mid"]
        assert coords[0].tolist() == [0.0, 0.0, 0.0]

    def test_empty_snapshot(self):
        monitor = AssociationMonitor([[0.0, 0.0]])
        names, coords = monitor.associate([], np.empty((0, 3)))
        assert names == [] and coords.shape == (0, 3)

    def test_positions_drawn_from_discrete_ap_set(self):
        aps = _grid_aps()
        monitor = AssociationMonitor(aps, association_range=200.0)
        rng = np.random.default_rng(0)
        coords = np.zeros((40, 3))
        coords[:, :2] = rng.uniform(0.0, 256.0, (40, 2))
        _names, out = monitor.associate([f"u{i}" for i in range(40)], coords)
        ap_set = {tuple(p) for p in aps}
        assert all(tuple(row[:2]) in ap_set for row in out)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="tau"):
            AssociationMonitor([[0.0, 0.0]], tau=0.0)
        with pytest.raises(ValueError, match="association range"):
            AssociationMonitor([[0.0, 0.0]], association_range=0.0)
        with pytest.raises(ValueError, match="access_points"):
            AssociationMonitor(np.empty((0, 2)))
        with pytest.raises(ValueError, match="access_points"):
            AssociationMonitor(np.zeros((4, 3)))


class TestMonitoring:
    def test_end_to_end_trace_on_ap_coordinates(self):
        world = _world(seed=3)
        aps = _grid_aps()
        monitor = AssociationMonitor(aps, tau=10.0, association_range=100.0)
        trace = monitor.monitor(world, 600.0)
        assert len(trace) == 60
        ap_set = {tuple(p) for p in aps}
        for row in trace.columns.xyz:
            assert (row[0], row[1]) in ap_set
            assert row[2] == 0.0

    def test_streamed_equals_buffered(self):
        class ListSink:
            """Minimal RtrcAppender-shaped sink."""

            def __init__(self):
                self.metadata = None
                self.rows = []

            def append_snapshot(self, time, names, coords):
                self.rows.append(
                    (time, list(names), np.asarray(coords).copy())
                )

        aps = _grid_aps()
        buffered = AssociationMonitor(aps, tau=10.0).monitor(
            _world(seed=7), 400.0
        )
        sink = ListSink()
        streaming = AssociationMonitor(aps, tau=10.0, sink=sink)
        from repro.monitors.base import run_monitors

        run_monitors(_world(seed=7), [streaming], 400.0)
        assert len(sink.rows) == len(buffered)
        cols = buffered.columns
        for i, (time, names, coords) in enumerate(sink.rows):
            lo, hi = cols.snapshot_offsets[i], cols.snapshot_offsets[i + 1]
            assert time == cols.times[i]
            assert names == [cols.users.names[j] for j in cols.user_ids[lo:hi]]
            assert np.array_equal(coords, cols.xyz[lo:hi])

    def test_metadata_propagates_to_sink(self):
        class MetaSink:
            metadata = None

            def append_snapshot(self, *a):
                pass

        sink = MetaSink()
        monitor = AssociationMonitor([[0.0, 0.0]], sink=sink)
        monitor.attach(_world(seed=1))
        assert isinstance(sink.metadata, TraceMetadata)
        assert sink.metadata.source == "wlan-association"

    def test_trace_before_attach_raises(self):
        with pytest.raises(RuntimeError, match="never attached"):
            AssociationMonitor([[0.0, 0.0]]).trace()

    def test_buffering_db_used_without_sink(self):
        monitor = AssociationMonitor([[0.0, 0.0]])
        monitor.attach(_world(seed=1))
        assert isinstance(monitor._db, TraceDatabase)
