"""Coverage for the ground-truth reference monitor."""

import pytest

from repro.metaverse import Land, Population, SessionProcess, World
from repro.mobility import RandomWaypoint
from repro.monitors import GroundTruthMonitor, run_monitors


def _world(seed=0):
    pop = Population(
        "v", SessionProcess(hourly_rate=200.0), RandomWaypoint(256.0, 256.0)
    )
    return World(Land("GT"), [pop], seed=seed)


class TestGroundTruthMonitor:
    def test_samples_every_tick(self):
        world = _world()
        monitor = GroundTruthMonitor(tau=1.0)
        run_monitors(world, [monitor], 60.0)
        assert len(monitor.trace()) == 60

    def test_finer_than_crawler(self):
        from repro.monitors import Crawler

        world = _world(seed=1)
        truth = GroundTruthMonitor(tau=1.0)
        crawler = Crawler(tau=10.0)
        run_monitors(world, [truth, crawler], 120.0)
        assert len(truth.trace()) == 10 * len(crawler.trace())

    def test_metadata(self):
        world = _world(seed=2)
        monitor = GroundTruthMonitor(tau=5.0, name="oracle")
        run_monitors(world, [monitor], 30.0)
        meta = monitor.trace().metadata
        assert meta.source == "oracle"
        assert meta.tau == 5.0
        assert meta.land_name == "GT"

    def test_no_observer_avatar(self):
        # Unlike the crawler, ground truth has no in-world presence.
        world = _world(seed=3)
        monitor = GroundTruthMonitor(tau=10.0)
        monitor.attach(world)
        assert world.observer_avatars() == []
        monitor.detach(world)

    def test_trace_before_attach(self):
        with pytest.raises(RuntimeError, match="never attached"):
            GroundTruthMonitor().trace()

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            GroundTruthMonitor(tau=0.0)

    def test_run_monitors_validation(self):
        with pytest.raises(ValueError, match="positive"):
            run_monitors(_world(), [], 0.0)
