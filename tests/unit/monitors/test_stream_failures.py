"""Mid-round failures must never publish a torn round.

The streaming loop's durability story: ``stream_monitors`` hands
control back between rounds, the caller commits its
:class:`~repro.trace.RtrcAppender` there, and *only* the commit
publishes.  These tests pin what happens when a monitor blows up in
the middle of a round — readers keep seeing exactly the last committed
round, the crashed process's torn tail is truncated on reopen, and an
appender reopened after the failure resumes from the last committed
round to a store bit-for-bit equal to a never-crashed run.
"""

import numpy as np
import pytest

from repro.lands import dance_island
from repro.monitors import GroundTruthMonitor, Monitor, stream_monitors
from repro.trace import RtrcAppender, read_trace_rtrc, write_trace_rtrc
from tests.unit.core.test_sharded_equivalence import churn_trace


class ExplodingMonitor(Monitor):
    """Samples normally, then raises inside ``collect``."""

    def __init__(self, tau: float, explode_at: int) -> None:
        self.tau = float(tau)
        self.explode_at = explode_at
        self.collected = 0
        self.detached = False
        self._next = float("inf")

    def attach(self, world) -> None:
        self._next = world.now + self.tau

    def detach(self, world) -> None:
        self.detached = True
        self._next = float("inf")

    def next_sample_time(self) -> float:
        return self._next

    def collect(self, world) -> None:
        self.collected += 1
        if self.collected >= self.explode_at:
            raise RuntimeError("probe crashed mid-round")
        self._next += self.tau

    def trace(self):  # pragma: no cover - never queried
        raise NotImplementedError


def _abandon(appender: RtrcAppender) -> None:
    """Simulate a process crash after the last row write.

    Flush the OS-level file buffer and drop the handle *without*
    committing — exactly the bytes-on-disk state a killed crawler
    leaves behind: rows beyond the committed header shapes, no header
    rewrite.
    """
    appender._fh.flush()
    appender._fh.close()
    appender._fh = None


class TestStreamMonitorsMidRoundFailure:
    def test_reader_never_sees_the_torn_round(self, tmp_path):
        world = dance_island().build(seed=7, start_time=43200.0)
        path = tmp_path / "crawl.rtrc"
        sink = RtrcAppender(path)
        recorder = GroundTruthMonitor(tau=5.0, sink=sink)
        # 4 samples per 20 s round; the second monitor explodes on its
        # 6th sample — midway through round 2.
        bomb = ExplodingMonitor(tau=5.0, explode_at=6)
        committed = 0
        with pytest.raises(RuntimeError, match="mid-round"):
            for _ in stream_monitors(world, [recorder, bomb], 60.0, 20.0):
                sink.commit()
                committed = sink.committed_snapshot_count
        # Round 1 committed; round 2's partial appends are pending.
        assert committed == 4
        assert sink.snapshot_count > committed
        # A concurrent reader sees exactly the committed prefix.
        assert len(read_trace_rtrc(path)) == committed
        # Both monitors were detached by the generator's cleanup.
        assert bomb.detached
        assert recorder.next_sample_time() == float("inf")
        _abandon(sink)

    def test_crashed_tail_is_truncated_and_crawl_resumes(self, tmp_path):
        world = dance_island().build(seed=7, start_time=43200.0)
        path = tmp_path / "crash.rtrc"
        sink = RtrcAppender(path)
        recorder = GroundTruthMonitor(tau=5.0, sink=sink)
        bomb = ExplodingMonitor(tau=5.0, explode_at=6)
        with pytest.raises(RuntimeError):
            for _ in stream_monitors(world, [recorder, bomb], 60.0, 20.0):
                sink.commit()
        last_committed = sink.committed_snapshot_count
        last_time = float(read_trace_rtrc(path).columns.times[-1])
        _abandon(sink)

        reopened = RtrcAppender(path)
        # The torn rows beyond the commit point were discarded...
        assert reopened.recovered_bytes > 0
        assert reopened.snapshot_count == last_committed
        assert reopened.last_time == last_time
        # ...and the crawl resumes where the last commit left off.
        recorder2 = GroundTruthMonitor(tau=5.0, sink=reopened)
        for _ in stream_monitors(world, [recorder2], 40.0, 20.0):
            reopened.commit()
        reopened.close()
        resumed = read_trace_rtrc(path)
        assert len(resumed) == last_committed + 8
        assert np.all(np.diff(resumed.columns.times) > 0)


class TestAppenderMidRoundFailure:
    """The same contract driven directly, pinned bit-for-bit."""

    def test_resumed_store_equals_a_clean_run(self, tmp_path):
        trace = churn_trace(43)
        cols = trace.columns
        edges = np.linspace(0, cols.snapshot_count, 5).astype(int)

        def rows(index):
            a, b = cols.snapshot_offsets[index], cols.snapshot_offsets[index + 1]
            return float(cols.times[index]), cols.names_of(index), cols.xyz[a:b]

        path = tmp_path / "resume.rtrc"
        appender = RtrcAppender(path, trace.metadata)
        # Rounds 1-2 commit cleanly.
        for index in range(int(edges[2])):
            appender.append_snapshot(*rows(index))
        appender.commit()
        # Round 3 fails midway: some rows written, never committed.
        midway = int((edges[2] + edges[3]) // 2)
        for index in range(int(edges[2]), midway):
            appender.append_snapshot(*rows(index))
        _abandon(appender)

        reopened = RtrcAppender(path)
        assert reopened.recovered_bytes > 0
        assert reopened.snapshot_count == int(edges[2])
        # Replay round 3 in full, then round 4; commit per round.
        for lo, hi in zip(edges[2:-1], edges[3:]):
            for index in range(int(lo), int(hi)):
                reopened.append_snapshot(*rows(index))
            reopened.commit()
        reopened.close()

        resumed = read_trace_rtrc(path)
        oneshot = read_trace_rtrc(write_trace_rtrc(trace, tmp_path / "clean.rtrc"))
        assert np.array_equal(resumed.columns.times, oneshot.columns.times)
        assert np.array_equal(
            resumed.columns.snapshot_offsets, oneshot.columns.snapshot_offsets
        )
        assert np.array_equal(resumed.columns.user_ids, oneshot.columns.user_ids)
        assert np.array_equal(resumed.columns.xyz, oneshot.columns.xyz)
        assert resumed.columns.users.names == oneshot.columns.users.names

    def test_failed_snapshot_does_not_intern_phantom_users(self, tmp_path):
        path = tmp_path / "phantom.rtrc"
        appender = RtrcAppender(path)
        appender.append_snapshot(0.0, ["a"], [[0.0, 0.0, 0.0]])
        with pytest.raises(ValueError, match="twice"):
            appender.append_snapshot(
                10.0, ["ghost", "ghost"], [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]
            )
        appender.commit()
        appender.close()
        assert read_trace_rtrc(path).columns.users.names == ["a"]
