"""Unit tests for repro.monitors.database and repro.monitors.webserver."""

import pytest

from repro.geometry import Position
from repro.monitors import TraceDatabase, WebServer
from repro.trace import PositionRecord, Snapshot, TraceMetadata


class TestTraceDatabase:
    def test_add_record(self):
        db = TraceDatabase()
        assert db.add_record(PositionRecord(0.0, "a", 1, 2, 0))
        assert db.record_count == 1

    def test_duplicate_key_ignored(self):
        db = TraceDatabase()
        db.add_record(PositionRecord(0.0, "a", 1, 2, 0))
        assert not db.add_record(PositionRecord(0.0, "a", 9, 9, 0))
        assert db.record_count == 1
        assert db.duplicate_writes == 1
        # First write wins.
        assert db.observations_of("a")[0].x == 1.0

    def test_same_user_different_times_ok(self):
        db = TraceDatabase()
        db.add_record(PositionRecord(0.0, "a", 1, 1, 0))
        db.add_record(PositionRecord(10.0, "a", 2, 2, 0))
        assert db.record_count == 2

    def test_add_snapshot(self):
        db = TraceDatabase()
        inserted = db.add_snapshot(
            Snapshot(5.0, {"a": Position(1, 1), "b": Position(2, 2)})
        )
        assert inserted == 2
        assert db.snapshot_count == 1

    def test_empty_snapshot_keeps_timestamp(self):
        # "The land was empty at t" is data; dropping it would bias
        # mean concurrency upward on sparse lands.
        db = TraceDatabase()
        assert db.add_snapshot(Snapshot(5.0, {})) == 0
        assert db.snapshot_count == 1
        trace = db.to_trace()
        assert len(trace) == 1
        assert trace.mean_concurrency() == 0.0

    def test_users(self):
        db = TraceDatabase()
        db.add_record(PositionRecord(0.0, "a", 1, 1, 0))
        db.add_record(PositionRecord(5.0, "b", 1, 1, 0))
        assert db.users() == {"a", "b"}

    def test_observations_sorted(self):
        db = TraceDatabase()
        db.add_record(PositionRecord(10.0, "a", 2, 2, 0))
        db.add_record(PositionRecord(0.0, "a", 1, 1, 0))
        times = [r.time for r in db.observations_of("a")]
        assert times == [0.0, 10.0]

    def test_between(self):
        db = TraceDatabase()
        for t in (0.0, 10.0, 20.0, 30.0):
            db.add_record(PositionRecord(t, "a", 1, 1, 0))
        snaps = db.between(10.0, 20.0)
        assert [s.time for s in snaps] == [10.0, 20.0]

    def test_to_trace_carries_metadata(self):
        meta = TraceMetadata(land_name="L", tau=5.0)
        db = TraceDatabase(meta)
        db.add_record(PositionRecord(0.0, "a", 1, 1, 0))
        trace = db.to_trace()
        assert trace.metadata.land_name == "L"
        assert len(trace) == 1

    def test_export_rtrc(self, tmp_path):
        import numpy as np

        from repro.trace import read_trace_rtrc

        meta = TraceMetadata(land_name="L", tau=5.0)
        db = TraceDatabase(meta)
        db.add_snapshot(Snapshot(0.0, {"a": Position(1, 2, 0), "b": Position(3, 4, 0)}))
        db.add_snapshot(Snapshot(5.0, {}))  # empty snapshot is data too
        path = db.export_rtrc(tmp_path / "db.rtrc")
        loaded = read_trace_rtrc(path)
        expected = db.to_trace()
        assert loaded.metadata == meta
        assert np.array_equal(loaded.columns.times, expected.columns.times)
        assert np.array_equal(loaded.columns.xyz, expected.columns.xyz)
        assert loaded.concurrency() == [2, 0]


class TestStreamingDatabase:
    """Unbuffered mode forwards snapshots to a sink and keeps nothing."""

    def _streaming_db(self, tmp_path):
        from repro.trace import RtrcAppender

        sink = RtrcAppender(tmp_path / "stream.rtrc")
        return TraceDatabase(TraceMetadata(), sink=sink, buffer=False), sink

    def test_snapshots_flow_to_the_sink(self, tmp_path):
        db, sink = self._streaming_db(tmp_path)
        db.add_snapshot(Snapshot(0.0, {"a": Position(1, 2), "b": Position(3, 4)}))
        db.add_snapshot(Snapshot(10.0, {"a": Position(5, 6)}))
        assert db.snapshot_count == 2
        assert db.record_count == 3
        assert db.users() == {"a", "b"}
        assert sink.snapshot_count == 2
        sink.close()
        from repro.trace import read_trace_rtrc

        assert len(read_trace_rtrc(sink.path)) == 2

    def test_to_trace_points_at_the_sink(self, tmp_path):
        db, sink = self._streaming_db(tmp_path)
        with pytest.raises(ValueError, match="sink"):
            db.to_trace()
        sink.close()

    def test_per_record_writes_rejected(self, tmp_path):
        db, sink = self._streaming_db(tmp_path)
        with pytest.raises(ValueError, match="buffer"):
            db.add_record(PositionRecord(0.0, "a", 1.0, 2.0))
        sink.close()

    def test_unbuffered_without_sink_rejected(self):
        with pytest.raises(ValueError, match="sink"):
            TraceDatabase(TraceMetadata(), buffer=False)

    def test_buffered_with_sink_keeps_both(self, tmp_path):
        from repro.trace import RtrcAppender, read_trace_rtrc

        sink = RtrcAppender(tmp_path / "both.rtrc")
        db = TraceDatabase(TraceMetadata(), sink=sink)
        db.add_snapshot(Snapshot(0.0, {"a": Position(1, 2)}))
        sink.close()
        assert db.to_trace().columns.snapshot_count == 1
        assert len(read_trace_rtrc(sink.path)) == 1


class TestStreamingMonitors:
    def test_crawler_sink_streams_the_measurement(self, tmp_path):
        import numpy as np

        from repro.lands import dance_island
        from repro.monitors import Crawler
        from repro.trace import RtrcAppender, read_trace_rtrc

        preset = dance_island()
        # Two identical world realizations: one crawled buffered, one
        # streamed to disk.
        world_buffered = preset.build(seed=5, start_time=43200.0)
        trace_via_buffer = Crawler(tau=10.0).monitor(world_buffered, 120.0)

        world_streamed = preset.build(seed=5, start_time=43200.0)
        sink = RtrcAppender(tmp_path / "crawl.rtrc")
        crawler = Crawler(tau=10.0, sink=sink)
        from repro.monitors import run_monitors

        run_monitors(world_streamed, [crawler], 120.0)
        sink.close()
        streamed = read_trace_rtrc(sink.path)
        assert np.array_equal(
            streamed.columns.times, trace_via_buffer.columns.times
        )
        assert np.array_equal(
            streamed.columns.user_ids, trace_via_buffer.columns.user_ids
        )
        assert np.array_equal(streamed.columns.xyz, trace_via_buffer.columns.xyz)
        assert streamed.metadata == trace_via_buffer.metadata
        with pytest.raises(ValueError, match="sink"):
            crawler.trace()

    def test_stream_monitors_yields_between_rounds(self, tmp_path):
        from repro.lands import dance_island
        from repro.monitors import GroundTruthMonitor, stream_monitors
        from repro.trace import RtrcAppender, read_trace_rtrc

        preset = dance_island()
        world = preset.build(seed=2, start_time=43200.0)
        sink = RtrcAppender(tmp_path / "gt.rtrc")
        monitor = GroundTruthMonitor(tau=5.0, sink=sink)
        commits = []
        for now in stream_monitors(world, [monitor], 60.0, 20.0):
            sink.commit()
            commits.append(read_trace_rtrc(sink.path).columns.snapshot_count)
        sink.close()
        assert len(commits) == 3
        # Every yield exposed a strictly larger committed prefix.
        assert commits == sorted(commits) and commits[-1] == 12
        assert read_trace_rtrc(sink.path).metadata.source == "ground-truth"

    def test_stream_monitors_validates_rounds(self):
        from repro.lands import dance_island
        from repro.monitors import GroundTruthMonitor, stream_monitors

        world = dance_island().build(seed=1)
        with pytest.raises(ValueError, match="round"):
            list(stream_monitors(world, [GroundTruthMonitor()], 10.0, 0.0))


class TestWebServer:
    def test_accepts_within_budget(self):
        server = WebServer(max_requests_per_minute=2)
        assert server.try_request(0.0, 10)
        assert server.try_request(1.0, 10)
        assert server.stats.accepted_requests == 2
        assert server.stats.records_received == 20

    def test_rejects_over_budget(self):
        server = WebServer(max_requests_per_minute=2)
        server.try_request(0.0, 1)
        server.try_request(1.0, 1)
        assert not server.try_request(2.0, 1)
        assert server.stats.rejected_requests == 1

    def test_window_slides(self):
        server = WebServer(max_requests_per_minute=1)
        assert server.try_request(0.0, 1)
        assert not server.try_request(30.0, 1)
        assert server.try_request(61.0, 1)

    def test_max_records_per_request(self):
        server = WebServer(body_limit_bytes=2048)
        assert server.max_records_per_request(40) == 51
        assert server.max_records_per_request(4096) == 1  # at least one

    def test_requests_in_window_evicts_expired(self):
        # Regression: the window count used to include expired
        # timestamps — only try_request trimmed the deque, so an idle
        # server kept reporting a full window forever.
        server = WebServer(max_requests_per_minute=3)
        for t in (0.0, 1.0, 2.0):
            assert server.try_request(t, 1)
        assert server.requests_in_window(2.0) == 3
        assert server.requests_in_window(61.5) == 1  # only t=2.0 survives
        assert server.requests_in_window(120.0) == 0

    def test_requests_in_window_idle_server_frees_budget(self):
        server = WebServer(max_requests_per_minute=1)
        assert server.try_request(0.0, 1)
        assert server.requests_in_window(30.0) == 1
        # After the window slides past the only entry, the reported
        # load and the admission decision must agree.
        assert server.requests_in_window(61.0) == 0
        assert server.try_request(61.0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WebServer(max_requests_per_minute=0)
        with pytest.raises(ValueError):
            WebServer(body_limit_bytes=0)
        with pytest.raises(ValueError):
            WebServer().max_records_per_request(0)
