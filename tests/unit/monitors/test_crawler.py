"""Unit tests for repro.monitors.crawler."""

import pytest

from repro.metaverse import Land, Population, SessionProcess, World
from repro.mobility import RandomWaypoint
from repro.monitors import Crawler, GroundTruthMonitor, run_monitors
from repro.trace import validate_trace


def _world(seed=0, rate=150.0):
    pop = Population(
        "visitors",
        SessionProcess(hourly_rate=rate),
        RandomWaypoint(256.0, 256.0),
    )
    return World(Land("CrawlLand"), [pop], seed=seed)


class TestSampling:
    def test_snapshot_period(self):
        world = _world()
        trace = Crawler(tau=10.0).monitor(world, 300.0)
        times = [s.time for s in trace]
        assert len(times) == 30
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(10.0) for d in diffs)

    def test_metadata_filled(self):
        world = _world()
        trace = Crawler(tau=5.0).monitor(world, 60.0)
        assert trace.metadata.land_name == "CrawlLand"
        assert trace.metadata.tau == 5.0
        assert trace.metadata.source == "crawler-mimic"

    def test_naive_source_label(self):
        world = _world()
        trace = Crawler(tau=10.0, mimic=False).monitor(world, 60.0)
        assert trace.metadata.source == "crawler-naive"

    def test_sees_whole_population(self):
        world = _world(seed=3)
        truth = GroundTruthMonitor(tau=10.0)
        crawler = Crawler(tau=10.0)
        run_monitors(world, [truth, crawler], 1800.0)
        assert crawler.trace().unique_users() == truth.trace().unique_users()

    def test_crawler_avatar_not_in_trace(self):
        world = _world(seed=4)
        crawler = Crawler(tau=10.0, name="the-crawler")
        trace = crawler.monitor(world, 300.0)
        assert "the-crawler" not in trace.unique_users()

    def test_trace_before_attach_raises(self):
        with pytest.raises(RuntimeError, match="never attached"):
            Crawler().trace()


class TestMimicry:
    def test_mimic_crawler_chats(self):
        world = _world(seed=5)
        crawler = Crawler(tau=10.0, mimic=True, chat_interval=60.0)
        crawler.monitor(world, 600.0)
        assert len(world.chat) > 0
        assert world.chat.spoken_recently("crawler", now=world.now, window=600.0)

    def test_naive_crawler_is_silent(self):
        world = _world(seed=5)
        crawler = Crawler(tau=10.0, mimic=False)
        crawler.monitor(world, 600.0)
        assert len(world.chat) == 0

    def test_naive_crawler_perturbs_world(self):
        world = _world(seed=6)
        world.attraction_probability = 0.05
        Crawler(tau=10.0, mimic=False).monitor(world, 1800.0)
        assert world.stats.attraction_redirects > 0

    def test_mimic_crawler_does_not_perturb(self):
        world = _world(seed=6)
        world.attraction_probability = 0.05
        Crawler(tau=10.0, mimic=True).monitor(world, 1800.0)
        assert world.stats.attraction_redirects == 0


class TestInstability:
    def test_crashes_create_sampling_gaps(self):
        world = _world(seed=7)
        crawler = Crawler(tau=10.0, crash_probability=0.1, restart_delay=120.0, seed=1)
        trace = crawler.monitor(world, 2 * 3600.0)
        assert crawler.crashes > 0
        issues = validate_trace(trace)
        assert any(i.code == "sampling-gap" for i in issues)

    def test_stable_crawler_has_clean_trace(self):
        world = _world(seed=8)
        trace = Crawler(tau=10.0, crash_probability=0.0).monitor(world, 1800.0)
        assert not any(i.code == "sampling-gap" for i in validate_trace(trace))

    def test_detach_is_clean(self):
        world = _world(seed=9)
        crawler = Crawler(tau=10.0)
        crawler.monitor(world, 60.0)
        assert world.observer_avatars() == []
        # The world can keep running after the crawler left.
        world.run_until(world.now + 60.0)


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            Crawler(tau=0.0)
        with pytest.raises(ValueError):
            Crawler(crash_probability=1.5)
        with pytest.raises(ValueError):
            Crawler(restart_delay=0.0)
        with pytest.raises(ValueError):
            Crawler(chat_interval=0.0)
