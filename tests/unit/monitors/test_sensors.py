"""Unit tests for repro.monitors.sensors."""

import pytest

from repro.geometry import Position
from repro.metaverse import AccessPolicy, Land, Population, SessionProcess, World
from repro.mobility import PointOfInterest, RandomWaypoint, StaticModel
from repro.monitors import GroundTruthMonitor, SensorNetwork, WebServer, run_monitors
from repro.monitors.sensors import (
    PathLossModel,
    CACHE_BYTES,
    MAX_DETECTIONS,
    RECORD_BYTES,
    SENSING_RANGE,
    VirtualSensor,
)
from repro.metaverse.objects import DeploymentError


def _world(seed=0, rate=150.0, land=None):
    pop = Population(
        "visitors",
        SessionProcess(hourly_rate=rate),
        RandomWaypoint(256.0, 256.0),
    )
    return World(land or Land("SensorLand"), [pop], seed=seed)


def _crowded_world(seed=0, n=40):
    """Everyone packed into one spot: saturates a single sensor."""
    poi = PointOfInterest("spot", 128.0, 128.0, radius=5.0, weight=1.0, spawn_weight=1.0)
    land = Land("Crowded", pois=[poi])
    pop = Population(
        "campers",
        SessionProcess(hourly_rate=600.0),
        StaticModel(256.0, 256.0, region=(128.0, 128.0, 5.0)),
    )
    return World(land, [pop], seed=seed)


class TestDeployment:
    def test_grid_covers_land(self):
        world = _world()
        sensors = SensorNetwork(tau=10.0, spacing=96.0)
        sensors.attach(world)
        assert len(sensors.sensors) == 9  # ceil(256/96)^2
        assert sensors.coverage_fraction(256.0, 256.0) == pytest.approx(1.0)

    def test_sparse_grid_leaves_gaps(self):
        world = _world()
        sensors = SensorNetwork(tau=10.0, spacing=220.0)
        sensors.attach(world)
        assert sensors.coverage_fraction(256.0, 256.0) < 1.0

    def test_private_land_refuses_sensors(self):
        land = Land("Private", policy=AccessPolicy.PRIVATE)
        world = _world(land=land)
        sensors = SensorNetwork(tau=10.0)
        with pytest.raises(DeploymentError, match="private"):
            sensors.attach(world)

    def test_trace_before_attach_raises(self):
        with pytest.raises(RuntimeError, match="never attached"):
            SensorNetwork().trace()


class TestScanLimits:
    def test_detection_cap(self):
        world = _crowded_world(seed=1)
        world.run_until(1800.0)
        sensor = VirtualSensor("s", Position(128.0, 128.0), created_at=0.0)
        assert world.online_count > MAX_DETECTIONS
        records = sensor.scan(world)
        assert len(records) == MAX_DETECTIONS

    def test_scan_prefers_nearest(self):
        world = _world(seed=2)
        world.run_until(600.0)
        sensor = VirtualSensor("s", Position(128.0, 128.0), created_at=0.0)
        records = sensor.scan(world)
        distances = [
            ((r.x - 128.0) ** 2 + (r.y - 128.0) ** 2) ** 0.5 for r in records
        ]
        assert distances == sorted(distances)
        assert all(d <= SENSING_RANGE for d in distances)

    def test_cache_capacity(self):
        sensor = VirtualSensor("s", Position(0, 0), created_at=0.0)
        assert sensor.cache_capacity == CACHE_BYTES // RECORD_BYTES

    def test_cache_overflow_drops(self):
        from repro.trace import PositionRecord

        sensor = VirtualSensor("s", Position(0, 0), created_at=0.0)
        batch = [PositionRecord(0.0, f"u{i}", 1, 1, 0) for i in range(sensor.cache_capacity + 50)]
        sensor.store(batch)
        assert len(sensor.cache) == sensor.cache_capacity
        assert sensor.dropped_records == 50


class TestDataPath:
    def test_partial_trace_vs_ground_truth(self):
        world = _crowded_world(seed=3)
        truth = GroundTruthMonitor(tau=10.0)
        sensors = SensorNetwork(tau=10.0)
        run_monitors(world, [truth, sensors], 1800.0)
        true_records = sum(len(s) for s in truth.trace())
        sensed_records = sum(len(s) for s in sensors.trace())
        # The 16-avatar cap guarantees the sensors miss data here.
        assert sensed_records < true_records

    def test_throttled_webserver_loses_data(self):
        world = _crowded_world(seed=4)
        strangled = SensorNetwork(
            tau=10.0, webserver=WebServer(max_requests_per_minute=1)
        )
        open_pipe = SensorNetwork(tau=10.0, webserver=WebServer(max_requests_per_minute=600))
        world2 = _crowded_world(seed=4)
        run_monitors(world, [strangled], 3600.0)
        run_monitors(world2, [open_pipe], 3600.0)
        assert strangled.trace().records() != []
        assert len(strangled.trace().records()) < len(open_pipe.trace().records())

    def test_expiry_and_replication(self):
        land = Land("Pub", policy=AccessPolicy.PUBLIC, object_lifetime=300.0)
        world = _world(seed=5, land=land)
        sensors = SensorNetwork(tau=10.0, replication_interval=600.0)
        sensors.attach(world)
        created_at = sensors.sensors[0].created_at
        world.run_until(700.0)
        sensors.collect(world)  # triggers replication at t>=600
        assert sensors.sensors[0].created_at > created_at

    def test_no_expiry_on_sandbox(self):
        land = Land("Sand", policy=AccessPolicy.SANDBOX, object_lifetime=300.0)
        world = _world(seed=6, land=land)
        sensors = SensorNetwork(tau=10.0)
        sensors.attach(world)
        world.run_until(1000.0)
        sensors.collect(world)
        assert not sensors._is_expired(sensors.sensors[0], world.now)

    def test_detach_flushes(self):
        world = _world(seed=7)
        sensors = SensorNetwork(tau=10.0)
        sensors.attach(world)
        world.run_until(100.0)
        sensors.collect(world)
        cached = sum(len(s.cache) for s in sensors.sensors)
        sensors.detach(world)
        assert sum(len(s.cache) for s in sensors.sensors) == 0
        if cached:
            assert sensors.trace().records()

    def test_duplicate_observations_deduped(self):
        # Overlapping sensors see the same avatar; the database keeps
        # one row per (time, user).
        world = _crowded_world(seed=8)
        sensors = SensorNetwork(tau=10.0, spacing=40.0)  # heavy overlap
        run_monitors(world, [sensors], 600.0)
        trace = sensors.trace()
        for snapshot in trace:
            assert len(snapshot.users) == len(snapshot)


class TestValidation:
    def test_parameter_checks(self):
        with pytest.raises(ValueError):
            SensorNetwork(tau=0.0)
        with pytest.raises(ValueError):
            SensorNetwork(spacing=0.0)
        with pytest.raises(ValueError):
            SensorNetwork(replication_interval=0.0)


class TestPathLossModel:
    def test_probability_non_increasing_in_distance(self):
        channel = PathLossModel()
        distances = [0.1 * k for k in range(1, 4000)]
        probs = [channel.detection_probability(d) for d in distances]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_half_power_at_reference_range(self):
        channel = PathLossModel(reference_range=96.0)
        assert channel.detection_probability(96.0) == pytest.approx(0.5)
        assert channel.detection_probability(0.0) == 1.0

    def test_zero_sigma_degenerates_to_hard_radius(self):
        channel = PathLossModel(shadowing_sigma=0.0)
        assert channel.detection_probability(SENSING_RANGE) == 1.0
        assert channel.detection_probability(SENSING_RANGE + 1e-9) == 0.0
        assert channel.cutoff_range == SENSING_RANGE

    def test_cutoff_range_bounds_the_floor(self):
        channel = PathLossModel(floor=1e-3)
        just_in = channel.detection_probability(channel.cutoff_range * 0.99)
        beyond = channel.detection_probability(channel.cutoff_range * 1.01)
        assert just_in >= channel.floor
        assert beyond == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="reference range"):
            PathLossModel(reference_range=0.0)
        with pytest.raises(ValueError, match="exponent"):
            PathLossModel(exponent=-1.0)
        with pytest.raises(ValueError, match="sigma"):
            PathLossModel(shadowing_sigma=-1.0)
        with pytest.raises(ValueError, match="floor"):
            PathLossModel(floor=0.7)


class TestPathLossScans:
    def test_degenerate_channel_scan_matches_hard_radius(self):
        world = _world(seed=4)
        world.run_until(600.0)
        sensor = VirtualSensor("s", Position(128.0, 128.0), 0.0)
        hard = sensor.scan(world)
        degenerate = sensor.scan(world, PathLossModel(shadowing_sigma=0.0))
        assert degenerate == hard

    def test_probabilistic_channel_requires_rng(self):
        world = _world(seed=4)
        world.run_until(600.0)
        sensor = VirtualSensor("s", Position(128.0, 128.0), 0.0)
        if not world.snapshot_positions():
            pytest.skip("empty world realization")
        with pytest.raises(ValueError, match="rng"):
            sensor.scan(world, PathLossModel(shadowing_sigma=8.0))

    def test_lossy_scan_is_subset_semantics(self):
        # A lossy scan only ever reports avatars a clairvoyant
        # (cutoff-range) scan could see, and detects fewer on average
        # inside the old hard radius.
        import numpy as np

        world = _crowded_world(seed=1)
        world.run_until(900.0)
        sensor = VirtualSensor("s", Position(128.0, 128.0), 0.0)
        channel = PathLossModel(shadowing_sigma=8.0)
        rng = np.random.default_rng(0)
        hard_users = {r.user for r in sensor.scan(world)}
        lossy_users = {r.user for r in sensor.scan(world, channel, rng)}
        # The crowd sits within metres of the sensor, so every lossy
        # detection is also a hard-radius detection (before the cap).
        assert lossy_users <= hard_users or len(hard_users) == MAX_DETECTIONS

    def test_network_trace_reproducible_under_seed(self):
        import numpy as np

        def run():
            world = _world(seed=9)
            network = SensorNetwork(
                tau=10.0,
                channel=PathLossModel(shadowing_sigma=6.0),
                seed=5,
            )
            return network.monitor(world, 600.0)

        a, b = run(), run()
        assert np.array_equal(a.columns.times, b.columns.times)
        assert np.array_equal(a.columns.xyz, b.columns.xyz)
        assert list(a.columns.users.names) == list(b.columns.users.names)
