"""Compiled bytecode must never be committed under ``src/``.

Running ``PYTHONPATH=src pytest`` legitimately litters the working
tree with ``__pycache__`` directories, so the filesystem is the wrong
thing to police — the failure mode is a ``.pyc`` making it into the
*git index* (as ``src/repro/__pycache__/cli.cpython-311.pyc`` once
did).  This is the local twin of the CI lint-job gate: it asks git
what is tracked and skips cleanly where git is unavailable.
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _tracked_files() -> list[str]:
    result = subprocess.run(
        ["git", "ls-files", "--", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=30,
    )
    if result.returncode != 0:
        pytest.skip("not a git checkout — nothing to police")
    return result.stdout.splitlines()


def test_no_bytecode_tracked_under_src():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert offenders == [], f"compiled bytecode tracked under src/: {offenders}"


def test_gitignore_covers_bytecode():
    # The guard above stops tracked bytecode; this keeps the ignore
    # rules that prevent it from being staged in the first place.
    ignore = (REPO_ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in ignore
    assert "*.pyc" in ignore
