"""Unit tests for repro.stats.ecdf."""

import numpy as np
import pytest

from repro.stats import ECDF, ccdf_points, ecdf_points


class TestConstruction:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ECDF([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ECDF([1.0, float("nan")])

    def test_accepts_generators(self):
        e = ECDF(x for x in [3, 1, 2])
        assert e.n == 3

    def test_min_max(self):
        e = ECDF([5, 1, 9])
        assert e.min == 1 and e.max == 9


class TestCdf:
    def test_below_min_is_zero(self):
        assert ECDF([1, 2, 3]).cdf(0.5) == 0.0

    def test_at_max_is_one(self):
        assert ECDF([1, 2, 3]).cdf(3) == 1.0

    def test_right_continuity(self):
        e = ECDF([1, 2, 3, 4])
        assert e.cdf(2) == 0.5  # P[X <= 2]
        assert e.cdf(1.999) == 0.25

    def test_vectorized(self):
        e = ECDF([1, 2, 3, 4])
        np.testing.assert_allclose(e.cdf(np.array([0, 2, 10])), [0.0, 0.5, 1.0])

    def test_callable(self):
        e = ECDF([1, 2])
        assert e(1) == 0.5

    def test_with_duplicates(self):
        e = ECDF([1, 1, 1, 5])
        assert e.cdf(1) == 0.75


class TestCcdf:
    def test_complement(self):
        e = ECDF([1, 2, 3, 4])
        x = np.array([0.5, 1.5, 2.5, 3.5, 4.5])
        np.testing.assert_allclose(np.asarray(e.ccdf(x)) + np.asarray(e.cdf(x)), 1.0)

    def test_survival_at(self):
        e = ECDF([10, 20, 30, 40])
        assert e.survival_at(20) == 0.5


class TestQuantiles:
    def test_median_odd(self):
        assert ECDF([1, 2, 3]).median == 2

    def test_median_even_lower_convention(self):
        assert ECDF([1, 2, 3, 4]).median == 2

    def test_extremes(self):
        e = ECDF([3, 1, 4, 1, 5])
        assert e.quantile(0.0) == 1
        assert e.quantile(1.0) == 5

    def test_p90(self):
        values = list(range(1, 101))
        assert ECDF(values).quantile(0.9) == 90

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            ECDF([1]).quantile(1.5)

    def test_quantile_inverts_cdf(self):
        rng = np.random.default_rng(0)
        e = ECDF(rng.exponential(10.0, 500))
        for q in (0.1, 0.5, 0.9):
            v = e.quantile(q)
            assert e.cdf(v) >= q
            # The next-smaller sample sits below q.
            assert e.cdf(v - 1e-9) < q + 1.0 / e.n


class TestSteps:
    def test_steps_monotonic(self):
        rng = np.random.default_rng(1)
        xs, heights = ECDF(rng.normal(size=200)).steps()
        assert np.all(np.diff(xs) > 0)
        assert np.all(np.diff(heights) > 0)
        assert heights[-1] == pytest.approx(1.0)

    def test_ccdf_steps_start_at_one(self):
        xs, heights = ECDF([5, 6, 7]).ccdf_steps()
        assert heights[0] == 1.0
        assert np.all(np.diff(heights) < 0)

    def test_ccdf_steps_are_p_x_geq(self):
        xs, heights = ECDF([1, 2, 2, 3]).ccdf_steps()
        # P[X >= 2] = 3/4 at x = 2.
        assert heights[list(xs).index(2)] == 0.75

    def test_helper_functions(self):
        xs1, h1 = ecdf_points([1, 2, 3])
        xs2, h2 = ccdf_points([1, 2, 3])
        assert list(xs1) == list(xs2)
        assert h1[-1] == 1.0 and h2[0] == 1.0
