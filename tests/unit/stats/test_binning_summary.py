"""Unit tests for repro.stats.binning and repro.stats.summary."""

import numpy as np
import pytest

from repro.stats import linear_bins, log_binned_histogram, log_bins, summarize
from repro.stats.summary import Summary


class TestLinearBins:
    def test_edges(self):
        edges = linear_bins(0.0, 10.0, 5)
        assert len(edges) == 6
        assert edges[0] == 0.0 and edges[-1] == 10.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            linear_bins(0.0, 10.0, 0)
        with pytest.raises(ValueError):
            linear_bins(10.0, 0.0, 5)


class TestLogBins:
    def test_spans_range(self):
        edges = log_bins(1.0, 1000.0, per_decade=5)
        assert edges[0] == pytest.approx(1.0)
        assert edges[-1] == pytest.approx(1000.0)

    def test_per_decade_resolution(self):
        edges = log_bins(1.0, 100.0, per_decade=10)
        assert len(edges) == 21  # 2 decades * 10 + 1

    def test_log_spacing(self):
        edges = log_bins(1.0, 10000.0, per_decade=4)
        ratios = edges[1:-1] / edges[:-2]
        assert np.allclose(ratios, ratios[0], rtol=1e-6)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log_bins(0.0, 10.0)
        with pytest.raises(ValueError):
            log_bins(-1.0, 10.0)


class TestLogBinnedHistogram:
    def test_density_normalized(self):
        rng = np.random.default_rng(0)
        sample = rng.lognormal(2.0, 1.0, 5000)
        centers, density = log_binned_histogram(sample)
        edges = log_bins(sample.min(), sample.max())
        widths = np.diff(edges)
        assert float(np.sum(density * widths)) == pytest.approx(1.0, rel=1e-6)

    def test_power_law_is_straight_on_loglog(self):
        rng = np.random.default_rng(1)
        alpha = 2.0
        sample = (1.0 - rng.random(200000)) ** (-1.0 / (alpha - 1.0))
        sample = sample[sample < 1e4]
        centers, density = log_binned_histogram(sample, per_decade=4)
        keep = density > 0
        slope = np.polyfit(np.log10(centers[keep]), np.log10(density[keep]), 1)[0]
        assert slope == pytest.approx(-alpha, abs=0.25)

    def test_degenerate_sample(self):
        centers, density = log_binned_histogram([7.0, 7.0])
        assert list(centers) == [7.0]

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError, match="positive"):
            log_binned_histogram([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            log_binned_histogram([])


class TestSummary:
    def test_known_values(self):
        s = summarize(range(1, 101))
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.median == pytest.approx(50.5)
        assert s.p90 == pytest.approx(90.1)
        assert s.minimum == 1 and s.maximum == 100

    def test_row_keys(self):
        row = summarize([1.0, 2.0]).row()
        assert set(row) == {
            "n", "mean", "std", "min", "p10", "p25",
            "median", "p75", "p90", "p99", "max",
        }

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_is_frozen(self):
        s = summarize([1.0])
        with pytest.raises(AttributeError):
            s.mean = 5.0
        assert isinstance(s, Summary)
