"""Unit tests for repro.stats.distributions."""

import numpy as np
import pytest

from repro.stats import (
    BoundedPareto,
    Exponential,
    LogNormal,
    TruncatedParetoExp,
    Uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestUniform:
    def test_bounds(self, rng):
        law = Uniform(2.0, 5.0)
        draws = law.sample(rng, 1000)
        assert draws.min() >= 2.0 and draws.max() < 5.0

    def test_mean(self):
        assert Uniform(0.0, 10.0).mean == 5.0

    def test_scalar_draw(self, rng):
        assert isinstance(Uniform(0, 1).sample(rng), float)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 5.0)


class TestExponential:
    def test_mean(self, rng):
        law = Exponential(rate=0.1)
        assert law.mean == 10.0
        draws = law.sample(rng, 20000)
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_positive(self, rng):
        assert (Exponential(2.0).sample(rng, 100) >= 0).all()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestLogNormal:
    def test_cap_enforced(self, rng):
        law = LogNormal(mu=np.log(1000.0), sigma=1.5, cap=2000.0)
        draws = law.sample(rng, 5000)
        assert draws.max() <= 2000.0

    def test_cap_resamples_not_clips(self, rng):
        # Clipping would pile mass exactly at the cap.
        law = LogNormal(mu=np.log(1000.0), sigma=1.5, cap=2000.0)
        draws = law.sample(rng, 5000)
        assert (draws == 2000.0).sum() == 0

    def test_scalar_draw_respects_cap(self, rng):
        law = LogNormal(mu=np.log(100.0), sigma=2.0, cap=150.0)
        assert all(law.sample(rng) <= 150.0 for _ in range(200))

    def test_uncapped_mean(self):
        law = LogNormal(mu=0.0, sigma=1.0)
        assert law.uncapped_mean == pytest.approx(np.exp(0.5))

    def test_session_shape(self, rng):
        # The paper: 90 % of sessions < 1 h, max ~4 h.  The default
        # session law in repro.metaverse.sessions must satisfy this.
        from repro.metaverse.sessions import MAX_SESSION_SECONDS, SessionProcess

        law = SessionProcess(hourly_rate=10.0).session_law
        draws = law.sample(rng, 20000)
        assert np.quantile(draws, 0.9) < 3600.0
        assert draws.max() <= MAX_SESSION_SECONDS

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormal(mu=0.0, sigma=0.0)


class TestBoundedPareto:
    def test_bounds(self, rng):
        law = BoundedPareto(alpha=1.5, low=10.0, high=500.0)
        draws = law.sample(rng, 5000)
        assert draws.min() >= 10.0 and draws.max() <= 500.0

    def test_heavy_tail_ordering(self, rng):
        # Smaller alpha -> heavier tail -> larger p99.
        light = BoundedPareto(alpha=3.0, low=1.0, high=10000.0).sample(rng, 20000)
        heavy = BoundedPareto(alpha=1.2, low=1.0, high=10000.0).sample(rng, 20000)
        assert np.quantile(heavy, 0.99) > np.quantile(light, 0.99)

    def test_alpha_one_special_case(self, rng):
        law = BoundedPareto(alpha=1.0, low=1.0, high=100.0)
        draws = law.sample(rng, 5000)
        assert draws.min() >= 1.0 and draws.max() <= 100.0
        # Log-uniform: median is the geometric mean of the bounds.
        assert np.median(draws) == pytest.approx(10.0, rel=0.15)

    def test_mean_matches_empirical(self, rng):
        for alpha in (0.8, 1.0, 1.5, 2.0, 2.5):
            law = BoundedPareto(alpha=alpha, low=5.0, high=300.0)
            draws = law.sample(rng, 100000)
            assert law.mean == pytest.approx(np.mean(draws), rel=0.03), f"alpha={alpha}"

    def test_scalar_draw(self, rng):
        assert isinstance(BoundedPareto(2.0, 1.0, 10.0).sample(rng), float)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=-1.0, low=1.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=0.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=5.0, high=5.0)


class TestTruncatedParetoExp:
    def test_bounds(self, rng):
        law = TruncatedParetoExp(alpha=1.4, rate=1.0 / 500.0, low=10.0, high=3000.0)
        draws = law.sample(rng, 5000)
        assert draws.min() >= 10.0 and draws.max() <= 3000.0

    def test_cutoff_thins_tail(self, rng):
        pure = BoundedPareto(alpha=1.4, low=10.0, high=3000.0).sample(rng, 30000)
        cut = TruncatedParetoExp(
            alpha=1.4, rate=1.0 / 200.0, low=10.0, high=3000.0
        ).sample(rng, 30000)
        # The exponential cut-off must suppress the far tail.
        assert np.quantile(cut, 0.99) < np.quantile(pure, 0.99)

    def test_scalar_draw(self, rng):
        law = TruncatedParetoExp(alpha=1.4, rate=0.01, low=1.0, high=100.0)
        assert isinstance(law.sample(rng), float)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedParetoExp(alpha=1.4, rate=0.0, low=1.0, high=10.0)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        law = BoundedPareto(alpha=1.5, low=1.0, high=100.0)
        a = law.sample(np.random.default_rng(7), 50)
        b = law.sample(np.random.default_rng(7), 50)
        np.testing.assert_array_equal(a, b)
