"""Unit tests for repro.stats.fitting."""

import numpy as np
import pytest

from repro.stats import (
    compare_fits,
    fit_exponential,
    fit_lognormal,
    fit_power_law,
    fit_truncated_power_law,
    ks_distance,
)


@pytest.fixture
def rng():
    return np.random.default_rng(2008)


class TestExponentialFit:
    def test_recovers_rate(self, rng):
        sample = rng.exponential(50.0, 4000)
        fit = fit_exponential(sample, xmin=0.0)
        assert fit.params["rate"] == pytest.approx(1.0 / 50.0, rel=0.05)

    def test_cdf_shape(self, rng):
        fit = fit_exponential(rng.exponential(10.0, 1000), xmin=0.0)
        assert fit.cdf(np.array([-1.0]))[0] == 0.0
        assert float(fit.cdf(np.array([1e9]))[0]) == pytest.approx(1.0)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            fit_exponential([5.0, 5.0, 5.0], xmin=5.0)


class TestPowerLawFit:
    def test_recovers_alpha(self, rng):
        alpha = 2.5
        xmin = 1.0
        sample = xmin * (1.0 - rng.random(6000)) ** (-1.0 / (alpha - 1.0))
        fit = fit_power_law(sample, xmin=xmin)
        assert fit.params["alpha"] == pytest.approx(alpha, rel=0.05)

    def test_needs_positive_xmin(self):
        with pytest.raises(ValueError, match="positive"):
            fit_power_law([1.0, 2.0], xmin=0.0)

    def test_small_tail_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_power_law([1.0], xmin=0.5)


class TestLognormalFit:
    def test_recovers_parameters(self, rng):
        sample = rng.lognormal(3.0, 0.7, 5000)
        fit = fit_lognormal(sample, xmin=float(sample.min()))
        assert fit.params["mu"] == pytest.approx(3.0, abs=0.1)
        assert fit.params["sigma"] == pytest.approx(0.7, abs=0.1)


class TestTruncatedPowerLawFit:
    def test_recovers_shape_on_synthetic_data(self, rng):
        from repro.stats import TruncatedParetoExp

        law = TruncatedParetoExp(alpha=1.3, rate=1.0 / 300.0, low=10.0, high=50000.0)
        sample = law.sample(rng, 4000)
        fit = fit_truncated_power_law(sample, xmin=10.0)
        assert fit.params["alpha"] == pytest.approx(1.3, abs=0.25)
        assert fit.params["rate"] == pytest.approx(1.0 / 300.0, rel=0.5)

    def test_cdf_monotone(self, rng):
        from repro.stats import TruncatedParetoExp

        law = TruncatedParetoExp(alpha=1.5, rate=0.01, low=5.0, high=2000.0)
        fit = fit_truncated_power_law(law.sample(rng, 1000), xmin=5.0)
        xs = np.linspace(5.0, 2000.0, 20)
        cdf = fit.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert cdf[0] >= 0.0 and cdf[-1] <= 1.0 + 1e-9


class TestModelComparison:
    def test_truncated_power_law_wins_on_its_own_data(self, rng):
        """The paper's shape claim, as a model-selection statement."""
        from repro.stats import TruncatedParetoExp

        law = TruncatedParetoExp(alpha=1.4, rate=1.0 / 400.0, low=10.0, high=100000.0)
        sample = law.sample(rng, 3000)
        results = compare_fits(
            sample, xmin=10.0, models=("power_law", "exponential", "truncated_power_law")
        )
        assert results[0].model == "truncated_power_law"

    def test_exponential_wins_on_exponential_data(self, rng):
        sample = 10.0 + rng.exponential(30.0, 3000)
        results = compare_fits(sample, xmin=10.0, models=("power_law", "exponential"))
        assert results[0].model == "exponential"

    def test_sorted_by_aic(self, rng):
        sample = rng.lognormal(2.0, 1.0, 500) + 1.0
        results = compare_fits(sample)
        aics = [fit.aic for fit in results]
        assert aics == sorted(aics)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown models"):
            compare_fits([1.0, 2.0, 3.0], models=("gamma",))


class TestKsDistance:
    def test_zero_for_own_ecdf_limit(self, rng):
        sample = np.sort(rng.random(2000))

        def uniform_cdf(x):
            return np.clip(x, 0.0, 1.0)

        assert ks_distance(sample, uniform_cdf) < 0.05

    def test_large_for_wrong_model(self, rng):
        sample = rng.exponential(100.0, 1000)

        def uniform_cdf(x):
            return np.clip(np.asarray(x) / 10.0, 0.0, 1.0)

        assert ks_distance(sample, uniform_cdf) > 0.5

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ks_distance([], lambda x: x)

    def test_fit_result_ks_helper(self, rng):
        sample = rng.exponential(20.0, 1500)
        fit = fit_exponential(sample, xmin=0.0)
        assert fit.ks(sample) < 0.05


class TestFitResult:
    def test_aic_penalizes_parameters(self, rng):
        sample = 5.0 + rng.exponential(50.0, 2000)
        exp_fit = fit_exponential(sample, xmin=5.0)
        assert exp_fit.aic == pytest.approx(2 * 1 - 2 * exp_fit.log_likelihood)

    def test_n_params(self, rng):
        sample = 5.0 + rng.exponential(50.0, 500)
        assert fit_exponential(sample, xmin=5.0).n_params == 1
        assert fit_truncated_power_law(sample, xmin=5.0).n_params == 2
