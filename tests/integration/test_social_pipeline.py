"""Integration: the §5 relation graph over the three target lands."""

import pytest

from repro.core import BLUETOOTH_RANGE
from repro.experiments import ExperimentConfig, analyzer_for, clear_cache
from repro.lands import paper_presets
from repro.social import (
    acquaintance_summary,
    build_relation_graph,
    strength_frequency_correlation,
)

CONFIG = ExperimentConfig(duration=2700.0, every=30, start_hour=13, spinup=1500.0)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="module")
def relation_graphs():
    graphs = {}
    for land in paper_presets():
        contacts = analyzer_for(land, CONFIG).contacts(BLUETOOTH_RANGE)
        graphs[land] = build_relation_graph(contacts)
    return graphs


class TestRelationGraphsAcrossLands:
    def test_every_land_forms_relationships(self, relation_graphs):
        for land, relations in relation_graphs.items():
            assert len(relations) > 0, land
            assert relations.user_count > 2, land

    def test_strength_scales_with_contact_culture(self, relation_graphs):
        """Lands with longer contacts breed stronger ties."""
        summaries = {
            land: acquaintance_summary(relations)["strength_s"].median
            for land, relations in relation_graphs.items()
        }
        assert summaries["Apfel Land"] <= summaries["Dance Island"]

    def test_frequency_strength_positive(self, relation_graphs):
        for land, relations in relation_graphs.items():
            if len(relations) >= 10:
                assert strength_frequency_correlation(relations) > 0.0, land

    def test_busy_lands_have_more_relationships(self, relation_graphs):
        assert len(relation_graphs["Apfel Land"]) < len(relation_graphs["Dance Island"])
        assert len(relation_graphs["Apfel Land"]) < len(relation_graphs["Isle of View"])

    def test_acquaintance_threshold_monotone(self):
        contacts = analyzer_for("Dance Island", CONFIG).contacts(BLUETOOTH_RANGE)
        sizes = [
            len(build_relation_graph(contacts, min_encounters=k))
            for k in (1, 2, 3)
        ]
        assert sizes[0] >= sizes[1] >= sizes[2]
