"""Integration tests for the §2 methodology findings.

The paper's architecture story — sensors are limited, a naive crawler
perturbs the world, mimicry fixes it — must be reproducible as
*measurable* differences, not just code paths.
"""

import numpy as np
import pytest

from repro.dtn import DirectDelivery, Epidemic, compare_protocols, uniform_workload
from repro.core import BLUETOOTH_RANGE, TraceAnalyzer
from repro.geometry import distance, Position
from repro.lands import dance_island, generic_land
from repro.metaverse import AccessPolicy, Land
from repro.monitors import (
    Crawler,
    GroundTruthMonitor,
    SensorNetwork,
    WebServer,
    run_monitors,
)


class TestCrawlerPerturbation:
    """§2: 'a steady convergence of user movements towards our crawler'."""

    @staticmethod
    def _mean_distance_to_center(mimic: bool) -> tuple[float, int]:
        preset = generic_land(n_pois=5, hourly_rate=100.0, seed=21)
        world = preset.build(seed=42)
        world.attraction_probability = 0.02
        crawler = Crawler(tau=10.0, mimic=mimic)
        trace = crawler.monitor(world, 3600.0)
        center = Position(world.land.width / 2.0, world.land.height / 2.0)
        dists = [
            distance(pos, center)
            for snap in trace.snapshots[-90:]
            for pos in snap.positions.values()
        ]
        return float(np.mean(dists)), world.stats.attraction_redirects

    def test_naive_crawler_attracts_users(self):
        naive_dist, naive_redirects = self._mean_distance_to_center(mimic=False)
        mimic_dist, mimic_redirects = self._mean_distance_to_center(mimic=True)
        assert naive_redirects > 0
        assert mimic_redirects == 0
        assert naive_dist < mimic_dist


class TestSensorNetworkLimits:
    """§2: the sensor architecture loses data in every documented way."""

    def test_sensors_underreport_dense_crowds(self):
        preset = dance_island()
        world = preset.build(seed=7, start_time=12 * 3600.0)
        world.run_until(12 * 3600.0 + 1800.0)
        truth = GroundTruthMonitor(tau=10.0)
        # A single central sensor (spacing = land size): no overlapping
        # neighbour can rescue the 16-avatar detection cap.
        sensors = SensorNetwork(tau=10.0, spacing=256.0)
        run_monitors(world, [truth, sensors], 1800.0)
        true_obs = sum(len(s) for s in truth.trace())
        sensed_obs = sum(len(s) for s in sensors.trace())
        # The dance floor packs > 16 avatars in one sensor's range.
        assert sensed_obs < true_obs

    def test_private_land_blocks_sensors_but_not_crawler(self):
        from repro.metaverse import Population, SessionProcess, World
        from repro.mobility import RandomWaypoint
        from repro.metaverse.objects import DeploymentError

        land = Land("Walled Garden", policy=AccessPolicy.PRIVATE)
        pop = Population(
            "v", SessionProcess(hourly_rate=120.0), RandomWaypoint(256.0, 256.0)
        )
        world = World(land, [pop], seed=3)
        with pytest.raises(DeploymentError):
            SensorNetwork(tau=10.0).attach(world)
        trace = Crawler(tau=10.0).monitor(world, 600.0)
        assert len(trace) == 60

    def test_http_throttling_degrades_coverage(self):
        def record_count(budget):
            preset = dance_island()
            world = preset.build(seed=9, start_time=12 * 3600.0)
            world.run_until(12 * 3600.0 + 900.0)
            sensors = SensorNetwork(
                tau=10.0, webserver=WebServer(max_requests_per_minute=budget)
            )
            run_monitors(world, [sensors], 1800.0)
            return sensors.trace().records(), sensors.total_dropped_records

        starved_records, starved_dropped = record_count(budget=2)
        fed_records, _fed_dropped = record_count(budget=600)
        assert len(starved_records) < len(fed_records)
        assert starved_dropped > 0

    def test_crawler_matches_ground_truth_at_same_tau(self):
        preset = generic_land(n_pois=4, hourly_rate=80.0, seed=13)
        world = preset.build(seed=5)
        truth = GroundTruthMonitor(tau=10.0)
        crawler = Crawler(tau=10.0)
        run_monitors(world, [truth, crawler], 1800.0)
        t_truth, t_crawler = truth.trace(), crawler.trace()
        assert len(t_truth) == len(t_crawler)
        for snap_t, snap_c in zip(t_truth, t_crawler):
            assert snap_t.users == snap_c.users


class TestDtnApplication:
    """§5: the traces drive DTN forwarding studies."""

    def test_epidemic_beats_direct_on_simulated_land(self):
        preset = generic_land(n_pois=4, hourly_rate=150.0, mean_session=1500.0, seed=2)
        world = preset.build(seed=11)
        trace = Crawler(tau=10.0).monitor(world, 3600.0)
        rng = np.random.default_rng(5)
        messages = uniform_workload(trace, 30, rng, min_presence=20)
        epidemic, direct = compare_protocols(
            trace, BLUETOOTH_RANGE, messages, [Epidemic(), DirectDelivery()]
        )
        assert epidemic.delivery_ratio >= direct.delivery_ratio
        assert epidemic.mean_copies > direct.mean_copies


class TestSamplingBias:
    """A1: coarser τ misses short contacts."""

    def test_resampling_reduces_contact_count(self):
        preset = dance_island()
        world = preset.build(seed=17, start_time=12 * 3600.0)
        world.run_until(12 * 3600.0 + 900.0)
        trace = Crawler(tau=10.0).monitor(world, 3600.0)
        fine = TraceAnalyzer(trace)
        coarse = TraceAnalyzer(trace.resampled(6))
        n_fine = len(fine.contacts(BLUETOOTH_RANGE))
        n_coarse = len(coarse.contacts(BLUETOOTH_RANGE))
        assert n_coarse < n_fine
