"""End-to-end integration: simulate → monitor → analyze → report.

These tests run scaled-down versions of the paper's pipeline (shorter
windows, one seed) and assert the *qualitative* findings of §4 — the
orderings and shapes, not the absolute numbers.
"""

import numpy as np
import pytest

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE, TraceAnalyzer
from repro.experiments import ExperimentConfig, analyzer_for, clear_cache
from repro.lands import paper_presets
from repro.trace import read_trace_csv, validate_trace, write_trace_csv

#: Shared one-hour afternoon windows; each land simulated once.
CONFIG = ExperimentConfig(duration=3600.0, every=12, start_hour=13, spinup=1800.0)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="module")
def analyzers():
    return {name: analyzer_for(name, CONFIG) for name in paper_presets()}


class TestTraceQuality:
    def test_traces_are_clean(self, analyzers):
        for name, analyzer in analyzers.items():
            issues = [
                i for i in validate_trace(analyzer.trace)
                if i.code not in ("empty-snapshot",)
            ]
            assert issues == [], f"{name}: {[str(i) for i in issues[:3]]}"

    def test_concurrency_ordering(self, analyzers):
        conc = {n: a.summary().mean_concurrency for n, a in analyzers.items()}
        assert conc["Apfel Land"] < conc["Dance Island"] < conc["Isle of View"]

    def test_population_present(self, analyzers):
        for name, analyzer in analyzers.items():
            assert analyzer.summary().unique_users > 20, name


class TestTemporalFindings:
    def test_ct_grows_with_range(self, analyzers):
        for name, analyzer in analyzers.items():
            ct_b = analyzer.contact_times(BLUETOOTH_RANGE).median
            ct_w = analyzer.contact_times(WIFI_RANGE).median
            assert ct_w >= ct_b, name

    def test_apfel_has_shortest_contacts(self, analyzers):
        ct = {
            n: a.contact_times(BLUETOOTH_RANGE).median for n, a in analyzers.items()
        }
        assert ct["Apfel Land"] <= ct["Dance Island"]
        assert ct["Apfel Land"] <= ct["Isle of View"]

    def test_apfel_first_contact_slowest(self, analyzers):
        ft = {
            n: a.first_contact_times(BLUETOOTH_RANGE).median
            for n, a in analyzers.items()
        }
        assert ft["Apfel Land"] > ft["Dance Island"]
        assert ft["Apfel Land"] > ft["Isle of View"]

    def test_first_contact_improves_with_range(self, analyzers):
        for name, analyzer in analyzers.items():
            ft_b = analyzer.first_contact_times(BLUETOOTH_RANGE).median
            ft_w = analyzer.first_contact_times(WIFI_RANGE).median
            assert ft_w <= ft_b, name

    def test_contact_times_heavy_bodied_with_cutoff(self, analyzers):
        """CT spans decades but is cut off well below the session cap."""
        for name, analyzer in analyzers.items():
            ct = analyzer.contact_times(BLUETOOTH_RANGE)
            assert ct.max >= 10 * ct.median, name
            assert ct.quantile(0.999) < 4 * 3600.0, name


class TestGraphFindings:
    def test_isolation_ordering(self, analyzers):
        iso = {
            n: a.isolation_fraction(BLUETOOTH_RANGE, CONFIG.every)
            for n, a in analyzers.items()
        }
        assert iso["Apfel Land"] > iso["Dance Island"]
        assert iso["Apfel Land"] > iso["Isle of View"]

    def test_wifi_range_connects_everyone_on_busy_lands(self, analyzers):
        for name in ("Dance Island", "Isle of View"):
            iso = analyzers[name].isolation_fraction(WIFI_RANGE, CONFIG.every)
            assert iso < 0.1, name

    def test_dense_los_networks_highly_clustered(self, analyzers):
        """Fig. 2(c): clustering far above the random-graph level."""
        for name in ("Dance Island", "Isle of View"):
            clustering = analyzers[name].clustering(BLUETOOTH_RANGE, CONFIG.every).median
            assert clustering > 0.4, name

    def test_clustering_beats_random_graph_null(self, analyzers):
        """The paper's §4 argument: these are not random graphs.

        An Erdos-Renyi graph with the same edge density has clustering
        ~= density.  At Bluetooth range the dense lands' line-of-sight
        snapshots must beat that null by a wide margin.
        """
        from repro.core.losgraph import snapshot_graph
        from repro.netgraph import density

        for name in ("Dance Island", "Isle of View"):
            analyzer = analyzers[name]
            snapshots = analyzer.trace.snapshots[:: CONFIG.every]
            graphs = [snapshot_graph(s, BLUETOOTH_RANGE) for s in snapshots]
            graphs = [g for g in graphs if g.node_count >= 3]
            mean_density = float(np.mean([density(g) for g in graphs]))
            clustering = analyzer.clustering(BLUETOOTH_RANGE, CONFIG.every).median
            assert clustering > 1.5 * mean_density, name

    def test_sparse_land_clustered_at_wifi_range(self, analyzers):
        """Apfel has too few r=10 samples in a 1 h window; at WiFi
        range its POI islands show the clustered structure clearly."""
        clustering = analyzers["Apfel Land"].clustering(WIFI_RANGE, CONFIG.every).median
        assert clustering > 0.6

    def test_diameter_shrinks_with_range_on_dense_lands(self, analyzers):
        for name in ("Dance Island", "Isle of View"):
            d_b = analyzers[name].diameters(BLUETOOTH_RANGE, CONFIG.every).median
            d_w = analyzers[name].diameters(WIFI_RANGE, CONFIG.every).median
            assert d_w <= d_b, name


class TestSpatialFindings:
    def test_most_of_every_land_is_empty(self, analyzers):
        for name, analyzer in analyzers.items():
            empty = float(analyzer.zone_occupation(20.0, CONFIG.every).cdf(0.0))
            assert empty >= 0.8, name

    def test_dance_island_has_hotspots(self, analyzers):
        occ = analyzers["Dance Island"].zone_occupation(20.0, CONFIG.every)
        assert occ.max >= 10.0

    def test_travel_length_ordering(self, analyzers):
        p90 = {
            n: float(a.travel_lengths().quantile(0.9)) for n, a in analyzers.items()
        }
        assert p90["Dance Island"] < p90["Apfel Land"]
        assert p90["Dance Island"] < p90["Isle of View"]

    def test_sessions_respect_cap(self, analyzers):
        for name, analyzer in analyzers.items():
            assert analyzer.travel_times().max <= 4.0 * 3600.0 + 60.0, name


class TestRoundTrip:
    def test_csv_roundtrip_preserves_analysis(self, analyzers, tmp_path):
        trace = analyzers["Dance Island"].trace
        path = write_trace_csv(trace, tmp_path / "dance.csv.gz")
        reloaded = read_trace_csv(path)
        a1 = analyzers["Dance Island"]
        a2 = TraceAnalyzer(reloaded)
        assert a2.summary().unique_users == a1.summary().unique_users
        ct1 = a1.contact_times(BLUETOOTH_RANGE)
        ct2 = a2.contact_times(BLUETOOTH_RANGE)
        assert ct1.n == ct2.n
        assert ct1.median == ct2.median
