"""Property-based equivalence for the run-length extraction kernels.

The vectorized kernels (:mod:`repro.core.kernels`,
:func:`repro.trace.extract_session_set`) must be *bit-for-bit*
interchangeable with the original per-snapshot state machines — same
intervals, same floats, same order — on traces with presence churn,
empty snapshots, gap re-entry, and contacts censored at the trace end.
The multirange fan must equal independent per-radius extractions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    extract_contact_set,
    extract_contact_sets_multirange,
    extract_contacts,
    extract_contacts_loop,
    extract_contacts_multirange_loop,
    extract_contacts_reference,
)
from repro.core.kernels import build_contact_events, multirange_contact_sets
from repro.trace import (
    Trace,
    TraceMetadata,
    extract_session_set,
    extract_sessions_loop,
)
from repro.trace.columnar import ColumnarBuilder


@st.composite
def churn_traces(draw):
    """Random walks with presence churn, empty snapshots included.

    Users join and leave between snapshots (gap re-entry), some
    snapshots are empty (run breaks without a key change), and any
    pair still in range at the last snapshot is censored there —
    exactly the shapes the run-boundary logic must get right.
    """
    n_users = draw(st.integers(min_value=1, max_value=10))
    steps = draw(st.integers(min_value=1, max_value=50))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    presence = draw(st.floats(min_value=0.2, max_value=1.0))
    rng = np.random.default_rng(seed)
    names = [f"u{i:02d}" for i in range(n_users)]
    positions = rng.uniform(0.0, 100.0, size=(n_users, 3))
    positions[:, 2] = 0.0
    builder = ColumnarBuilder()
    for step in range(steps):
        positions[:, :2] += rng.normal(0.0, 5.0, size=(n_users, 2))
        positions[:, :2] = np.clip(positions[:, :2], 0.0, 100.0)
        idx = np.flatnonzero(rng.random(n_users) < presence)
        builder.append_snapshot(
            step * 10.0, [names[i] for i in idx], positions[idx]
        )
    meta = TraceMetadata(land_name="churn", width=128.0, height=128.0, tau=10.0)
    return Trace.from_columns(builder.build(), meta)


ranges = st.floats(min_value=1.0, max_value=120.0)


def assert_sets_identical(kernel_set, oracle_set):
    """Column-by-column bit-for-bit equality of two contact sets."""
    for got, want in zip(kernel_set.arrays(), oracle_set.arrays()):
        assert np.array_equal(got, want)
    assert list(kernel_set.names) == list(oracle_set.names)


class TestContactKernel:
    @given(churn_traces(), ranges)
    @settings(max_examples=50, deadline=None)
    def test_kernel_matches_loop_extractor(self, trace, r):
        assert extract_contact_set(trace, r) == extract_contacts_loop(trace, r)

    @given(churn_traces(), ranges)
    @settings(max_examples=30, deadline=None)
    def test_kernel_matches_dense_reference(self, trace, r):
        assert extract_contacts(trace, r) == extract_contacts_reference(trace, r)

    @given(churn_traces(), ranges)
    @settings(max_examples=30, deadline=None)
    def test_censoring_exactly_at_trace_end(self, trace, r):
        # An interval is censored iff its run reaches the final
        # snapshot, and then its end is the raw last time (no +tau).
        contact_set = extract_contact_set(trace, r)
        end_time = trace.end_time
        tau = trace.metadata.tau
        for start, end, censored in zip(
            contact_set.starts, contact_set.ends, contact_set.censored
        ):
            if censored:
                assert end == end_time
            else:
                assert end <= end_time + tau
                assert end - start >= tau

    @given(churn_traces(), st.lists(ranges, min_size=1, max_size=5, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_multirange_matches_independent_extractions(self, trace, radii):
        batched = extract_contact_sets_multirange(trace, radii)
        for r in radii:
            assert_sets_identical(batched[r], extract_contact_set(trace, r))

    @given(churn_traces(), st.lists(ranges, min_size=1, max_size=4, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_multirange_matches_loop_sweep(self, trace, radii):
        batched = extract_contact_sets_multirange(trace, radii)
        loop = extract_contacts_multirange_loop(trace, radii)
        for r in radii:
            assert batched[r] == loop[r]

    @given(churn_traces(), ranges, st.integers(min_value=2, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_radius_fan_worker_count_invariant(self, trace, r, workers):
        radii = [r * f for f in (0.5, 0.75, 1.0)]
        table = build_contact_events(trace, max(radii), keep_distances=True)
        serial = multirange_contact_sets(table, radii)
        fanned = multirange_contact_sets(table, radii, radius_workers=workers)
        for radius in radii:
            assert_sets_identical(fanned[radius], serial[radius])


class TestSessionKernel:
    @given(churn_traces())
    @settings(max_examples=50, deadline=None)
    def test_kernel_matches_loop_extractor(self, trace):
        assert extract_session_set(trace) == extract_sessions_loop(trace)

    @given(churn_traces(), st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=30, deadline=None)
    def test_kernel_matches_loop_at_any_gap_threshold(self, trace, gap):
        assert extract_session_set(trace, gap) == extract_sessions_loop(trace, gap)

    @given(churn_traces())
    @settings(max_examples=30, deadline=None)
    def test_sessions_cover_all_observations(self, trace):
        session_set = extract_session_set(trace)
        total = trace.columns.observation_count
        assert int(session_set.observation_counts().sum()) == total
