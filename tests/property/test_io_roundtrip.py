"""Property-based round-trip tests across every serialization format.

Random traces must survive CSV ↔ JSONL ↔ ``.rtrc`` ↔ memmap round
trips *bit-for-bit*: identical snapshot times, identical interned id
columns (interning order is first appearance for every reader),
identical coordinates and metadata.  Traces are generated on a
millimeter grid because the CSV writer renders ``%.3f`` — every other
format is exact for arbitrary doubles, so the quantized values make
one generator serve all formats.

Covers the edge cases the formats historically get wrong: empty
traces, empty snapshots, single-user traces, gzip variants, and
metadata with awkward characters.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    Trace,
    TraceMetadata,
    read_trace,
    read_trace_csv,
    read_trace_jsonl,
    read_trace_rtrc,
    write_trace,
    write_trace_csv,
    write_trace_jsonl,
    write_trace_rtrc,
)
from repro.trace.columnar import ColumnarBuilder, ColumnarStore

# User names: printable, no newlines (CSV is line-oriented); commas and
# quotes are fair game — the csv module must quote them.
_NAME_ALPHABET = st.sampled_from(
    list("abcdefghijklmnopqrstuvwxyzABC0123456789 _-,.'\"éß中")
)
_names = st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=12).filter(
    lambda s: s.strip() == s
)


def _milli(lo: int, hi: int):
    """Floats on the 1/1000 grid — exact through a %.3f round trip."""
    return st.integers(min_value=lo, max_value=hi).map(lambda k: k / 1000.0)


@st.composite
def metadatas(draw):
    return TraceMetadata(
        land_name=draw(_names),
        width=draw(_milli(1_000, 512_000)),
        height=draw(_milli(1_000, 512_000)),
        tau=draw(_milli(1, 60_000)),
        source=draw(st.sampled_from(["crawler", "sensor-network", "synthetic"])),
        notes=draw(st.text(alphabet=_NAME_ALPHABET, max_size=20)),
    )


@st.composite
def traces(draw):
    user_pool = draw(st.lists(_names, min_size=1, max_size=6, unique=True))
    snapshot_count = draw(st.integers(min_value=0, max_value=7))
    time_millis = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000_000),
            min_size=snapshot_count,
            max_size=snapshot_count,
            unique=True,
        )
    )
    builder = ColumnarBuilder()
    for millis in sorted(time_millis):
        present = draw(
            st.lists(st.sampled_from(user_pool), max_size=len(user_pool), unique=True)
        )
        coords = np.array(
            [
                [
                    draw(_milli(0, 256_000)),
                    draw(_milli(0, 256_000)),
                    draw(_milli(0, 256_000)),
                ]
                for _ in present
            ],
            dtype=np.float64,
        ).reshape(len(present), 3)
        builder.append_snapshot(millis / 1000.0, present, coords)
    return Trace.from_columns(builder.build(), draw(metadatas()))


def assert_traces_identical(original: Trace, loaded: Trace) -> None:
    a, b = original.columns, loaded.columns
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.snapshot_offsets, b.snapshot_offsets)
    assert np.array_equal(a.user_ids, b.user_ids)
    assert np.array_equal(a.xyz, b.xyz)
    assert a.users.names == b.users.names
    assert original.metadata == loaded.metadata


def _roundtrip(trace: Trace, writer, reader, filename: str) -> Trace:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / filename
        writer(trace, path)
        return reader(path)


class TestSingleFormatRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(traces())
    def test_csv(self, trace):
        loaded = _roundtrip(trace, write_trace_csv, read_trace_csv, "t.csv")
        assert_traces_identical(trace, loaded)

    @settings(max_examples=30, deadline=None)
    @given(traces())
    def test_jsonl(self, trace):
        loaded = _roundtrip(trace, write_trace_jsonl, read_trace_jsonl, "t.jsonl")
        assert_traces_identical(trace, loaded)

    @settings(max_examples=30, deadline=None)
    @given(traces())
    def test_rtrc_memmap(self, trace):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.rtrc"
            write_trace_rtrc(trace, path)
            loaded = read_trace_rtrc(path, mmap=True)
            assert_traces_identical(trace, loaded)

    @settings(max_examples=15, deadline=None)
    @given(traces())
    def test_gzip_paths(self, trace):
        for name in ("t.csv.gz", "t.jsonl.gz", "t.rtrc.gz"):
            loaded = _roundtrip(trace, write_trace, read_trace, name)
            assert_traces_identical(trace, loaded)


class TestCrossFormatChain:
    @settings(max_examples=20, deadline=None)
    @given(traces())
    def test_csv_jsonl_rtrc_memmap_chain(self, trace):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            via_csv = _chain_read(trace, write_trace_csv, read_trace_csv, tmp / "a.csv")
            via_jsonl = _chain_read(
                via_csv, write_trace_jsonl, read_trace_jsonl, tmp / "b.jsonl"
            )
            write_trace_rtrc(via_jsonl, tmp / "c.rtrc")
            final = read_trace_rtrc(tmp / "c.rtrc", mmap=True)
            assert_traces_identical(trace, final)
            # And back out of the memmap into text formats again.
            write_trace_csv(final, tmp / "d.csv")
            assert_traces_identical(trace, read_trace_csv(tmp / "d.csv"))


def _chain_read(trace, writer, reader, path):
    writer(trace, path)
    return reader(path)


class TestTargetedShapes:
    @settings(max_examples=15, deadline=None)
    @given(traces())
    def test_empty_snapshots_survive_all_formats(self, base):
        # Splice guaranteed-empty snapshots around whatever was drawn.
        # Stay on the millisecond grid the module docstring requires:
        # naive `last + 0.5` can land an ulp off the grid (e.g.
        # 0.059 + 0.5 == 0.5589999999999999), which the CSV %.3f
        # round trip legitimately snaps back to 0.559.
        cols = base.columns
        last_millis = round((base.end_time if len(base) else 0.0) * 1000.0)
        extra = np.array([last_millis + 500, last_millis + 1000]) / 1000.0
        store = ColumnarStore(
            np.concatenate([cols.times, extra]),
            np.concatenate(
                [cols.snapshot_offsets, [cols.snapshot_offsets[-1]] * 2]
            ),
            cols.user_ids,
            cols.xyz,
            cols.users,
        )
        trace = Trace.from_columns(store, base.metadata)
        assert trace.concurrency()[-2:] == [0, 0]
        for name in ("t.csv", "t.jsonl", "t.rtrc"):
            loaded = _roundtrip(trace, write_trace, read_trace, name)
            assert loaded.concurrency() == trace.concurrency()
            assert_traces_identical(trace, loaded)

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_single_user_trace(self, data):
        name = data.draw(_names)
        steps = data.draw(st.integers(min_value=1, max_value=6))
        builder = ColumnarBuilder()
        for step in range(steps):
            builder.append_snapshot(
                step * 10.0, [name], np.array([[step / 8.0, 1.0, 0.0]])
            )
        trace = Trace.from_columns(builder.build(), data.draw(metadatas()))
        for filename in ("t.csv", "t.jsonl", "t.rtrc"):
            loaded = _roundtrip(trace, write_trace, read_trace, filename)
            assert_traces_identical(trace, loaded)
            assert loaded.unique_users() == {name}
