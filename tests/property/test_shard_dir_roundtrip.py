"""Property tests: per-shard ``.rtrc`` directories round-trip exactly.

For any trace and any shard count,
``split → to_rtrc_dir → read_rtrc_dir (memmap) → concat_shards``
must reproduce the original trace bit-for-bit — snapshot times,
CSR offsets, interned id columns, coordinates, user table, and
metadata.  Covers the shapes that historically go wrong: empty shards
(k beyond the snapshot count), fully empty traces, single-snapshot
traces, and gzipped shard files.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    Trace,
    TraceFormatError,
    TraceMetadata,
    concat_shards,
    read_rtrc_dir,
    to_rtrc_dir,
)
from repro.trace.columnar import ColumnarBuilder
from repro.trace.sharding import MANIFEST_NAME

_names = st.text(
    alphabet=st.sampled_from(list("abcdefgh0123456789_-é")),
    min_size=1,
    max_size=8,
)


def _milli(lo: int, hi: int):
    return st.integers(min_value=lo, max_value=hi).map(lambda k: k / 1000.0)


@st.composite
def traces(draw):
    user_pool = draw(st.lists(_names, min_size=1, max_size=5, unique=True))
    snapshot_count = draw(st.integers(min_value=0, max_value=9))
    time_millis = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000_000),
            min_size=snapshot_count,
            max_size=snapshot_count,
            unique=True,
        )
    )
    builder = ColumnarBuilder()
    for millis in sorted(time_millis):
        present = draw(
            st.lists(st.sampled_from(user_pool), max_size=len(user_pool), unique=True)
        )
        coords = np.array(
            [
                [draw(_milli(0, 256_000)), draw(_milli(0, 256_000)), 0.0]
                for _ in present
            ],
            dtype=np.float64,
        ).reshape(len(present), 3)
        builder.append_snapshot(millis / 1000.0, present, coords)
    metadata = TraceMetadata(
        land_name=draw(_names), tau=draw(_milli(1, 60_000)), source="synthetic"
    )
    return Trace.from_columns(builder.build(), metadata)


def assert_round_trips(trace: Trace, k: int, gzip_shards: bool = False) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        paths = to_rtrc_dir(trace, k, tmp, gzip_shards=gzip_shards)
        assert len(paths) == k
        assert (Path(tmp) / MANIFEST_NAME).exists()
        shards = read_rtrc_dir(tmp)
        assert len(shards) == k
        # Shard files written from one parent share one loaded interner.
        assert all(s.columns.users is shards[0].columns.users for s in shards)
        back = concat_shards(shards)
    a, b = trace.columns, back.columns
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.snapshot_offsets, b.snapshot_offsets)
    assert np.array_equal(a.user_ids, b.user_ids)
    assert np.array_equal(a.xyz, b.xyz)
    assert a.users.names == b.users.names
    assert back.metadata == trace.metadata


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(trace=traces(), k=st.integers(min_value=1, max_value=9))
    def test_split_write_memmap_concat(self, trace, k):
        assert_round_trips(trace, k)

    @settings(max_examples=12, deadline=None)
    @given(trace=traces(), k=st.integers(min_value=1, max_value=5))
    def test_gzip_shards(self, trace, k):
        assert_round_trips(trace, k, gzip_shards=True)

    @settings(max_examples=12, deadline=None)
    @given(trace=traces())
    def test_oversharded_empty_tails(self, trace):
        # k far beyond the snapshot count: most shard files are empty.
        assert_round_trips(trace, len(trace) + 4)


class TestTargetedShapes:
    def test_single_snapshot_trace(self):
        builder = ColumnarBuilder()
        builder.append_snapshot(5.0, ["only"], [[1.0, 2.0, 0.0]])
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        assert_round_trips(trace, 3)

    def test_empty_trace(self):
        builder = ColumnarBuilder()
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        assert_round_trips(trace, 2)

    def test_empty_snapshots_inside_shards(self):
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, [], np.empty((0, 3)))
        builder.append_snapshot(10.0, ["u"], [[1.0, 1.0, 0.0]])
        builder.append_snapshot(20.0, [], np.empty((0, 3)))
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        assert_round_trips(trace, 2)


class TestDirectoryHandling:
    def test_missing_manifest_falls_back_to_name_order(self, tmp_path):
        builder = ColumnarBuilder()
        for step in range(6):
            builder.append_snapshot(step * 10.0, ["u"], [[float(step), 0.0, 0.0]])
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        to_rtrc_dir(trace, 3, tmp_path)
        (tmp_path / MANIFEST_NAME).unlink()
        back = concat_shards(read_rtrc_dir(tmp_path))
        assert np.array_equal(back.columns.times, trace.columns.times)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no shard files"):
            read_rtrc_dir(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        builder = ColumnarBuilder()
        builder.append_snapshot(0.0, ["u"], [[0.0, 0.0, 0.0]])
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        to_rtrc_dir(trace, 1, tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(TraceFormatError, match="manifest"):
            read_rtrc_dir(tmp_path)

    def test_missing_shard_file_rejected(self, tmp_path):
        builder = ColumnarBuilder()
        for step in range(4):
            builder.append_snapshot(step * 10.0, ["u"], [[float(step), 0.0, 0.0]])
        trace = Trace.from_columns(builder.build(), TraceMetadata(tau=10.0))
        to_rtrc_dir(trace, 2, tmp_path)
        (tmp_path / "shard-00001.rtrc").unlink()
        # A manifest naming an absent file is a corrupt shard dir, not
        # a bare FileNotFoundError.
        with pytest.raises(TraceFormatError, match="shard-00001"):
            read_rtrc_dir(tmp_path)
