"""Property-based tests for the statistics layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import ECDF, BoundedPareto, LogNormal, TruncatedParetoExp

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=1, max_size=200)


class TestEcdfProperties:
    @given(samples)
    def test_cdf_monotone_nondecreasing(self, xs):
        e = ECDF(xs)
        grid = np.linspace(min(xs) - 1.0, max(xs) + 1.0, 50)
        values = np.asarray(e.cdf(grid))
        assert np.all(np.diff(values) >= -1e-12)

    @given(samples)
    def test_cdf_bounds(self, xs):
        e = ECDF(xs)
        assert e.cdf(min(xs) - 1.0) == 0.0
        assert e.cdf(max(xs)) == 1.0

    @given(samples)
    def test_ccdf_complements_cdf(self, xs):
        e = ECDF(xs)
        grid = np.linspace(min(xs) - 1.0, max(xs) + 1.0, 23)
        total = np.asarray(e.cdf(grid)) + np.asarray(e.ccdf(grid))
        assert np.allclose(total, 1.0)

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_is_generalized_inverse(self, xs, q):
        e = ECDF(xs)
        v = e.quantile(q)
        assert float(e.cdf(v)) >= q - 1e-12
        assert v in xs

    @given(samples)
    def test_median_between_extremes(self, xs):
        e = ECDF(xs)
        assert e.min <= e.median <= e.max

    @given(samples)
    def test_steps_reach_one(self, xs):
        _x, heights = ECDF(xs).steps()
        assert heights[-1] == 1.0


class TestSamplerProperties:
    @given(
        st.floats(min_value=0.3, max_value=3.5),
        st.floats(min_value=0.5, max_value=50.0),
        st.floats(min_value=1.1, max_value=100.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50)
    def test_bounded_pareto_stays_in_bounds(self, alpha, low, factor, seed):
        high = low * factor
        law = BoundedPareto(alpha=alpha, low=low, high=high)
        draws = law.sample(np.random.default_rng(seed), 100)
        assert draws.min() >= low - 1e-9
        assert draws.max() <= high + 1e-9

    @given(
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=1e-4, max_value=0.5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_truncated_pareto_exp_in_bounds(self, alpha, rate, seed):
        law = TruncatedParetoExp(alpha=alpha, rate=rate, low=5.0, high=500.0)
        draws = law.sample(np.random.default_rng(seed), 50)
        assert draws.min() >= 5.0 and draws.max() <= 500.0

    @given(
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.1, max_value=2.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_lognormal_cap_is_hard(self, mu, sigma, seed):
        cap = float(np.exp(mu + sigma))  # cuts a visible tail chunk
        law = LogNormal(mu=mu, sigma=sigma, cap=cap)
        draws = law.sample(np.random.default_rng(seed), 100)
        assert draws.max() <= cap

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_determinism(self, seed):
        law = BoundedPareto(alpha=1.5, low=1.0, high=100.0)
        a = law.sample(np.random.default_rng(seed), 20)
        b = law.sample(np.random.default_rng(seed), 20)
        assert np.array_equal(a, b)
