"""Property-based tests for contact extraction and sessions.

These pin the paper's definitional invariants: contact intervals of a
pair never overlap, ICTs are exactly the gaps between them, travel
metrics are non-negative and consistent, and coarser sampling never
*increases* the number of observed contacts of a pair beyond the finer
sampling's.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contact_durations, extract_contacts, first_contact_times, inter_contact_times
from repro.trace import extract_sessions, random_walk_trace


@st.composite
def walk_traces(draw):
    n_users = draw(st.integers(min_value=2, max_value=8))
    steps = draw(st.integers(min_value=2, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    step_std = draw(st.floats(min_value=0.5, max_value=25.0))
    return random_walk_trace(
        n_users, steps, np.random.default_rng(seed), tau=10.0, step_std=step_std, size=120.0
    )


ranges = st.floats(min_value=1.0, max_value=90.0)


class TestContactInvariants:
    @given(walk_traces(), ranges)
    @settings(max_examples=40, deadline=None)
    def test_intervals_of_a_pair_never_overlap(self, trace, r):
        by_pair = {}
        for c in extract_contacts(trace, r):
            by_pair.setdefault(c.pair, []).append(c)
        for intervals in by_pair.values():
            intervals.sort(key=lambda c: c.start)
            for prev, cur in zip(intervals, intervals[1:]):
                assert cur.start > prev.end - 1e-9

    @given(walk_traces(), ranges)
    @settings(max_examples=40, deadline=None)
    def test_durations_positive_multiples_of_tau(self, trace, r):
        tau = trace.metadata.tau
        for d in contact_durations(extract_contacts(trace, r)):
            assert d >= tau - 1e-9
            assert abs(d / tau - round(d / tau)) < 1e-9

    @given(walk_traces(), ranges)
    @settings(max_examples=40, deadline=None)
    def test_contacts_within_trace_span(self, trace, r):
        for c in extract_contacts(trace, r):
            assert trace.start_time <= c.start <= trace.end_time
            assert c.end <= trace.end_time + trace.metadata.tau + 1e-9

    @given(walk_traces(), ranges)
    @settings(max_examples=40, deadline=None)
    def test_icts_positive_and_counted(self, trace, r):
        contacts = extract_contacts(trace, r)
        gaps = inter_contact_times(contacts)
        assert all(g > 0 for g in gaps)
        by_pair = {}
        for c in contacts:
            by_pair[c.pair] = by_pair.get(c.pair, 0) + 1
        expected = sum(max(0, k - 1) for k in by_pair.values())
        # Every consecutive pair of contacts yields at most one gap
        # (gaps of zero or negative length are dropped).
        assert len(gaps) <= expected

    @given(walk_traces(), ranges)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_range(self, trace, r):
        """A larger range can only connect more (user, snapshot) pairs."""
        small = extract_contacts(trace, r)
        large = extract_contacts(trace, r * 1.5)
        # Total in-contact snapshot count grows with r.
        def coverage(contacts, tau):
            return sum(int((c.end - c.start) / tau) + 1 for c in contacts)

        tau = trace.metadata.tau
        assert coverage(large, tau) >= coverage(small, tau)

    @given(walk_traces(), ranges)
    @settings(max_examples=40, deadline=None)
    def test_first_contact_consistency(self, trace, r):
        contacts = extract_contacts(trace, r)
        ft = first_contact_times(trace, r, contacts)
        users_in_contacts = {u for c in contacts for u in c.pair}
        assert set(ft) == users_in_contacts
        assert all(v >= 0 for v in ft.values())


class TestSessionInvariants:
    @given(walk_traces())
    @settings(max_examples=40, deadline=None)
    def test_sessions_cover_all_observations(self, trace):
        sessions = extract_sessions(trace)
        total_observations = sum(len(s) for s in trace)
        assert sum(s.observation_count for s in sessions) == total_observations

    @given(walk_traces())
    @settings(max_examples=40, deadline=None)
    def test_session_metrics_consistent(self, trace):
        for s in extract_sessions(trace):
            assert s.travel_time >= 0
            assert s.travel_length() >= s.net_displacement() - 1e-9
            eff = s.effective_travel_time()
            assert 0.0 <= eff <= s.travel_time + 1e-9
            assert s.pause_time() >= -1e-9
