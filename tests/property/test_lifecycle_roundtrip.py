"""Property tests: lifecycle rewrites never change what a directory says.

The streaming compactor must be a *pure re-layout*: for any trace, any
round split, any snapshot batch size (including 1), any output shard
count, and either output encoding, the files it writes are byte-for-byte
what the materializing oracle (``batch_snapshots=None``) writes — plain
files compared raw, gzip members compared decompressed (the gzip header
embeds an mtime, so container bytes legitimately differ).  Tiering and
retention are checked as content-preserving / suffix-preserving
transforms over appender-built directories with growing user tables.
"""

import gzip
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    RtrcDirAppender,
    compact_shard_dir,
    concat_shards,
    read_rtrc_dir,
    read_shard_manifest,
    retain_shard_dir,
    tier_shard_dir,
    to_rtrc_dir,
)
from repro.trace.sharding import MANIFEST_NAME
from tests.property.test_shard_dir_roundtrip import traces


def _assert_columns_equal(a, b) -> None:
    assert np.array_equal(a.columns.times, b.columns.times)
    assert np.array_equal(a.columns.snapshot_offsets, b.columns.snapshot_offsets)
    assert np.array_equal(a.columns.user_ids, b.columns.user_ids)
    assert np.array_equal(a.columns.xyz, b.columns.xyz)
    assert a.columns.users.names == b.columns.users.names


def _payload_bytes(path: Path) -> bytes:
    data = path.read_bytes()
    if path.name.endswith(".gz"):
        return gzip.decompress(data)
    return data


def _assert_dirs_identical(streamed: Path, materialized: Path) -> None:
    left = read_shard_manifest(streamed)
    right = read_shard_manifest(materialized)
    assert left == right
    for name in left["files"]:
        assert _payload_bytes(streamed / name) == _payload_bytes(
            materialized / name
        )
    on_disk = sorted(p.name for p in streamed.iterdir() if p.name != MANIFEST_NAME)
    assert on_disk == sorted(left["files"])


def _check_stream_matches_oracle(trace, rounds, shards, batch, gzip_out) -> None:
    with tempfile.TemporaryDirectory() as a, tempfile.TemporaryDirectory() as b:
        streamed, materialized = Path(a), Path(b)
        to_rtrc_dir(trace, rounds, streamed)
        to_rtrc_dir(trace, rounds, materialized)
        compact_shard_dir(
            streamed, shards, gzip_shards=gzip_out, batch_snapshots=batch
        )
        compact_shard_dir(
            materialized, shards, gzip_shards=gzip_out, batch_snapshots=None
        )
        _assert_dirs_identical(streamed, materialized)
        _assert_columns_equal(concat_shards(read_rtrc_dir(streamed)), trace)


class TestStreamingEqualsMaterializing:
    @settings(max_examples=40, deadline=None)
    @given(
        trace=traces(),
        rounds=st.integers(min_value=1, max_value=4),
        shards=st.integers(min_value=1, max_value=4),
        batch=st.integers(min_value=1, max_value=6),
    )
    def test_plain_output(self, trace, rounds, shards, batch):
        _check_stream_matches_oracle(trace, rounds, shards, batch, False)

    @settings(max_examples=15, deadline=None)
    @given(
        trace=traces(),
        rounds=st.integers(min_value=1, max_value=3),
        shards=st.integers(min_value=1, max_value=3),
        batch=st.integers(min_value=1, max_value=4),
    )
    def test_gzip_output(self, trace, rounds, shards, batch):
        _check_stream_matches_oracle(trace, rounds, shards, batch, True)

    @settings(max_examples=15, deadline=None)
    @given(trace=traces(), batch=st.integers(min_value=1, max_value=3))
    def test_oversharded_inputs(self, trace, batch):
        # More input rounds than snapshots: empty round files in the mix.
        _check_stream_matches_oracle(trace, len(trace) + 3, 2, batch, False)


def _appender_dir(trace, root: Path, round_sizes) -> list[int]:
    """Write ``trace`` through the appender in rounds of the given sizes.

    Appender-built directories carry *growing* (prefix) user tables —
    the harder merge case for the compactor — unlike
    :func:`to_rtrc_dir` output where every file shares one table.
    Returns the per-round snapshot counts actually used.
    """
    used = []
    columns = trace.columns
    offsets = columns.snapshot_offsets
    table = columns.users.names
    with RtrcDirAppender(root) as appender:
        cursor = 0
        for size in round_sizes:
            take = min(size, len(trace) - cursor)
            if take <= 0:
                break
            for index in range(cursor, cursor + take):
                j, k = int(offsets[index]), int(offsets[index + 1])
                present = [table[i] for i in columns.user_ids[j:k]]
                appender.append_snapshot(
                    float(columns.times[index]),
                    present,
                    np.asarray(columns.xyz[j:k], dtype=np.float64).reshape(-1, 3),
                )
            appender.commit()
            used.append(take)
            cursor += take
    return used


class TestLifecycleOverAppenderDirs:
    @settings(max_examples=25, deadline=None)
    @given(
        trace=traces(),
        sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5),
        batch=st.integers(min_value=1, max_value=4),
        shards=st.integers(min_value=1, max_value=3),
    )
    def test_compaction_preserves_content(self, trace, sizes, batch, shards):
        if len(trace) == 0:
            return
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            _appender_dir(trace, root, sizes)
            before = concat_shards(read_rtrc_dir(root))
            compact_shard_dir(root, shards, batch_snapshots=batch)
            after = concat_shards(read_rtrc_dir(root))
            _assert_columns_equal(after, before)

    @settings(max_examples=20, deadline=None)
    @given(
        trace=traces(),
        sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5),
        horizon=st.integers(min_value=0, max_value=12_000_000).map(
            lambda k: k / 1000.0
        ),
    )
    def test_tier_preserves_retain_prunes_prefix(self, trace, sizes, horizon):
        if len(trace) == 0:
            return
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            _appender_dir(trace, root, sizes)
            before = concat_shards(read_rtrc_dir(root))
            generation = int(read_shard_manifest(root).get("generation", 0))

            tiered = tier_shard_dir(root, horizon)
            after_tier = concat_shards(read_rtrc_dir(root))
            _assert_columns_equal(after_tier, before)
            if tiered:
                generation += 1
            assert (
                int(read_shard_manifest(root).get("generation", 0)) == generation
            )

            dropped = retain_shard_dir(root, horizon)
            manifest = read_shard_manifest(root)
            if dropped:
                generation += 1
            assert int(manifest.get("generation", 0)) == generation
            # Retention drops a *prefix* of whole files: the survivors
            # are exactly the original trace minus its oldest snapshots,
            # and every retained time is within the horizon of the end
            # (or in the always-kept newest file).
            after = concat_shards(read_rtrc_dir(root))
            kept = len(after.columns.times)
            assert kept >= 1
            offsets = before.columns.snapshot_offsets
            skip = len(before.columns.times) - kept
            assert np.array_equal(
                after.columns.times, before.columns.times[skip:]
            )
            assert np.array_equal(
                after.columns.user_ids, before.columns.user_ids[offsets[skip] :]
            )
            assert np.array_equal(
                after.columns.xyz, before.columns.xyz[offsets[skip] :]
            )
