"""Property-based tests for the world engine and monitors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metaverse import Land, Population, SessionProcess, World
from repro.mobility import PoiMobility, PointOfInterest, RandomWaypoint
from repro.monitors import Crawler


@st.composite
def small_worlds(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rate = draw(st.floats(min_value=30.0, max_value=400.0))
    kind = draw(st.sampled_from(["rwp", "poi"]))
    if kind == "rwp":
        model = RandomWaypoint(256.0, 256.0)
        land = Land("prop")
    else:
        pois = [
            PointOfInterest("hub", 128.0, 128.0, radius=12.0, weight=3.0, spawn_weight=1.0),
            PointOfInterest("side", 60.0, 60.0, radius=9.0, weight=1.0),
        ]
        model = PoiMobility(256.0, 256.0, pois)
        land = Land("prop", pois=pois)
    population = Population("v", SessionProcess(hourly_rate=rate), model)
    return World(land, [population], seed=seed)


class TestWorldInvariants:
    @given(small_worlds(), st.integers(min_value=30, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_accounting_identity(self, world, horizon):
        world.run_until(float(horizon))
        assert world.online_count == world.stats.logins - world.stats.logouts
        assert world.online_count <= world.land.max_concurrent

    @given(small_worlds(), st.integers(min_value=30, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_positions_always_on_land(self, world, horizon):
        world.run_until(float(horizon))
        for avatar in world.online_avatars():
            assert world.land.contains(avatar.position)

    @given(small_worlds())
    @settings(max_examples=10, deadline=None)
    def test_clock_monotone(self, world):
        previous = world.now
        for _step in range(25):
            world.step()
            assert world.now > previous
            previous = world.now


class TestMonitorInvariants:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=5.0, max_value=30.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_crawler_trace_well_formed(self, seed, tau):
        model = RandomWaypoint(256.0, 256.0)
        population = Population("v", SessionProcess(hourly_rate=200.0), model)
        world = World(Land("m"), [population], seed=seed)
        trace = Crawler(tau=tau).monitor(world, 120.0)
        times = [s.time for s in trace]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        # Snapshots happen on world-clock ticks, so intervals quantize
        # to within one tick of the nominal period.
        diffs = np.diff(times)
        if len(diffs):
            assert np.all(np.abs(diffs - tau) <= world.dt + 1e-9)
        # The crawler's observations match world-state times.
        assert all(t <= world.now for t in times)
