"""Property-based tests for the netgraph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netgraph import (
    Graph,
    average_clustering,
    connected_components,
    diameter,
    erdos_renyi,
    geometric_graph,
    largest_component,
    local_clustering,
)

networkx = pytest.importorskip("networkx")


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return erdos_renyi(n, p, np.random.default_rng(seed))


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    radius = draw(st.floats(min_value=1.0, max_value=120.0))
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, (n, 2)), radius


def _to_networkx(graph: Graph):
    g = networkx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


class TestGraphInvariants:
    @given(random_graphs())
    @settings(max_examples=40)
    def test_components_partition_nodes(self, g):
        comps = connected_components(g)
        seen = [node for comp in comps for node in comp]
        assert sorted(seen, key=repr) == sorted(g.nodes(), key=repr)
        assert len(seen) == len(set(seen))

    @given(random_graphs())
    @settings(max_examples=40)
    def test_components_sorted_desc(self, g):
        sizes = [len(c) for c in connected_components(g)]
        assert sizes == sorted(sizes, reverse=True)

    @given(random_graphs())
    @settings(max_examples=40)
    def test_clustering_in_unit_interval(self, g):
        for node in g.nodes():
            assert 0.0 <= local_clustering(g, node) <= 1.0
        assert 0.0 <= average_clustering(g) <= 1.0

    @given(random_graphs())
    @settings(max_examples=40)
    def test_diameter_bounds(self, g):
        lcc = largest_component(g)
        d = diameter(g)
        assert 0 <= d < max(lcc.node_count, 1)

    @given(random_graphs())
    @settings(max_examples=25)
    def test_matches_networkx(self, g):
        nx_g = _to_networkx(g)
        if g.node_count:
            assert average_clustering(g) == pytest.approx(
                networkx.average_clustering(nx_g)
            )
        comps_ours = sorted(len(c) for c in connected_components(g))
        comps_nx = sorted(len(c) for c in networkx.connected_components(nx_g))
        assert comps_ours == comps_nx

    @given(random_graphs())
    @settings(max_examples=25)
    def test_diameter_matches_networkx(self, g):
        if g.node_count == 0:
            return
        lcc = largest_component(g)
        nx_lcc = _to_networkx(lcc)
        expected = networkx.diameter(nx_lcc) if lcc.node_count > 1 else 0
        assert diameter(g) == expected


class TestGeometricGraphInvariants:
    @given(point_sets())
    @settings(max_examples=40)
    def test_edges_iff_within_radius(self, points_radius):
        points, radius = points_radius
        g = geometric_graph(points, radius)
        n = points.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                d = float(np.hypot(*(points[i] - points[j])))
                assert g.has_edge(i, j) == (d < radius)

    @given(point_sets())
    @settings(max_examples=40)
    def test_monotone_in_radius(self, points_radius):
        points, radius = points_radius
        small = geometric_graph(points, radius)
        large = geometric_graph(points, radius * 1.5 + 1.0)
        for u, v in small.edges():
            assert large.has_edge(u, v)
