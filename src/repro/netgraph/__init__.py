"""A small, dependency-free undirected graph library.

The paper's line-of-sight networks need exactly four graph-theoretic
operations: node degree, connected components, diameter of the largest
component, and the Watts-Strogatz clustering coefficient.  They are
implemented here from first principles and cross-validated against
``networkx`` in the test suite, so the analysis pipeline carries no
heavyweight dependency.
"""

from repro.netgraph.graph import Graph
from repro.netgraph.algorithms import (
    bfs_distances,
    connected_components,
    diameter,
    eccentricity,
    largest_component,
    shortest_path_length,
)
from repro.netgraph.metrics import (
    average_clustering,
    clustering_coefficients,
    degree_sequence,
    density,
    local_clustering,
    triangle_count,
)
from repro.netgraph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    geometric_graph,
    path_graph,
    star_graph,
)

__all__ = [
    "Graph",
    "bfs_distances",
    "connected_components",
    "diameter",
    "eccentricity",
    "largest_component",
    "shortest_path_length",
    "average_clustering",
    "clustering_coefficients",
    "degree_sequence",
    "density",
    "local_clustering",
    "triangle_count",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "geometric_graph",
    "path_graph",
    "star_graph",
]
