"""Undirected simple graph on hashable node keys."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Node = Hashable


class Graph:
    """Adjacency-set representation of an undirected simple graph.

    Self-loops and parallel edges are rejected/merged respectively:
    a line-of-sight network never links a user to herself, and a pair
    of users is either in range or not.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, Node]] = (),
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Insert an isolated node (no-op when present)."""
        self._adj.setdefault(node, set())

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert an undirected edge, creating endpoints as needed."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident edges."""
        neighbours = self._adj.pop(node, None)
        if neighbours is None:
            raise KeyError(node)
        for other in neighbours:
            self._adj[other].discard(node)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete an edge; raises ``KeyError`` when absent."""
        if not self.has_edge(u, v):
            raise KeyError((u, v))
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    # -- queries ------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def edges(self) -> list[tuple[Node, Node]]:
        """Each undirected edge exactly once."""
        seen: set[Node] = set()
        result: list[tuple[Node, Node]] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    result.append((u, v))
            seen.add(u)
        return result

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when ``u`` and ``v`` are adjacent."""
        return u in self._adj and v in self._adj[u]

    def neighbours(self, node: Node) -> set[Node]:
        """The adjacency set of ``node`` (a copy; mutating it is safe)."""
        return set(self._adj[node])

    def degree(self, node: Node) -> int:
        """Number of neighbours of ``node``."""
        return len(self._adj[node])

    def adjacency(self) -> dict[Node, frozenset[Node]]:
        """Immutable snapshot of the full adjacency structure."""
        return {node: frozenset(nbrs) for node, nbrs in self._adj.items()}

    def subgraph(self, keep: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``keep`` (unknown nodes are ignored)."""
        kept = {node for node in keep if node in self._adj}
        sub = Graph(nodes=kept)
        for node in kept:
            for other in self._adj[node]:
                if other in kept:
                    sub._adj[node].add(other)
        return sub

    def copy(self) -> "Graph":
        """Deep copy of the adjacency structure (node keys are shared)."""
        clone = Graph()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.node_count}, m={self.edge_count})"
