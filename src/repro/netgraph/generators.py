"""Deterministic and random graph generators.

Used by tests (known-answer graphs), by the analysis documentation
examples, and by the clustering-coefficient sanity check the paper
makes: line-of-sight networks are *not* random graphs, whose clustering
is near zero — :func:`erdos_renyi` provides the null model and
:func:`geometric_graph` the geometric alternative.
"""

from __future__ import annotations

import numpy as np

from repro.netgraph.graph import Graph


def path_graph(n: int) -> Graph:
    """Nodes ``0..n-1`` in a line; diameter ``n - 1``."""
    graph = Graph(nodes=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Nodes ``0..n-1`` in a ring; needs ``n >= 3``."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 nodes, got {n}")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int) -> Graph:
    """Every pair of the ``n`` nodes linked; clustering 1."""
    graph = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def star_graph(n_leaves: int) -> Graph:
    """Hub node 0 linked to ``n_leaves`` leaves; clustering 0."""
    graph = Graph(nodes=range(n_leaves + 1))
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def erdos_renyi(n: int, p: float, rng: np.random.Generator) -> Graph:
    """G(n, p) random graph — the paper's low-clustering null model."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    graph = Graph(nodes=range(n))
    for i in range(n):
        draws = rng.random(n - i - 1)
        for offset, draw in enumerate(draws):
            if draw < p:
                graph.add_edge(i, i + 1 + offset)
    return graph


def geometric_graph(
    positions: np.ndarray,
    radius: float,
) -> Graph:
    """Random geometric graph: link points closer than ``radius``.

    This is the line-of-sight construction itself, exposed as a
    generator so graph-level tests can target it without the trace
    machinery.  ``positions`` is an ``(n, 2)`` array; node keys are the
    row indices.
    """
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] < 2:
        raise ValueError(f"expected an (n, >=2) array, got shape {pts.shape}")
    n = pts.shape[0]
    graph = Graph(nodes=range(n))
    if n < 2:
        return graph
    plane = pts[:, :2]
    diff = plane[:, None, :] - plane[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    links = np.argwhere((dist < radius) & np.triu(np.ones((n, n), dtype=bool), k=1))
    for i, j in links:
        graph.add_edge(int(i), int(j))
    return graph
