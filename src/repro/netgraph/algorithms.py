"""Traversal algorithms: BFS distances, components, diameter.

The paper computes the *network diameter* as the longest shortest path
of the **largest connected component** of a line-of-sight snapshot —
the network may be disconnected for small radio ranges, so the plain
diameter would be infinite.  :func:`largest_component` plus
:func:`diameter` implement exactly that definition.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.netgraph.graph import Graph

Node = Hashable


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Hop distance from ``source`` to every reachable node.

    The source maps to 0.  Unreachable nodes are absent from the
    result, which doubles as a reachability test.
    """
    if source not in graph:
        raise KeyError(source)
    distances: dict[Node, int] = {source: 0}
    frontier: deque[Node] = deque([source])
    while frontier:
        node = frontier.popleft()
        next_hop = distances[node] + 1
        for neighbour in graph.neighbours(node):
            if neighbour not in distances:
                distances[neighbour] = next_hop
                frontier.append(neighbour)
    return distances


def shortest_path_length(graph: Graph, source: Node, target: Node) -> int:
    """Hop count of the shortest path; raises ``ValueError`` if disconnected."""
    distances = bfs_distances(graph, source)
    if target not in distances:
        raise ValueError(f"no path between {source!r} and {target!r}")
    return distances[target]


def connected_components(graph: Graph) -> list[set[Node]]:
    """All connected components, largest first.

    Ties between equal-sized components keep discovery order so the
    result is deterministic for a given insertion order.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = set(bfs_distances(graph, start))
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest connected component.

    An empty graph maps to an empty graph.
    """
    components = connected_components(graph)
    if not components:
        return Graph()
    return graph.subgraph(components[0])


def eccentricity(graph: Graph, node: Node) -> int:
    """Greatest hop distance from ``node`` within its component."""
    return max(bfs_distances(graph, node).values())


def diameter(graph: Graph, of_largest_component: bool = True) -> int:
    """Longest shortest path.

    With ``of_largest_component`` (the default, and the paper's
    definition) the graph is first restricted to its largest connected
    component; otherwise a disconnected input raises ``ValueError``.
    A graph with fewer than two nodes has diameter 0.
    """
    target = largest_component(graph) if of_largest_component else graph
    if target.node_count == 0:
        return 0
    if not of_largest_component and len(connected_components(target)) > 1:
        raise ValueError("graph is disconnected; diameter is undefined")
    best = 0
    for node in target.nodes():
        distances = bfs_distances(target, node)
        farthest = max(distances.values())
        if farthest > best:
            best = farthest
    return best
