"""Node- and graph-level metrics used by the spatial analysis.

The clustering coefficient follows Watts & Strogatz (1998), the
definition the paper cites: for a node with k neighbours, the fraction
of the k(k-1)/2 possible neighbour pairs that are themselves linked;
nodes with k < 2 contribute 0.  The paper reports the mean over all
users as representative of the whole network.
"""

from __future__ import annotations

from typing import Hashable

from repro.netgraph.graph import Graph

Node = Hashable


def degree_sequence(graph: Graph) -> list[int]:
    """Degrees of every node, in node insertion order."""
    return [graph.degree(node) for node in graph.nodes()]


def density(graph: Graph) -> float:
    """Edges present / edges possible; 0 for graphs with < 2 nodes."""
    n = graph.node_count
    if n < 2:
        return 0.0
    return 2.0 * graph.edge_count / (n * (n - 1))


def local_clustering(graph: Graph, node: Node) -> float:
    """Watts-Strogatz clustering coefficient of one node."""
    neighbours = graph.neighbours(node)
    k = len(neighbours)
    if k < 2:
        return 0.0
    links = 0
    neighbour_list = list(neighbours)
    for i, u in enumerate(neighbour_list):
        u_adj = graph.neighbours(u)
        for v in neighbour_list[i + 1:]:
            if v in u_adj:
                links += 1
    return 2.0 * links / (k * (k - 1))


def clustering_coefficients(graph: Graph) -> dict[Node, float]:
    """Local clustering coefficient for every node."""
    return {node: local_clustering(graph, node) for node in graph.nodes()}


def average_clustering(graph: Graph, count_low_degree: bool = True) -> float:
    """Mean local clustering coefficient.

    With ``count_low_degree`` (the Watts-Strogatz / networkx
    convention) nodes with fewer than two neighbours contribute 0 to
    the mean.  With ``count_low_degree=False`` the mean runs only over
    nodes where the coefficient is *defined* (degree >= 2) — the
    convention that matches the paper's "high median clustering"
    reading on sparse lands, where isolated users would otherwise
    drown the signal.  Returns 0 when no node qualifies.
    """
    if count_low_degree:
        nodes = graph.nodes()
    else:
        nodes = [node for node in graph.nodes() if graph.degree(node) >= 2]
    if not nodes:
        return 0.0
    return sum(local_clustering(graph, node) for node in nodes) / len(nodes)


def triangle_count(graph: Graph) -> int:
    """Number of distinct triangles in the graph."""
    triangles = 0
    for node in graph.nodes():
        neighbours = list(graph.neighbours(node))
        for i, u in enumerate(neighbours):
            u_adj = graph.neighbours(u)
            for v in neighbours[i + 1:]:
                if v in u_adj:
                    triangles += 1
    # Each triangle is counted once per corner.
    return triangles // 3
