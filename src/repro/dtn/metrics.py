"""Protocol comparison helpers."""

from __future__ import annotations

from repro.dtn.messages import Message
from repro.dtn.replay import ReplayResult, replay
from repro.dtn.routing import RoutingProtocol
from repro.trace import Trace


def compare_protocols(
    trace: Trace,
    r: float,
    messages: list[Message],
    protocols: list[RoutingProtocol],
    seed: int = 0,
) -> list[ReplayResult]:
    """Replay the same workload under several protocols.

    Every protocol sees the identical trace and message set, so
    differences in delivery ratio, delay and copies are attributable
    to the forwarding discipline alone.  Results keep the input
    protocol order.
    """
    if not protocols:
        raise ValueError("need at least one protocol to compare")
    return [replay(trace, r, messages, protocol, seed) for protocol in protocols]
