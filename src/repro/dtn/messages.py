"""DTN messages and workload generation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace import Trace


@dataclass(frozen=True)
class Message:
    """One unicast message to be carried opportunistically."""

    msg_id: str
    src: str
    dst: str
    created_at: float
    ttl: float = float("inf")

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message {self.msg_id!r} has src == dst")
        if self.ttl <= 0:
            raise ValueError(f"message {self.msg_id!r} needs a positive TTL")

    @property
    def expires_at(self) -> float:
        """Absolute expiry time."""
        return self.created_at + self.ttl

    def alive_at(self, t: float) -> bool:
        """True while the message may still be forwarded."""
        return self.created_at <= t < self.expires_at


def uniform_workload(
    trace: Trace,
    count: int,
    rng: np.random.Generator,
    ttl: float = float("inf"),
    min_presence: int = 10,
) -> list[Message]:
    """Random unicast messages between users of a trace.

    Sources and destinations are drawn uniformly from users observed
    in at least ``min_presence`` snapshots (ephemeral visitors make
    meaningless endpoints); each message is created at a time when its
    source is online, so the replay never starts from an absent
    carrier.
    """
    if count < 1:
        raise ValueError(f"need at least one message, got {count}")
    presence: dict[str, list[float]] = {}
    for snapshot in trace:
        for user in snapshot.users:
            presence.setdefault(user, []).append(snapshot.time)
    eligible = sorted(u for u, times in presence.items() if len(times) >= min_presence)
    if len(eligible) < 2:
        raise ValueError(
            f"trace has {len(eligible)} users with >= {min_presence} observations; "
            "need at least 2 for a workload"
        )
    messages: list[Message] = []
    for serial in range(count):
        src, dst = (str(u) for u in rng.choice(eligible, size=2, replace=False))
        times = presence[src]
        created_at = float(times[int(rng.integers(len(times)))])
        messages.append(
            Message(
                msg_id=f"m{serial:04d}",
                src=src,
                dst=dst,
                created_at=created_at,
                ttl=ttl,
            )
        )
    messages.sort(key=lambda m: m.created_at)
    return messages
