"""Trace-driven DTN replay — the paper's motivating application.

The introduction frames the whole measurement effort with delay-
tolerant networking: traces like these exist to drive "simulations of
communication schemes in delay tolerant networks and their performance
evaluation".  This package closes that loop: it replays collected
traces under the classic forwarding schemes and reports delivery ratio
and delay.

* :class:`~repro.dtn.routing.Epidemic` — flood to every encountered
  node (delay lower bound, copy upper bound);
* :class:`~repro.dtn.routing.DirectDelivery` — source holds the
  message until it meets the destination (copy lower bound);
* :class:`~repro.dtn.routing.TwoHopRelay` — source spreads copies to
  relays, relays deliver only to the destination;
* :class:`~repro.dtn.routing.FirstContact` — single copy handed to
  the first encountered node.
"""

from repro.dtn.messages import Message, uniform_workload
from repro.dtn.routing import (
    DirectDelivery,
    Epidemic,
    FirstContact,
    RoutingProtocol,
    TwoHopRelay,
)
from repro.dtn.replay import MessageOutcome, ReplayResult, replay
from repro.dtn.metrics import compare_protocols

__all__ = [
    "Message",
    "uniform_workload",
    "DirectDelivery",
    "Epidemic",
    "FirstContact",
    "RoutingProtocol",
    "TwoHopRelay",
    "MessageOutcome",
    "ReplayResult",
    "replay",
    "compare_protocols",
]
