"""Replay a message workload over a trace under one protocol."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.losgraph import graph_from_pairs
from repro.geometry.grid import planar_neighbour_pairs
from repro.dtn.messages import Message
from repro.dtn.routing import RoutingProtocol
from repro.trace import Trace


@dataclass(frozen=True)
class MessageOutcome:
    """What happened to one message."""

    message: Message
    delivered: bool
    delivery_time: float | None
    copies: int

    @property
    def delay(self) -> float | None:
        """Creation-to-delivery delay, or None when undelivered."""
        if not self.delivered or self.delivery_time is None:
            return None
        return self.delivery_time - self.message.created_at


@dataclass(frozen=True)
class ReplayResult:
    """Aggregate outcome of one protocol over one workload."""

    protocol: str
    outcomes: tuple[MessageOutcome, ...]

    @property
    def delivery_ratio(self) -> float:
        """Delivered messages / all messages."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.delivered) / len(self.outcomes)

    def delays(self) -> list[float]:
        """Delays of the delivered messages."""
        return [o.delay for o in self.outcomes if o.delay is not None]

    @property
    def median_delay(self) -> float | None:
        """Median delivery delay (None when nothing was delivered)."""
        delays = self.delays()
        if not delays:
            return None
        return float(np.median(delays))

    @property
    def mean_copies(self) -> float:
        """Average number of nodes ever holding a copy."""
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.copies for o in self.outcomes]))

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        median = self.median_delay
        return {
            "protocol": self.protocol,
            "messages": len(self.outcomes),
            "delivery_ratio": round(self.delivery_ratio, 3),
            "median_delay_s": round(median, 1) if median is not None else "-",
            "mean_copies": round(self.mean_copies, 1),
        }


def replay(
    trace: Trace,
    r: float,
    messages: list[Message],
    protocol: RoutingProtocol,
    seed: int = 0,
) -> ReplayResult:
    """Run one protocol over a trace and a message workload.

    The replay walks the columnar snapshots once; each alive,
    undelivered message advances by one protocol step per snapshot.
    Contact events arrive as integer-pair arrays from the grid-indexed
    neighbour search; the per-snapshot graph is only materialized when
    at least one message is active.  Messages whose TTL expires stop
    forwarding; copies are counted as the number of distinct nodes that
    ever held the message.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    rng = np.random.default_rng(seed)
    holders: dict[str, set[str]] = {m.msg_id: {m.src} for m in messages}
    delivered_at: dict[str, float] = {}
    ever_held: dict[str, set[str]] = {m.msg_id: {m.src} for m in messages}

    cols = trace.columns
    names = cols.users.names
    for index in range(cols.snapshot_count):
        now = float(cols.times[index])
        active = [
            m
            for m in messages
            if m.msg_id not in delivered_at and m.alive_at(now)
        ]
        if not active:
            continue
        user_ids, xyz = cols.slice_of(index)
        present = [names[uid] for uid in user_ids]
        if len(present) < 2:
            pairs = np.empty((0, 2), dtype=np.int64)
        else:
            pairs = planar_neighbour_pairs(xyz[:, :2], r)
        graph = graph_from_pairs(present, pairs)
        for message in active:
            current = holders[message.msg_id]
            new_holders, delivered = protocol.step(
                graph, current, message.src, message.dst, rng
            )
            holders[message.msg_id] = new_holders
            ever_held[message.msg_id] |= new_holders
            if delivered:
                delivered_at[message.msg_id] = now

    outcomes = tuple(
        MessageOutcome(
            message=m,
            delivered=m.msg_id in delivered_at,
            delivery_time=delivered_at.get(m.msg_id),
            copies=len(ever_held[m.msg_id]),
        )
        for m in messages
    )
    return ReplayResult(protocol=protocol.name, outcomes=outcomes)
