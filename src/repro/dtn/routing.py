"""Forwarding schemes over snapshot adjacency.

A protocol's :meth:`~RoutingProtocol.step` advances one message by one
snapshot: given the current line-of-sight graph and the set of nodes
holding a copy, it returns the new holder set and whether the
destination was reached.  One transfer hop per snapshot models the
finite transfer opportunity a τ-second contact represents (flooding an
entire connected component in zero time would overstate what a 10 s
Bluetooth contact can carry).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.netgraph import Graph


class RoutingProtocol(abc.ABC):
    """A DTN forwarding discipline."""

    #: Human-readable protocol name (used in result tables).
    name: str = "abstract"

    @abc.abstractmethod
    def step(
        self,
        graph: Graph,
        holders: set[str],
        src: str,
        dst: str,
        rng: np.random.Generator,
    ) -> tuple[set[str], bool]:
        """One snapshot of forwarding for one message.

        Returns ``(new_holders, delivered)``.  ``holders`` always
        contains at least the current carriers; implementations must
        not mutate it in place.
        """

    @staticmethod
    def _neighbours_of(graph: Graph, nodes: set[str]) -> set[str]:
        found: set[str] = set()
        for node in nodes:
            if node in graph:
                found |= graph.neighbours(node)
        return found


class Epidemic(RoutingProtocol):
    """Flood: every holder copies to every current neighbour.

    Delivery delay is minimal among all schemes (it explores every
    opportunity) at maximal copy cost — the canonical upper bound the
    paper's motivating literature evaluates against.
    """

    name = "epidemic"

    def step(self, graph, holders, src, dst, rng):
        new_holders = holders | self._neighbours_of(graph, holders)
        return new_holders, dst in new_holders


class DirectDelivery(RoutingProtocol):
    """Source keeps the single copy until it meets the destination."""

    name = "direct"

    def step(self, graph, holders, src, dst, rng):
        if src in graph and dst in graph.neighbours(src):
            return set(holders), True
        return set(holders), False


class TwoHopRelay(RoutingProtocol):
    """Source hands copies to relays; relays deliver only to ``dst``.

    The classic Grossglauser-Tse two-hop scheme: spatial diversity
    without epidemic copy explosion.
    """

    name = "two-hop"

    def step(self, graph, holders, src, dst, rng):
        new_holders = set(holders)
        if src in graph:
            new_holders |= graph.neighbours(src)
        delivered = any(
            holder in graph and dst in graph.neighbours(holder)
            for holder in new_holders
        )
        return new_holders, delivered


class FirstContact(RoutingProtocol):
    """Single copy, handed to a uniformly chosen current neighbour.

    The copy performs a random walk over contact opportunities; cheap
    but slow — the lower bound on copies among mobile schemes.
    """

    name = "first-contact"

    def step(self, graph, holders, src, dst, rng):
        (carrier,) = holders if len(holders) == 1 else (sorted(holders)[0],)
        if carrier not in graph:
            return {carrier}, False
        neighbours = sorted(graph.neighbours(carrier))
        if not neighbours:
            return {carrier}, False
        if dst in neighbours:
            return {carrier}, True
        next_carrier = neighbours[int(rng.integers(len(neighbours)))]
        return {next_carrier}, False
