"""The paper's published numbers, in one place.

Every quantitative statement §3/§4 makes about the three target lands
is recorded here so tests, benchmarks and EXPERIMENTS.md all assert
against the same source.  Values the paper gives as prose ("less than
20 seconds", "between 700 and 800") are stored as closed ranges.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperTargets:
    """Published measurements for one target land (24 h trace)."""

    land: str
    #: §3: total number of unique users over the 24 h trace.
    unique_users: int
    #: §3: average number of concurrently logged-in users.
    mean_concurrency: float
    #: §4: median contact time at r_b = 10 m, seconds.
    ct_median_rb: float
    #: §4: median contact time at r_w = 80 m, seconds.
    ct_median_rw: float
    #: §4: median inter-contact time, seconds (range as given in prose).
    ict_median: tuple[float, float]
    #: §4: median first-contact time at r_b, seconds ((lo, hi) band).
    ft_median_rb: tuple[float, float]
    #: §4: median first-contact time at r_w, seconds ((lo, hi) band).
    ft_median_rw: tuple[float, float]
    #: §4 Fig. 2(a): fraction of users with no neighbour at r_b.
    isolation_rb: float
    #: §4 Fig. 4(a): 90th percentile of travel length, meters.
    travel_p90: float

    @property
    def ict_median_mid(self) -> float:
        """Midpoint of the published ICT median band."""
        lo, hi = self.ict_median
        return (lo + hi) / 2.0


#: Keyed by the land names used throughout the paper.
PAPER_TARGETS: dict[str, PaperTargets] = {
    "Apfel Land": PaperTargets(
        land="Apfel Land",
        unique_users=1568,
        mean_concurrency=13.0,
        ct_median_rb=30.0,
        ct_median_rw=70.0,
        ict_median=(350.0, 450.0),
        ft_median_rb=(200.0, 400.0),
        ft_median_rw=(20.0, 45.0),
        isolation_rb=0.60,
        travel_p90=400.0,
    ),
    "Dance Island": PaperTargets(
        land="Dance Island",
        unique_users=3347,
        mean_concurrency=34.0,
        ct_median_rb=100.0,
        ct_median_rw=300.0,
        ict_median=(700.0, 800.0),
        ft_median_rb=(0.0, 20.0),
        ft_median_rw=(0.0, 5.0),
        isolation_rb=0.10,
        travel_p90=230.0,
    ),
    "Isle of View": PaperTargets(
        land="Isle of View",
        unique_users=2656,
        mean_concurrency=65.0,
        ct_median_rb=60.0,
        ct_median_rw=200.0,
        ict_median=(350.0, 450.0),
        ft_median_rb=(0.0, 20.0),
        ft_median_rw=(0.0, 5.0),
        isolation_rb=0.02,
        travel_p90=500.0,
    ),
}

#: Global observations that are not land-specific.
SESSION_CAP_SECONDS = 4.0 * 3600.0  # longest observed login ~4 h
SESSION_P90_SECONDS = 3600.0  # 90 % of users logged in < 1 h
LONG_TRIP_FRACTION_IOV = 0.02  # ~2 % of Isle of View users travel > 2000 m
LONG_TRIP_METERS = 2000.0
