"""Campus-WLAN scenario: discrete access points as zones.

The IMPACT campus traces (Hsu & Helmy, PAPERS.md) observe mobility as
*AP association events*, not coordinates — hundreds of access points
scattered over a kilometre-scale campus, each log line saying "device
X associated with AP Y".  This preset reproduces that geometry: a
large outdoor land, a dozen buildings driving POI attraction, a
Gauss–Markov strolling population and a random-direction courier
population (the two models this scenario dogfoods), and a jittered
grid of a few hundred APs for the
:class:`~repro.monitors.association.AssociationMonitor` to observe.

The observable trace takes values on the discrete AP set, so zone
occupation degenerates to an AP-popularity histogram and session
extraction recovers association episodes — the "very different
geometry" ROADMAP item 4 asks the zone/session machinery to survive.

Everything is deterministic from the preset seed (AP placement,
building layout) plus the world seed (arrivals, motion), matching the
package-wide seeded-RNG contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.lands.presets import LandPreset, _session_law, paper_presets
from repro.metaverse import Land, Population, SessionProcess
from repro.mobility import GaussMarkov, PoiMobility, PointOfInterest, RandomDirection
from repro.monitors.association import ASSOCIATION_RANGE
from repro.stats import TruncatedParetoExp

#: Campus footprint, meters (a kilometre-scale campus, not an SL region).
CAMPUS_SIZE = 1024.0

#: Default AP count — "hundreds of discrete APs as zones".
DEFAULT_AP_COUNT = 300


@dataclass
class CampusPreset(LandPreset):
    """A land preset that also carries its WLAN infrastructure.

    ``access_points`` is the ``(n, 2)`` AP coordinate array the
    association monitor observes; ``association_range`` is the WLAN
    cell radius in meters.
    """

    access_points: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    association_range: float = ASSOCIATION_RANGE


def campus_access_points(
    n_aps: int = DEFAULT_AP_COUNT,
    size: float = CAMPUS_SIZE,
    seed: int = 0,
    jitter: float = 8.0,
) -> np.ndarray:
    """A jittered-grid AP deployment, ``(n_aps, 2)``, meters.

    Real campus deployments follow corridors and floors rather than a
    survey grid; a deterministic jitter (from ``seed``) breaks the
    artificial regularity while keeping coverage roughly uniform.
    """
    if n_aps < 1:
        raise ValueError(f"need at least one access point, got {n_aps}")
    rng = np.random.default_rng(seed)
    side = math.ceil(math.sqrt(n_aps))
    pitch = size / side
    cells = np.arange(n_aps)
    rows, cols = np.divmod(cells, side)
    xy = np.empty((n_aps, 2), dtype=np.float64)
    xy[:, 0] = (cols + 0.5) * pitch
    xy[:, 1] = (rows + 0.5) * pitch
    xy += rng.normal(0.0, jitter, size=(n_aps, 2))
    return np.clip(xy, 0.0, size)


def campus_wlan(
    n_aps: int = DEFAULT_AP_COUNT,
    size: float = CAMPUS_SIZE,
    hourly_rate: float = 240.0,
    seed: int = 0,
    name: str = "Campus WLAN",
) -> CampusPreset:
    """The campus-WLAN scenario preset.

    Three populations share the campus:

    * **students** — POI attraction between twelve buildings with
      heavy-tailed dwell times (a lecture outlasts a coffee);
    * **strollers** — :class:`~repro.mobility.gauss_markov.GaussMarkov`
      walkers (velocity-correlated wandering across the quads);
    * **couriers** — :class:`~repro.mobility.random_direction.
      RandomDirection` crossers at bike speed.

    ``hourly_rate`` is the total arrival rate; the split and session
    laws put mean concurrency around 150 devices, well under the
    land's 600 cap.  Build a world with ``campus_wlan().build(seed)``
    and observe it with an
    :class:`~repro.monitors.association.AssociationMonitor` over
    :attr:`CampusPreset.access_points`.
    """
    if hourly_rate <= 0:
        raise ValueError(f"hourly rate must be positive, got {hourly_rate}")
    rng = np.random.default_rng(seed)
    buildings = []
    names = [
        "library", "lecture-hall-a", "lecture-hall-b", "student-union",
        "cafeteria", "engineering", "sciences", "gym",
        "dorm-north", "dorm-south", "admin", "bookstore",
    ]
    side = 4
    pitch = size / (side + 1)
    for k, building in enumerate(names):
        row, col = divmod(k, side)
        buildings.append(
            PointOfInterest(
                name=building,
                x=float(np.clip((col + 1) * pitch + rng.normal(0, 40), 40, size - 40)),
                y=float(np.clip((row + 1) * pitch + rng.normal(0, 40), 40, size - 40)),
                radius=float(rng.uniform(18, 30)),
                weight=float(rng.uniform(0.8, 3.0)),
                spawn_weight=float(rng.uniform(0.5, 2.0)),
            )
        )
    land = Land(
        name,
        width=size,
        height=size,
        pois=buildings,
        max_concurrent=600,
    )
    # Class blocks and library stints: long heavy-tailed dwells.
    dwell = TruncatedParetoExp(alpha=1.5, rate=1.0 / 1500.0, low=60.0, high=7200.0)
    students = Population(
        "students",
        SessionProcess(
            hourly_rate=hourly_rate * 0.7,
            session_law=_session_law(2700.0, sigma=0.8),
            user_prefix="student",
            revisit_probability=0.35,
        ),
        PoiMobility(
            land.width,
            land.height,
            buildings,
            stay_probability=0.70,
            explore_probability=0.05,
            dwell=dwell,
            micro_move_scale=1.0,
        ),
    )
    strollers = Population(
        "strollers",
        SessionProcess(
            hourly_rate=hourly_rate * 0.2,
            session_law=_session_law(1200.0),
            user_prefix="stroller",
        ),
        GaussMarkov(
            land.width,
            land.height,
            alpha=0.85,
            mean_speed=1.4,
            speed_sigma=0.4,
            step_seconds=10.0,
            edge_margin=32.0,
        ),
    )
    couriers = Population(
        "couriers",
        SessionProcess(
            hourly_rate=hourly_rate * 0.1,
            session_law=_session_law(1800.0, sigma=0.6),
            user_prefix="courier",
        ),
        RandomDirection(
            land.width,
            land.height,
            min_speed=2.5,
            max_speed=6.0,
            min_pause=0.0,
            max_pause=30.0,
        ),
    )
    return CampusPreset(
        land=land,
        populations=[students, strollers, couriers],
        # No avatar-attraction mechanic on a campus: nobody walks
        # toward a stranger because they logged in.
        attraction_probability=0.0,
        access_points=campus_access_points(n_aps, size, seed=seed),
        association_range=ASSOCIATION_RANGE,
    )


def scenario_presets() -> dict[str, LandPreset]:
    """Every named scenario: the three paper lands plus the campus.

    The CLI's ``--land`` choices map onto these keys; see
    ``docs/scenarios.md`` for the catalogue.
    """
    presets: dict[str, LandPreset] = dict(paper_presets())
    campus = campus_wlan()
    presets[campus.name] = campus
    return presets
