"""Calibrated presets of the paper's three target lands.

Each preset encodes a behavioural archetype from §3 of the paper:

* :func:`apfel_land` — "a german-speaking arena for newbies": an
  out-door, sparse land (1568 unique visitors, 13 concurrent on
  average) where users scatter between small attractions;
* :func:`dance_island` — "a virtual discotheque": an in-door land
  (3347 unique, 34 concurrent) dominated by a dance floor and a bar;
* :func:`isle_of_view` — "a land in which an event (St. Valentines)
  was organized" (2656 unique, 65 concurrent), with a scheduled event
  boosting arrivals toward the venue.

`generic_land` builds un-calibrated worlds for tests and ablations;
:mod:`repro.lands.calibration` records the paper's published numbers
for every land so experiments assert against a single source.

Beyond the paper's geometry, :func:`~repro.lands.campus.campus_wlan`
builds a kilometre-scale campus observed as discrete AP associations
(the IMPACT idiom); :func:`~repro.lands.campus.scenario_presets`
collects every named scenario for the CLI.
"""

from repro.lands.presets import (
    LandPreset,
    apfel_land,
    dance_island,
    generic_land,
    isle_of_view,
    money_land,
    paper_presets,
)
from repro.lands.campus import (
    CampusPreset,
    campus_access_points,
    campus_wlan,
    scenario_presets,
)
from repro.lands.calibration import PAPER_TARGETS, PaperTargets

__all__ = [
    "LandPreset",
    "apfel_land",
    "dance_island",
    "generic_land",
    "isle_of_view",
    "money_land",
    "paper_presets",
    "CampusPreset",
    "campus_access_points",
    "campus_wlan",
    "scenario_presets",
    "PAPER_TARGETS",
    "PaperTargets",
]
