"""World builders for the three target lands (plus a generic one).

Calibration logic (documented per preset below) follows Little's law:
``mean concurrency = arrival rate x mean session length``, with the
arrival rate chosen so the 24 h unique-visitor count matches §3 of the
paper and the session law shaped to the paper's login-time
observations (cap ~4 h, 90 % under an hour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.metaverse import (
    Land,
    Population,
    ScheduledEvent,
    SessionProcess,
    World,
)
from repro.metaverse.sessions import EVENING_PROFILE, MAX_SESSION_SECONDS
from repro.mobility import (
    GaussMarkov,
    LevyWalk,
    PoiMobility,
    PointOfInterest,
    RandomDirection,
    RandomWaypoint,
    StaticModel,
)
from repro.stats import LogNormal, TruncatedParetoExp


@dataclass
class LandPreset:
    """A ready-to-build world configuration."""

    land: Land
    populations: list[Population]
    events: tuple[ScheduledEvent, ...] = ()
    attraction_probability: float = 0.004

    def build(self, seed: int = 0, dt: float = 1.0, start_time: float = 0.0) -> World:
        """Instantiate a fresh world for this preset."""
        return World(
            self.land,
            # Worlds mutate nothing inside populations, but give each
            # build its own list so presets can be reused.
            list(self.populations),
            events=self.events,
            seed=seed,
            dt=dt,
            attraction_probability=self.attraction_probability,
            start_time=start_time,
        )

    @property
    def name(self) -> str:
        """The land's display name."""
        return self.land.name


def _session_law(mean_seconds: float, sigma: float = 1.0) -> LogNormal:
    """Lognormal session law with the requested (uncapped) mean.

    The 4 h cap removes so little mass for these parameters that the
    capped mean stays within a few percent of the target.
    """
    mu = math.log(mean_seconds) - 0.5 * sigma * sigma
    return LogNormal(mu=mu, sigma=sigma, cap=MAX_SESSION_SECONDS)


def apfel_land() -> LandPreset:
    """Apfel Land: out-door, sparse, newbie arena.

    Calibration: 1568 unique / 24 h → 65.3 arrivals/h; 13 mean
    concurrent → mean session ≈ 13 / 65.3 h ≈ 716 s.  Spatially, small
    scattered attractions (welcome area, info boards, sandbox corners)
    plus a large exploration probability keep ~60 % of users with no
    Bluetooth-range neighbour, and spread-out uniform spawning makes
    the first contact slow (median FT ≈ 300 s in the paper).
    """
    # The attractions all sit in the northern stretch of the land;
    # users spawn uniformly (newbies materialize anywhere), so a login
    # in the empty south starts out of range of everyone — that is
    # what makes Apfel's first contact slow at both radio ranges.
    pois = [
        PointOfInterest("welcome-area", 128.0, 200.0, radius=18.0, weight=2.5),
        PointOfInterest("info-boards", 52.0, 180.0, radius=12.0, weight=1.2),
        PointOfInterest("sandbox-north", 204.0, 182.0, radius=14.0, weight=1.2),
        PointOfInterest("freebie-shop", 84.0, 232.0, radius=10.0, weight=1.2),
        PointOfInterest("gathering-lawn", 172.0, 232.0, radius=12.0, weight=1.0),
        PointOfInterest("duck-pond", 30.0, 120.0, radius=12.0, weight=0.8),
        PointOfInterest("bus-kiosk", 230.0, 120.0, radius=10.0, weight=0.8),
    ]
    land = Land("Apfel Land", pois=pois)
    # Long heavy-tailed dwells: newbies stop and chat for minutes.
    dwell = TruncatedParetoExp(alpha=1.5, rate=1.0 / 900.0, low=30.0, high=5400.0)
    model = PoiMobility(
        land.width,
        land.height,
        pois,
        stay_probability=0.60,
        explore_probability=0.15,
        dwell=dwell,
        micro_move_scale=0.8,
        # Lost newcomers shuffle around where they landed instead of
        # beelining to an attraction — the behaviour behind Apfel's
        # slow first contacts and short travel lengths.  Short steps:
        # an idling newbie does not drift across the lawn.
        local_wander_probability=0.55,
        local_wander_reach=6.0,
    )
    visitors = Population(
        "visitors",
        SessionProcess(
            hourly_rate=46.3,
            session_law=_session_law(650.0),
            diurnal_profile=EVENING_PROFILE,
            user_prefix="apfel",
            revisit_probability=0.25,
        ),
        model,
    )
    # Newbie builders head for the sandbox corner and work alone —
    # Apfel is an arena for newcomers, and lone builders are what
    # pushes its isolated-user fraction to the paper's ~60 %.
    builders = Population(
        "builders",
        SessionProcess(
            hourly_rate=19.0,
            session_law=_session_law(650.0),
            diurnal_profile=EVENING_PROFILE,
            user_prefix="apfel-builder",
        ),
        StaticModel(land.width, land.height, region=(170.0, 70.0, 80.0)),
    )
    return LandPreset(land=land, populations=[visitors, builders])


def dance_island() -> LandPreset:
    """Dance Island: in-door discotheque with hard hot-spots.

    Calibration: 3347 unique / 24 h → 139.5 arrivals/h; 34 mean
    concurrent → mean session ≈ 877 s (club-hopping visits).  Nearly
    everyone spawns at the entry portal and packs the dance floor or
    the bar (stay probability 0.93), which produces the 10 %-isolation
    degree curve, the longest contact times of the three lands, and
    the shortest travel lengths (90th percentile ≈ 230 m).
    """
    # A tight dance floor (radius = the Bluetooth range) keeps everyone
    # on it in mutual contact; the temporal signature comes from the
    # floor <-> bar <-> lounge rotation: a contact ends when one of the
    # pair walks off the floor (CT ~ residence time), and the pair
    # re-meets after a bar stop or, much later, after a re-login
    # (long ICT).  The lounge sits > 80 m from the floor so the
    # rotation shapes inter-contacts at WiFi range too.
    pois = [
        PointOfInterest("entry-portal", 128.0, 72.0, radius=6.0, weight=0.4, spawn_weight=8.0),
        PointOfInterest("dance-floor", 128.0, 140.0, radius=12.0, weight=8.0, spawn_weight=1.0),
        PointOfInterest("bar", 182.0, 150.0, radius=7.0, weight=3.0, dwell_scale=2.2),
        PointOfInterest("chill-lounge", 52.0, 188.0, radius=8.0, weight=2.0, dwell_scale=2.8),
    ]
    land = Land("Dance Island", pois=pois)
    # Dancers hold a spot for a whole set before moving on.
    dwell = TruncatedParetoExp(alpha=1.4, rate=1.0 / 900.0, low=70.0, high=3600.0)
    model = PoiMobility(
        land.width,
        land.height,
        pois,
        stay_probability=0.62,
        explore_probability=0.01,
        dwell=dwell,
        micro_move_scale=1.0,
    )
    visitors = Population(
        "visitors",
        SessionProcess(
            hourly_rate=139.5,
            session_law=_session_law(500.0),
            diurnal_profile=EVENING_PROFILE,
            user_prefix="dance",
            # Club-hoppers: many short visits with frequent returns —
            # the re-logins are what stretches Dance Island's
            # inter-contact times past the other lands'.
            revisit_probability=0.45,
            revisit_gap=LogNormal(mu=math.log(3000.0), sigma=0.8, cap=6.0 * 3600.0),
        ),
        model,
    )
    return LandPreset(land=land, populations=[visitors])


def isle_of_view() -> LandPreset:
    """Isle of View: event land (St. Valentine's).

    Calibration: 2656 unique / 24 h with a 4 h event window boosting
    arrivals 2x → base rate ≈ 2656 / (20 + 2·4) h ≈ 94.9/h; 65 mean
    concurrent → mean session ≈ 2114 s (event visitors linger).  A
    small Lévy-walking "wanderer" population (≈2.5 % of arrivals)
    produces the paper's long-trip tail (~2 % of users above 2000 m).
    Everyone spawns at the landing point next to the venue, so the
    first contact is nearly immediate.
    """
    venue = PointOfInterest("valentine-stage", 128.0, 150.0, radius=16.0, weight=2.0)
    pois = [
        PointOfInterest("landing-point", 128.0, 118.0, radius=8.0, weight=1.0, spawn_weight=9.0),
        venue,
        PointOfInterest("gazebo", 80.0, 190.0, radius=9.0, weight=1.5),
        PointOfInterest("rose-garden", 180.0, 190.0, radius=10.0, weight=1.5),
        PointOfInterest("heart-fountain", 128.0, 210.0, radius=8.0, weight=1.2),
        PointOfInterest("photo-deck", 60.0, 110.0, radius=8.0, weight=0.8),
    ]
    land = Land("Isle of View", pois=pois)
    dwell = TruncatedParetoExp(alpha=1.4, rate=1.0 / 650.0, low=20.0, high=5400.0)
    model = PoiMobility(
        land.width,
        land.height,
        pois,
        stay_probability=0.80,
        explore_probability=0.02,
        dwell=dwell,
        micro_move_scale=0.6,
    )
    # Event-time logins use the same model but with the venue boosted.
    event = ScheduledEvent(
        name="St. Valentine's",
        start=10.0 * 3600.0,
        end=14.0 * 3600.0,
        venue=venue,
        arrival_boost=1.9,
        weight_boost=6.0,
    )
    event_model = PoiMobility(
        land.width,
        land.height,
        [event.boosted_venue() if p is venue else p for p in pois],
        stay_probability=0.84,
        explore_probability=0.01,
        dwell=dwell,
        micro_move_scale=0.6,
    )
    visitors = Population(
        "visitors",
        SessionProcess(
            hourly_rate=95.0,
            session_law=_session_law(1700.0),
            diurnal_profile=EVENING_PROFILE,
            user_prefix="iov",
            revisit_probability=0.30,
        ),
        model,
        event_model=event_model,
    )
    wanderers = Population(
        "wanderers",
        SessionProcess(
            hourly_rate=2.4,
            session_law=_session_law(2400.0, sigma=0.6),
            diurnal_profile=EVENING_PROFILE,
            user_prefix="iov-wanderer",
        ),
        LevyWalk(
            land.width,
            land.height,
            min_flight=20.0,
            max_flight=280.0,
            min_pause=5.0,
            max_pause=120.0,
            speed=3.2,
        ),
    )
    return LandPreset(land=land, populations=[visitors, wanderers], events=(event,))


def generic_land(
    n_pois: int = 4,
    hourly_rate: float = 100.0,
    mean_session: float = 1200.0,
    seed: int = 0,
    name: str = "Generic Land",
    mobility: str = "poi",
) -> LandPreset:
    """An un-calibrated land for tests and ablations.

    ``mobility`` selects the avatar model: ``"poi"`` (default),
    ``"rwp"`` (random waypoint), ``"levy"``, ``"gauss-markov"``
    (velocity-correlated wandering) or ``"random-direction"``
    (walk-to-the-border baseline).  POIs are placed on a deterministic
    jittered grid from ``seed``.
    """
    if n_pois < 1:
        raise ValueError(f"need at least one POI, got {n_pois}")
    rng = np.random.default_rng(seed)
    side = math.ceil(math.sqrt(n_pois))
    pitch = 256.0 / (side + 1)
    pois = []
    for k in range(n_pois):
        row, col = divmod(k, side)
        pois.append(
            PointOfInterest(
                name=f"poi-{k}",
                x=float(np.clip((col + 1) * pitch + rng.normal(0, 8), 10, 246)),
                y=float(np.clip((row + 1) * pitch + rng.normal(0, 8), 10, 246)),
                radius=float(rng.uniform(8, 14)),
                weight=float(rng.uniform(0.5, 3.0)),
                spawn_weight=float(rng.uniform(0.0, 2.0)),
            )
        )
    land = Land(name, pois=pois)
    if mobility == "poi":
        model = PoiMobility(land.width, land.height, pois)
    elif mobility == "rwp":
        model = RandomWaypoint(land.width, land.height)
    elif mobility == "levy":
        model = LevyWalk(land.width, land.height)
    elif mobility == "gauss-markov":
        model = GaussMarkov(land.width, land.height)
    elif mobility == "random-direction":
        model = RandomDirection(land.width, land.height)
    else:
        raise ValueError(f"unknown mobility kind {mobility!r}")
    visitors = Population(
        "visitors",
        SessionProcess(hourly_rate=hourly_rate, session_law=_session_law(mean_session)),
        model,
    )
    return LandPreset(land=land, populations=[visitors])


def money_land(
    hourly_rate: float = 80.0,
    camper_fraction: float = 0.6,
    name: str = "Money Land",
) -> LandPreset:
    """A camping/money land — the land type the paper *avoided*.

    "Lands with a large population are usually built to distribute
    virtual money: all a user has to do is to sit and wait for a long
    enough time to earn money."  Campers sit on arrival, so monitors
    read the ``{0,0,0}`` sitting artefact for most of the population
    and trip metrics become meaningless — which is exactly why such
    lands make poor measurement targets.  The preset exists to
    demonstrate (and test) that failure mode.
    """
    if not 0.0 < camper_fraction < 1.0:
        raise ValueError(f"camper fraction must be in (0, 1), got {camper_fraction}")
    money_spot = PointOfInterest("money-tree", 128.0, 128.0, radius=10.0, weight=3.0,
                                 spawn_weight=2.0)
    pois = [
        money_spot,
        PointOfInterest("shop", 60.0, 190.0, radius=8.0, weight=1.0),
    ]
    land = Land(name, pois=pois)
    campers = Population(
        "campers",
        SessionProcess(
            hourly_rate=hourly_rate * camper_fraction,
            session_law=_session_law(2400.0, sigma=0.7),
            user_prefix="camper",
        ),
        StaticModel(land.width, land.height, region=(128.0, 128.0, 12.0)),
        sits_on_arrival=True,
    )
    visitors = Population(
        "visitors",
        SessionProcess(
            hourly_rate=hourly_rate * (1.0 - camper_fraction),
            session_law=_session_law(900.0),
            user_prefix="visitor",
        ),
        PoiMobility(land.width, land.height, pois),
    )
    return LandPreset(land=land, populations=[campers, visitors])


def paper_presets() -> dict[str, LandPreset]:
    """The three target lands, keyed by their paper names."""
    return {
        "Apfel Land": apfel_land(),
        "Dance Island": dance_island(),
        "Isle of View": isle_of_view(),
    }
