"""The network backend's worker: claim, fetch, extract, report.

:class:`NetworkWorker` is the process behind ``slmob worker <url>``.
It is deliberately dumb — all scheduling intelligence (leases,
deadlines, re-dispatch, first-write-wins) lives on the coordinator —
and loops over four steps:

1. ``POST /v1/claim`` with its worker id; a ``204`` means no work is
   pending, so sleep the coordinator-advertised poll interval and ask
   again.
2. ``GET /v1/parts/<index>`` for the claimed task's part file, cached
   on local disk keyed by ``(run id, part index)`` — parts are
   immutable within a run, so a worker that executes many tasks over
   the same part pays the transfer once.
3. Run :func:`~repro.core.parallel.run_shard_file_task` over the
   cached file: memory-map the part, extract, encode the payload —
   the identical code path the process backend's pool workers run,
   which is what makes the distributed result bit-for-bit equal to
   the serial oracle.
4. ``POST /v1/results/<task id>`` with the pickled outcome; worker
   exceptions travel as ``("error", message)`` so the coordinator can
   fail the task deterministically instead of re-dispatching it.

A coordinator that stops answering (analysis finished, executor
closed) is the normal shutdown signal: the claim's transport retries
exhaust into :class:`~repro.service.transport.TransportUnavailable`
and :meth:`NetworkWorker.run` returns cleanly.

The ``chaos`` hook exists for the fault-injection tests: it lets a
test worker die right after claiming a task (``exit-after-claim``) or
stall mid-task (``sleep-after-claim:SECONDS``) to prove the
coordinator's lease expiry re-dispatches the work and discards the
straggler's late result.
"""

from __future__ import annotations

import os
import pickle
import socket
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.distributed.coordinator import PICKLE_PROTOCOL
from repro.service.transport import TransportUnavailable, request_bytes


def parse_chaos(spec: str | None):
    """Turn a chaos spec string into the worker's pre-task hook.

    ``exit-after-claim`` kills the process (``os._exit``) right after
    a task is claimed — a worker death with a lease held.
    ``sleep-after-claim:SECONDS`` stalls that long before extracting —
    a straggler whose lease expires under it.  ``None``/empty gives a
    no-op hook.
    """
    if not spec:
        return lambda: None
    if spec == "exit-after-claim":
        return lambda: os._exit(17)
    if spec.startswith("sleep-after-claim:"):
        delay = float(spec.split(":", 1)[1])
        return lambda: time.sleep(delay)
    raise ValueError(f"unknown chaos spec {spec!r}")


class NetworkWorker:
    """One claim/fetch/extract/report loop against a coordinator.

    Parameters
    ----------
    url:
        The coordinator's base URL (``http://host:port/v1``, as
        printed by ``slmob analyze --backend network`` or returned by
        the scheduler's ``network_url()``).  A trailing slash is
        tolerated.
    poll_wait:
        Idle sleep between claims, seconds; the coordinator's
        advertised interval (sent with every granted lease) takes
        over once a first task has been seen.
    timeout / retries / backoff:
        Per-request transport policy, shared with the ingest sink
        (:func:`~repro.service.transport.request_bytes`).
    chaos:
        Fault-injection hook run between claiming and extracting; see
        :func:`parse_chaos`.
    quiet:
        Suppress the per-task progress lines on stderr.
    """

    def __init__(
        self,
        url: str,
        *,
        poll_wait: float = 0.05,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        chaos: str | None = None,
        quiet: bool = False,
    ) -> None:
        self.url = url.rstrip("/")
        self.poll_wait = float(poll_wait)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.quiet = bool(quiet)
        self.worker_id = f"{socket.gethostname()}-{os.getpid()}"
        self.tasks_done = 0
        self._chaos = parse_chaos(chaos)
        self._cache_dir = tempfile.TemporaryDirectory(prefix="slmob-worker-")
        self._cached: dict[tuple[str, int], Path] = {}

    # -- wire helpers --------------------------------------------------------

    def _request(self, path: str, data: bytes | None = None) -> bytes:
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            headers={"Content-Type": "application/octet-stream"},
            method="POST" if data is not None else "GET",
        )
        _, _, body = request_bytes(
            request,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
        )
        return body

    def _claim(self) -> dict | None:
        body = self._request("/claim", self.worker_id.encode("utf-8"))
        return pickle.loads(body) if body else None

    def _fetch_part(self, run: str, index: int) -> Path:
        key = (run, index)
        path = self._cached.get(key)
        if path is not None and path.exists():
            return path
        path = Path(self._cache_dir.name) / f"{run}-{index:05d}.rtrc"
        path.write_bytes(self._request(f"/parts/{index}"))
        self._cached[key] = path
        return path

    def _report(self, tid: int, verdict: str, value: object) -> None:
        self._request(
            f"/results/{tid}",
            pickle.dumps((verdict, value), protocol=PICKLE_PROTOCOL),
        )

    def _log(self, message: str) -> None:
        if not self.quiet:
            import sys

            print(f"worker {self.worker_id}: {message}", file=sys.stderr)

    # -- the loop ------------------------------------------------------------

    def run_one(self) -> bool:
        """Claim and finish at most one task; False when none pending."""
        doc = self._claim()
        if doc is None:
            return False
        self.poll_wait = float(doc.get("poll_wait", self.poll_wait))
        self._chaos()
        tid, kind, part = doc["task"], doc["kind"], doc["part"]
        try:
            # Late import: keep worker startup (and the claim that
            # races other workers) ahead of the numpy import cost.
            from repro.core.parallel import run_shard_file_task

            path = self._fetch_part(doc["run"], part)
            payload = run_shard_file_task(str(path), kind, doc["params"])
        except Exception as exc:
            self._report(tid, "error", f"{type(exc).__name__}: {exc}")
            self._log(f"task {tid} ({kind}, part {part}) failed: {exc}")
        else:
            self._report(tid, "ok", payload)
            self.tasks_done += 1
            self._log(f"task {tid} ({kind}, part {part}) done")
        return True

    def run(self) -> int:
        """Serve until the coordinator goes away; tasks completed.

        The exit conditions are all coordinator-driven: a transport
        failure that survives the retry budget, or any HTTP error
        status (a claim has no non-transient failure mode a worker
        can fix), ends the loop cleanly.
        """
        self._log(f"serving {self.url}")
        try:
            while True:
                try:
                    busy = self.run_one()
                except TransportUnavailable:
                    self._log("coordinator unreachable; exiting")
                    return self.tasks_done
                except urllib.error.HTTPError as exc:
                    self._log(f"coordinator refused ({exc.code}); exiting")
                    return self.tasks_done
                if not busy:
                    time.sleep(self.poll_wait)
        finally:
            self.close()

    def close(self) -> None:
        """Drop the local part cache."""
        self._cache_dir.cleanup()
        self._cached.clear()
