"""The network backend's coordinator: lease tasks, serve parts, collect.

:class:`NetworkExecutor` is what ``PartScheduler(backend="network")``
holds instead of a process pool.  It runs a small stdlib HTTP server
(the same ``ThreadingHTTPServer`` plumbing the query service uses) on
whose routes remote :class:`~repro.distributed.worker.NetworkWorker`
processes — on this machine or any other that can reach the bound
address — pull work and push results:

==============================  ===========================================
``GET  /v1``                    coordinator status (JSON)
``POST /v1/claim``              lease one task (pickled doc; 204 when idle)
``GET  /v1/parts/<index>``      the part's immutable ``.rtrc`` bytes
``POST /v1/results/<task id>``  one pickled ``("ok", payload)`` /
                                ``("error", message)`` result
==============================  ===========================================

Scheduling is **lease-with-deadline**, the generalization of the
process backend's broken-pool discard/respawn: a claimed task must
report within ``task_deadline`` seconds or its lease expires and the
task re-enters the queue for any other worker (straggler re-dispatch,
worker-death reassignment — the coordinator cannot tell the two
apart and does not need to).  Each expiry costs one attempt; a task
that burns ``max_attempts`` leases fails the run.  Results are
first-write-wins: a re-dispatched straggler's late answer is accepted
if it arrives first and discarded otherwise — either way the merged
analysis is bit-identical, because every worker runs the same
deterministic :func:`~repro.core.parallel.extract_shard_task` body on
the same immutable part bytes.  A worker-side *exception* (as opposed
to a worker death) is deterministic and fails the task immediately —
retrying a ``ValueError`` on identical input buys nothing.

Task docs and results travel as **pickles** (params must round-trip
exactly — JSON would quietly turn tuples into lists), which means the
protocol is for *trusted* clusters only: bind to loopback or a
private network, exactly like the process backend's pipe.  Control
responses are canonical JSON via :func:`repro.service.encoding.encode`.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.service.encoding import encode, error_payload

#: Wire pickle protocol: the newest both 3.10 and 3.12 speak.
PICKLE_PROTOCOL = 4


class NetworkTaskError(RuntimeError):
    """A network task failed: worker exception or exhausted leases."""


@dataclass
class NetworkOptions:
    """Tuning knobs for the scheduler's network backend.

    Parameters
    ----------
    host / port:
        Bind address of the coordinator's HTTP server.  The defaults
        (loopback, ephemeral port) suit spawned local workers; bind a
        routable address to attach workers from other machines (the
        protocol is unauthenticated pickle — trusted networks only).
    spawn_workers:
        Local ``slmob worker`` subprocesses the executor launches and
        supervises itself (a dead one is respawned while a run is
        waiting, like the process backend respawns a broken pool).
        ``None`` resolves to the scheduler's worker cap; ``0`` spawns
        nothing — attach workers externally via ``slmob worker <url>``.
    task_deadline:
        Seconds a claimed task may stay unreported before its lease
        expires and the task is re-dispatched to another worker.
    max_attempts:
        Leases one task may burn (expiries, not worker errors — those
        fail immediately) before the run fails.
    poll_wait:
        Seconds an idle worker sleeps between claim attempts; handed
        to workers in every claim response so the coordinator sets the
        polling tempo.
    """

    host: str = "127.0.0.1"
    port: int = 0
    spawn_workers: int | None = None
    task_deadline: float = 60.0
    max_attempts: int = 3
    poll_wait: float = 0.05


@dataclass
class NetworkStats:
    """Counters the coordinator keeps about one executor's lifetime."""

    tasks_completed: int = 0
    tasks_failed: int = 0
    leases_granted: int = 0
    leases_expired: int = 0
    late_results: int = 0
    workers_respawned: int = 0
    workers_seen: set = field(default_factory=set)


class _Task:
    """One leased unit of work; guarded by the executor's condition."""

    __slots__ = (
        "tid", "kind", "part", "params", "status",
        "attempts", "deadline", "worker", "payload", "error",
    )

    def __init__(self, tid: int, kind: str, part: int, params: tuple) -> None:
        self.tid = tid
        self.kind = kind
        self.part = part
        self.params = params
        self.status = "pending"  # pending | running | done | failed
        self.attempts = 0
        self.deadline = 0.0
        self.worker: str | None = None
        self.payload: object = None
        self.error: NetworkTaskError | None = None


class NetworkExecutor:
    """Serve parts to workers and run task batches through them.

    Created lazily by :class:`~repro.core.parallel.PartScheduler` on
    the first multi-task network run (or explicitly via the
    scheduler's ``network_url()``); persistent across runs like the
    process pool — workers keep their part-file caches warm, and part
    indices stay stable because the scheduler guarantees parts are
    immutable.  :meth:`close` stops the server and terminates spawned
    workers; external workers notice the coordinator is gone and exit
    on their own.
    """

    def __init__(
        self,
        options: NetworkOptions | None = None,
        *,
        default_workers: int | None = None,
    ) -> None:
        self.options = options or NetworkOptions()
        self.stats = NetworkStats()
        self._run_id = uuid.uuid4().hex
        self._cond = threading.Condition()
        self._tasks: dict[int, _Task] = {}
        self._queue: list[int] = []
        self._parts: dict[int, Path] = {}
        self._next_tid = 0
        self._closed = False
        self._spawn_target = self._resolve_spawn(default_workers)
        self._procs: list[subprocess.Popen] = []
        server = ThreadingHTTPServer(
            (self.options.host, self.options.port), _CoordinatorHandler
        )
        server.daemon_threads = True
        server.executor = self  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="slmob-coordinator",
            daemon=True,
        )
        self._thread.start()

    def _resolve_spawn(self, default_workers: int | None) -> int:
        if self.options.spawn_workers is not None:
            return max(0, int(self.options.spawn_workers))
        return default_workers or (os.cpu_count() or 1)

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> str:
        """The coordinator's base URL (``http://host:port/v1``)."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/v1"

    @property
    def run_id(self) -> str:
        """Opaque id workers key their part caches by."""
        return self._run_id

    def close(self) -> None:
        """Stop serving, fail waiting runs, reap spawned workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for task in self._tasks.values():
                if task.status in ("pending", "running"):
                    task.status = "failed"
                    task.error = NetworkTaskError(
                        "coordinator closed while the task was outstanding"
                    )
            self._cond.notify_all()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=10.0)
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs.clear()

    # -- spawned local workers -----------------------------------------------

    def _spawn_worker(self) -> subprocess.Popen:
        """One supervised local worker, through the real CLI entry point."""
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", self.url, "--quiet"],
        )

    def _supervise_workers(self) -> None:
        """Top spawned workers up to target; respawn the dead.

        The network sibling of ``PartScheduler.discard_pool``: a
        worker killed mid-task (OOM, segfault, operator) left a lease
        that will expire and re-dispatch; this makes sure a live
        worker exists to pick the task up.  Called outside the lock —
        process spawning is slow.
        """
        alive = [p for p in self._procs if p.poll() is None]
        died = len(self._procs) - len(alive)
        if died:
            self.stats.workers_respawned += died
        self._procs = alive
        while len(self._procs) < self._spawn_target:
            self._procs.append(self._spawn_worker())

    # -- the run loop --------------------------------------------------------

    def run(
        self,
        kind: str,
        tasks: Sequence[tuple[int, tuple]],
        paths: Mapping[int, Path],
        wrap: Callable[[int, str, Exception], Exception],
    ) -> list[object]:
        """Run one task batch to completion; payloads in task order.

        ``paths`` maps each task's part index to the ``.rtrc`` file
        served to whichever worker claims it.  Blocks until every
        task is done or one fails; a failure cancels the rest of the
        batch and raises ``wrap(part_index, kind, cause)``.
        """
        with self._cond:
            if self._closed:
                raise ValueError("network executor is closed")
            self._parts.update(paths)
            batch: list[_Task] = []
            for index, params in tasks:
                task = _Task(self._next_tid, kind, index, params)
                self._next_tid += 1
                self._tasks[task.tid] = task
                self._queue.append(task.tid)
                batch.append(task)
            self._cond.notify_all()
        try:
            if self._spawn_target:
                self._supervise_workers()
            with self._cond:
                while True:
                    self._reap(time.monotonic())
                    failed = next(
                        (t for t in batch if t.status == "failed"), None
                    )
                    if failed is not None:
                        raise wrap(
                            failed.part, kind, failed.error
                        ) from failed.error
                    if all(t.status == "done" for t in batch):
                        return [t.payload for t in batch]
                    self._cond.wait(timeout=0.1)
                    if self._spawn_target:
                        # Leaving the lock briefly is fine: batch
                        # state only moves forward.
                        self._cond.release()
                        try:
                            self._supervise_workers()
                        finally:
                            self._cond.acquire()
        finally:
            with self._cond:
                for task in batch:
                    self._tasks.pop(task.tid, None)
                self._queue = [t for t in self._queue if t in self._tasks]

    def _reap(self, now: float) -> None:
        """Expire overdue leases; re-dispatch or fail.  Lock held."""
        for task in self._tasks.values():
            if task.status != "running" or now <= task.deadline:
                continue
            self.stats.leases_expired += 1
            if task.attempts >= self.options.max_attempts:
                task.status = "failed"
                task.error = NetworkTaskError(
                    f"no worker finished task {task.tid} ({task.kind}, part "
                    f"{task.part}) within {self.options.task_deadline:g}s in "
                    f"{task.attempts} attempt(s); last lease held by "
                    f"{task.worker!r}"
                )
            else:
                task.status = "pending"
                self._queue.append(task.tid)
            self._cond.notify_all()

    # -- handler-facing operations (each takes the lock) ---------------------

    def claim(self, worker: str) -> dict | None:
        """Lease the oldest pending task to ``worker``; None when idle."""
        with self._cond:
            self.stats.workers_seen.add(worker)
            self._reap(time.monotonic())
            while self._queue:
                task = self._tasks.get(self._queue.pop(0))
                if task is None or task.status != "pending":
                    continue
                task.status = "running"
                task.worker = worker
                task.attempts += 1
                task.deadline = time.monotonic() + self.options.task_deadline
                self.stats.leases_granted += 1
                return {
                    "task": task.tid,
                    "kind": task.kind,
                    "part": task.part,
                    "params": task.params,
                    "run": self._run_id,
                    "poll_wait": self.options.poll_wait,
                }
            return None

    def complete(self, tid: int, ok: bool, value: object) -> bool:
        """Record one worker's result; False for late/duplicate/unknown.

        First write wins: once a task is done (or failed), later
        results for it — a re-dispatched straggler finally reporting —
        are acknowledged and dropped.
        """
        with self._cond:
            task = self._tasks.get(tid)
            if task is None or task.status in ("done", "failed"):
                self.stats.late_results += 1
                return False
            if ok:
                task.status = "done"
                task.payload = value
                self.stats.tasks_completed += 1
            else:
                # Deterministic worker-side exception: same input,
                # same crash — fail the run now instead of burning
                # the remaining leases.
                task.status = "failed"
                task.error = NetworkTaskError(str(value))
                self.stats.tasks_failed += 1
            self._cond.notify_all()
            return True

    def part_path(self, index: int) -> Path | None:
        """The registered ``.rtrc`` file behind one part index."""
        with self._cond:
            return self._parts.get(index)

    def status(self) -> dict:
        """The ``GET /v1`` document."""
        with self._cond:
            states = [t.status for t in self._tasks.values()]
            return {
                "kind": "coordinator",
                "run": self._run_id,
                "parts": len(self._parts),
                "pending": states.count("pending"),
                "running": states.count("running"),
                "workers_seen": len(self.stats.workers_seen),
                "tasks_completed": self.stats.tasks_completed,
            }


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing; all scheduling lives on the executor."""

    server_version = "slmob-coordinator/1"
    protocol_version = "HTTP/1.1"
    # Same buffered-write setup as the query service: one segment per
    # response instead of a Nagle/delayed-ACK stall per header line.
    wbufsize = -1
    disable_nagle_algorithm = True

    @property
    def executor(self) -> NetworkExecutor:
        return self.server.executor  # type: ignore[attr-defined]

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(status, encode(payload), "application/json")

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        return self.rfile.read(length) if length > 0 else b""

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        segments = [s for s in self.path.split("/") if s]
        if segments == ["v1"]:
            self._reply_json(200, self.executor.status())
            return
        if len(segments) == 3 and segments[:2] == ["v1", "parts"]:
            try:
                index = int(segments[2])
            except ValueError:
                self._reply_json(404, error_payload("part index must be an integer"))
                return
            path = self.executor.part_path(index)
            if path is None:
                self._reply_json(404, error_payload(f"unknown part {index}"))
                return
            self._reply(200, path.read_bytes(), "application/octet-stream")
            return
        self._reply_json(404, error_payload(f"unknown path {self.path!r}"))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        segments = [s for s in self.path.split("/") if s]
        body = self._read_body()
        if segments == ["v1", "claim"]:
            worker = body.decode("utf-8", "replace").strip() or "anonymous"
            doc = self.executor.claim(worker)
            if doc is None:
                self._reply(204, b"", "application/octet-stream")
            else:
                self._reply(
                    200,
                    pickle.dumps(doc, protocol=PICKLE_PROTOCOL),
                    "application/octet-stream",
                )
            return
        if len(segments) == 3 and segments[:2] == ["v1", "results"]:
            try:
                tid = int(segments[2])
                verdict, value = pickle.loads(body)
                ok = verdict == "ok"
                if verdict not in ("ok", "error"):
                    raise ValueError(f"unknown verdict {verdict!r}")
            except Exception as exc:
                self._reply_json(400, error_payload(f"bad result document: {exc}"))
                return
            accepted = self.executor.complete(tid, ok, value)
            self._reply_json(200, {"accepted": accepted})
            return
        self._reply_json(404, error_payload(f"unknown POST path {self.path!r}"))

    def log_message(self, format: str, *args: object) -> None:
        pass
