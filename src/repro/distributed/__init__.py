"""Distributed part-task execution: the scheduler's network backend.

The :class:`~repro.core.parallel.PartScheduler` already expresses all
analysis as picklable ``(kind, part, params)`` tasks over immutable
``.rtrc`` part files — exactly the shape a multi-machine fan-out
needs.  This package adds that fan-out with nothing but the standard
library:

* :class:`NetworkExecutor` (:mod:`repro.distributed.coordinator`) —
  an in-process HTTP coordinator that leases tasks to workers, serves
  part files by index, collects encoded payloads, and re-dispatches
  the tasks of slow or dead workers after a deadline;
* :class:`NetworkWorker` (:mod:`repro.distributed.worker`) — the
  remote half (``slmob worker <url>``): claim a task, fetch and cache
  its part file, run :func:`~repro.core.parallel.extract_shard_task`,
  stream the :func:`~repro.core.parallel.encode_payload` result back.

``PartScheduler(backend="network")`` wires the executor in; every
analyzer that delegates to the scheduler (sharded, windowed, live)
gains the backend for free, and the results stay bit-for-bit equal to
the serial oracle at any worker count — including workers killed
mid-task (``tests/unit/distributed/``).
"""

from repro.distributed.coordinator import (
    NetworkExecutor,
    NetworkOptions,
    NetworkStats,
    NetworkTaskError,
)
from repro.distributed.worker import NetworkWorker

__all__ = [
    "NetworkExecutor",
    "NetworkOptions",
    "NetworkStats",
    "NetworkTaskError",
    "NetworkWorker",
]
