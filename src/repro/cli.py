"""Command-line interface: ``slmob`` / ``python -m repro``.

Ten subcommands cover the workflow end to end (full reference with
examples: ``docs/cli.md``)::

    slmob simulate --land dance --hours 2 --out dance.rtrc
    slmob simulate --land dance --monitor sensors --sensor-model pathloss \
        --out lossy.rtrc
    slmob simulate --land campus --monitor association --out campus.rtrc
    slmob crawl --land dance --hours 8 --out live.rtrc --follow
    slmob crawl --land campus --monitor association --out campus-live.rtrc
    slmob crawl --land dance --hours 8 --out live-shards --follow
    slmob crawl --land dance --out http://127.0.0.1:8700/v1/crawl
    slmob convert dance.csv.gz dance.rtrc
    slmob analyze dance.rtrc --shards 4 --backend process
    slmob analyze dance.rtrc --shards 4 --backend network --workers 4
    slmob analyze live-shards --follow --backend process
    slmob serve live-shards --port 8700 --ingest
    slmob worker http://127.0.0.1:8831/v1
    slmob shard-export dance.rtrc shards/ --shards 8
    slmob compact live-shards --shards 4
    slmob validate dance.rtrc
    slmob experiments --hours 3          # paper-vs-measured report
    slmob experiments --full --out EXPERIMENTS.md

``simulate`` runs a calibrated land under a monitor and writes the
trace in one shot; ``crawl`` runs the same measurement *streaming* —
snapshots append round by round to a single ``.rtrc`` store
(:class:`~repro.trace.RtrcAppender`) or, given a suffix-less output
path, to a shard directory where every committed round becomes its
own immutable shard file (:class:`~repro.trace.RtrcDirAppender`);
``--follow`` analyzes the growing store incrementally either way;
``convert`` transcodes between the CSV / JSONL / binary ``.rtrc``
formats (suffix decides); ``analyze`` recomputes every §3 metric from
a trace file — with ``--shards K`` the heavy extractions fan out over
K time shards, on threads or (``--backend process``) spawned workers
that memmap-load per-shard ``.rtrc`` files, and with ``--follow`` it
tails a store or shard directory another process is appending to
(``--backend`` fans the catch-up extractions too); with ``--backend
network`` the analysis fans over ``worker`` processes — possibly on
other machines — attached to an HTTP coordinator the analyze process
hosts (``--workers N`` spawns local ones, ``--listen`` binds a
routable address for remote ones); ``serve`` holds
live followers over one or more stores and answers cached JSON
queries (contacts / sessions / zones / graph metrics) over HTTP,
optionally accepting crawl rounds via ``POST`` — the target of
``crawl --out http://...``; ``shard-export``
materializes per-shard files (plus a manifest) for external workers;
``compact`` folds many small append-round shards into balanced ones
and trims the capacity slack of appendable single files;
``experiments`` regenerates the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.core import (
    BLUETOOTH_RANGE,
    WIFI_RANGE,
    LiveAnalyzer,
    StoreChangedError,
    TraceAnalyzer,
)
from repro.core.report import log_grid, render_ccdf_table, render_summary_table
from repro.lands import scenario_presets
from repro.monitors import (
    AssociationMonitor,
    Crawler,
    PathLossModel,
    SensorNetwork,
    stream_monitors,
)
from repro.service import DEFAULT_INGEST_BODY_LIMIT, DEFAULT_INGEST_BUDGET
from repro.trace import (
    CompactionPolicy,
    RtrcAppender,
    RtrcDirAppender,
    StoreInUseError,
    TraceFormatError,
    compact_rtrc_store,
    compact_shard_dir,
    list_rtrc_dir,
    read_trace,
    retain_shard_dir,
    shard_dir_slack,
    tier_shard_dir,
    trace_format,
    validate_trace,
    write_trace,
)

_LAND_KEYS = {
    "apfel": "Apfel Land",
    "campus": "Campus WLAN",
    "dance": "Dance Island",
    "iov": "Isle of View",
}


def _build_world(args: argparse.Namespace):
    """Land preset + warmed-up world shared by ``simulate`` and ``crawl``."""
    land_name = _LAND_KEYS[args.land]
    preset = scenario_presets()[land_name]
    world = preset.build(seed=args.seed, start_time=args.start_hour * 3600.0)
    if args.spinup > 0:
        world.run_until(world.now + args.spinup)
    return land_name, preset, world


def _make_monitor(args: argparse.Namespace, preset, sink=None):
    """The monitor behind ``--monitor`` (and its sensor-channel flags).

    Returns ``None`` (after printing guidance) when the combination is
    invalid — association needs a land that carries access points, and
    the sensor network buffers in script memory so it cannot stream to
    a crawl sink.
    """
    if args.monitor == "crawler":
        return Crawler(tau=args.tau, mimic=not args.naive, sink=sink)
    if args.monitor == "association":
        access_points = getattr(preset, "access_points", None)
        if access_points is None or len(access_points) == 0:
            print(
                f"--monitor association needs a land with WLAN access "
                f"points; {preset.land.name!r} has none (try --land campus)",
                file=sys.stderr,
            )
            return None
        return AssociationMonitor(
            access_points,
            tau=args.tau,
            association_range=preset.association_range,
            sink=sink,
        )
    # sensors: detections buffer in 16 KB script caches and flush
    # through the rate-limited web server, so there is no sink path.
    channel = None
    if args.sensor_model == "pathloss":
        channel = PathLossModel(shadowing_sigma=args.sensor_sigma)
    return SensorNetwork(tau=args.tau, channel=channel, seed=args.seed)


def _metaverse_trace_cli(args: argparse.Namespace):
    """The synthetic metaverse workload behind ``--land metaverse``.

    Deterministic in (``--seed``, ``--users``, ``--hours``, ``--tau``)
    alone — there is no world to monitor, so ``--spinup`` /
    ``--start-hour`` / ``--monitor`` do not apply.
    """
    import numpy as np

    from repro.trace import metaverse_trace

    if args.monitor != "crawler":
        print(
            "--land metaverse generates its trace directly; --monitor "
            "does not apply (drop the flag)",
            file=sys.stderr,
        )
        return None
    steps = max(1, round(args.hours * 3600.0 / args.tau))
    rng = np.random.default_rng(args.seed)
    return metaverse_trace(args.users, steps, rng, tau=args.tau)


def _replay_rounds(trace, sink, round_seconds: float):
    """Append a prebuilt trace to a crawl sink, yielding round boundaries.

    The generator mirrors :func:`~repro.monitors.stream_monitors`: it
    appends snapshots and yields the clock whenever a round's worth of
    trace time has been appended — the caller commits, exactly as in a
    live crawl, so a streamed metaverse crawl and a buffered simulate
    produce identical stores.
    """
    sink.metadata = trace.metadata
    cols = trace.columns
    names = cols.users.names
    next_round = float(cols.times[0]) + round_seconds
    for i, t in enumerate(cols.times):
        t = float(t)
        if t > next_round:
            yield next_round
            next_round += round_seconds
        lo = int(cols.snapshot_offsets[i])
        hi = int(cols.snapshot_offsets[i + 1])
        sink.append_snapshot(
            t, [names[j] for j in cols.user_ids[lo:hi]], cols.xyz[lo:hi]
        )
    yield float(cols.times[-1])


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.land == "metaverse":
        trace = _metaverse_trace_cli(args)
        if trace is None:
            return 2
        print(
            f"generating synthetic metaverse: {args.users} avatars for "
            f"{args.hours:.2f} h (tau={args.tau:g}s, seed={args.seed})...",
            file=sys.stderr,
        )
    else:
        land_name, preset, world = _build_world(args)
        monitor = _make_monitor(args, preset)
        if monitor is None:
            return 2
        print(
            f"simulating {land_name!r} for {args.hours:.2f} h "
            f"(tau={args.tau:g}s, seed={args.seed}, monitor={args.monitor})...",
            file=sys.stderr,
        )
        trace = monitor.monitor(world, args.hours * 3600.0)
    out = Path(args.out)
    write_trace(trace, out)
    print(
        f"wrote {out}: {len(trace)} snapshots, "
        f"{len(trace.unique_users())} unique users",
        file=sys.stderr,
    )
    return 0


def _live_status(live: LiveAnalyzer, ranges: list[float], now: float | None) -> str:
    """One incremental status line for the crawl / follow loops."""
    clock = f"t={now:.0f}s " if now is not None else ""
    parts = [
        f"{clock}snapshots={live.snapshot_count} "
        f"observations={live.observation_count}"
    ]
    for r in ranges:
        parts.append(f"contacts(r={r:g})={len(live.contacts(r))}")
    parts.append(f"sessions={len(live.sessions())}")
    return " ".join(parts)


def _is_shard_dir_path(path: Path) -> bool:
    """Whether a crawl/follow target names a shard directory.

    An existing directory, or a *fresh* path with no suffix, selects
    the shard-dir layout (one ``.rtrc`` file per committed round); a
    ``.rtrc`` suffix selects the single appendable file.  An existing
    suffix-less regular file is neither — let the format checks
    reject it cleanly instead of mkdir-ing over it.
    """
    return path.is_dir() or (path.suffix == "" and not path.exists())


def _crawl_http(args: argparse.Namespace) -> int:
    """Stream a crawl to a query service's ingest endpoint."""
    from repro.service import (
        HttpRoundSink,
        ServiceRejectedRound,
        ServiceUnreachable,
    )

    if args.follow:
        print(
            "--follow needs a local store to tail; with an http:// sink, "
            "query the service instead (GET <url>/contacts?r=10)",
            file=sys.stderr,
        )
        return 2
    if args.land == "metaverse":
        trace = _metaverse_trace_cli(args)
        if trace is None:
            return 2
        land_name = trace.metadata.land_name
    else:
        land_name, preset, world = _build_world(args)
    print(
        f"crawling {land_name!r} for {args.hours:.2f} h "
        f"(tau={args.tau:g}s, seed={args.seed}, monitor={args.monitor}, "
        f"round={args.round_minutes:g} min, posting rounds to {args.out})...",
        file=sys.stderr,
    )
    try:
        with HttpRoundSink(args.out) as sink:
            if args.land == "metaverse":
                rounds = _replay_rounds(trace, sink, args.round_minutes * 60.0)
            else:
                monitor = _make_monitor(args, preset, sink)
                if monitor is None:
                    return 2
                rounds = stream_monitors(
                    world, [monitor], args.hours * 3600.0, args.round_minutes * 60.0
                )
            for now in rounds:
                sink.commit()
                print(
                    f"t={now:.0f}s snapshots={sink.snapshot_count} "
                    f"users={sink.user_count} "
                    f"observations={sink.observation_count} "
                    f"rounds_posted={sink.rounds_posted}",
                    file=sys.stderr,
                )
    except (ServiceRejectedRound, ServiceUnreachable, OSError) as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"posted {sink.rounds_posted} rounds to {args.out}: "
        f"{sink.snapshot_count} snapshots, {sink.user_count} unique users",
        file=sys.stderr,
    )
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    if args.out.startswith(("http://", "https://")):
        return _crawl_http(args)
    out = Path(args.out)
    to_dir = _is_shard_dir_path(out)
    if not to_dir and (trace_format(out) != "rtrc" or out.suffix == ".gz"):
        print(
            f"crawl streams to an appendable plain .rtrc store (or a "
            f"suffix-less shard-directory path); got {out}",
            file=sys.stderr,
        )
        return 2
    policy = None
    if args.compact_every is not None:
        if not to_dir:
            print(
                "--compact-every folds committed round files and needs a "
                f"shard-directory --out; got the single file {out}",
                file=sys.stderr,
            )
            return 2
        if args.compact_every < 1:
            print(
                f"--compact-every must be >= 1, got {args.compact_every}",
                file=sys.stderr,
            )
            return 2
        policy = CompactionPolicy(max_round_files=args.compact_every)
    if args.land == "metaverse":
        trace = _metaverse_trace_cli(args)
        if trace is None:
            return 2
        land_name = trace.metadata.land_name
    else:
        land_name, preset, world = _build_world(args)
    ranges = args.range or [BLUETOOTH_RANGE]
    print(
        f"crawling {land_name!r} for {args.hours:.2f} h "
        f"(tau={args.tau:g}s, seed={args.seed}, monitor={args.monitor}, "
        f"round={args.round_minutes:g} min, streaming to {out}"
        f"{' [shard dir, one file per round]' if to_dir else ''}"
        f"{f' [auto-compacting past {args.compact_every} files]' if policy else ''}"
        ")...",
        file=sys.stderr,
    )
    with (
        RtrcDirAppender(out, policy=policy) if to_dir else RtrcAppender(out)
    ) as appender:
        if args.land == "metaverse":
            rounds = _replay_rounds(trace, appender, args.round_minutes * 60.0)
        else:
            monitor = _make_monitor(args, preset, sink=appender)
            if monitor is None:
                return 2
            rounds = stream_monitors(
                world, [monitor], args.hours * 3600.0, args.round_minutes * 60.0
            )
        live = LiveAnalyzer(out) if args.follow else None
        try:
            for now in rounds:
                # The commit is the durability point: everything this
                # round observed is now visible to concurrent readers.
                appender.commit()
                if live is not None:
                    try:
                        live.refresh()
                    except StoreChangedError:
                        # The appender's own auto-compaction rewrote the
                        # committed history; the follower degrades
                        # gracefully by re-opening over the compacted
                        # directory (same data, new generation).
                        live.close()
                        live = _open_live(out)
                        print(
                            "follower re-opened after auto-compaction",
                            file=sys.stderr,
                        )
                    print(_live_status(live, ranges, now), file=sys.stderr)
                else:
                    print(
                        f"t={now:.0f}s snapshots={appender.snapshot_count} "
                        f"users={appender.user_count} "
                        f"observations={appender.observation_count}",
                        file=sys.stderr,
                    )
        finally:
            if live is not None:
                live.close()
    print(
        f"wrote {out}: {appender.snapshot_count} snapshots, "
        f"{appender.user_count} unique users",
        file=sys.stderr,
    )
    return 0


def _network_options(args: argparse.Namespace):
    """Build the coordinator options behind ``--workers`` / ``--listen``."""
    from repro.distributed import NetworkOptions

    options = NetworkOptions(spawn_workers=args.workers)
    if args.listen:
        host, sep, port = args.listen.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"--listen expects HOST:PORT, got {args.listen!r}"
            )
        options.host = host or "127.0.0.1"
        options.port = int(port)
    return options


# Consecutive polls that may hit StoreChangedError (each answered by a
# follower re-open) before `analyze --follow` gives up.  A one-shot
# compaction recovers on the first re-open; a store rewritten on every
# poll can never converge.
_FOLLOW_REOPEN_LIMIT = 3


def _follow_analyze(args: argparse.Namespace, network=None) -> int:
    """Tail a growing store: report after every observed commit.

    A :class:`~repro.trace.StoreChangedError` mid-follow means a
    compaction (or retention pass) rewrote the committed history under
    this follower.  The store is still valid — only the follower's
    incremental state is stale — so the follower re-opens over the new
    generation and keeps tailing, the same degradation ``slmob serve``
    applies.  Re-computation of the rewritten history counts as
    growth, so the idle countdown restarts.  If the store keeps
    changing on every consecutive poll, re-opening cannot converge;
    the follower then fails with guidance instead of spinning.
    """
    ranges = args.range or [BLUETOOTH_RANGE, WIFI_RANGE]
    idle = 0
    churn = 0
    backend = args.backend or "serial"
    live = _open_live(args.trace, backend, network)
    try:
        if backend == "network":
            print(
                f"network coordinator at {live.network_url()} "
                "(attach workers with: slmob worker <url>)",
                file=sys.stderr,
            )
        if live.snapshot_count:
            print(_live_status(live, ranges, None))
        while idle < args.idle_rounds:
            time.sleep(args.poll)
            try:
                grown = _refresh_live(live)
            except StoreChangedError as exc:
                churn += 1
                if churn >= _FOLLOW_REOPEN_LIMIT:
                    print(
                        f"store changed under the follower: {exc}\n"
                        "compact only between followers — stop this "
                        "follower before running 'slmob compact', or serve "
                        "the store through 'slmob serve' (the service "
                        "re-opens its follower after a compaction)",
                        file=sys.stderr,
                    )
                    return 2
                live.close()
                live = _open_live(args.trace, backend, network)
                print(
                    "store was compacted under the follower; re-opened over "
                    "the new generation",
                    file=sys.stderr,
                )
                grown = live.snapshot_count
            else:
                churn = 0
            if grown:
                idle = 0
                print(_live_status(live, ranges, None))
            else:
                idle += 1
        print(
            f"no growth after {args.idle_rounds} polls of {args.poll:g}s; "
            f"final state: {live.snapshot_count} snapshots, "
            f"{live.part_count} append rounds observed"
        )
    finally:
        live.close()
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = read_trace(Path(args.input))
    out = write_trace(trace, Path(args.output))
    print(
        f"wrote {out}: {len(trace)} snapshots, "
        f"{trace.columns.observation_count} observations",
        file=sys.stderr,
    )
    return 0


def _cmd_shard_export(args: argparse.Namespace) -> int:
    from repro.trace import to_rtrc_dir

    trace = read_trace(Path(args.input))
    paths = to_rtrc_dir(trace, args.shards, Path(args.outdir), gzip_shards=args.gzip)
    total = trace.columns.observation_count
    print(
        f"wrote {len(paths)} shard files + manifest to {args.outdir}: "
        f"{len(trace)} snapshots, {total} observations",
        file=sys.stderr,
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    target = Path(args.store)
    if not target.exists():
        print(f"{target}: no such store or shard directory", file=sys.stderr)
        return 2
    if target.is_dir():
        return _compact_dir(args, target)
    for flag, name in (
        (args.retain, "--retain"),
        (args.tier_after, "--tier-after"),
        (args.max_round_files, "--max-round-files"),
        (args.max_slack, "--max-slack"),
    ):
        if flag is not None:
            print(
                f"{name} applies to shard directories; {target} is a "
                "single-file store",
                file=sys.stderr,
            )
            return 2
    if trace_format(target) != "rtrc" or target.suffix == ".gz":
        print(
            f"compact works on plain .rtrc stores and shard directories; "
            f"got {target}",
            file=sys.stderr,
        )
        return 2
    try:
        path, reclaimed = compact_rtrc_store(target)
    except StoreInUseError as exc:
        print(f"cannot compact: {exc}", file=sys.stderr)
        return 2
    print(
        f"compacted {path}: reclaimed {reclaimed} bytes of append slack",
        file=sys.stderr,
    )
    return 0


def _compact_dir(args: argparse.Namespace, target: Path) -> int:
    """The shard-directory lifecycle passes behind ``slmob compact``.

    Runs retention, then the (possibly threshold-gated) streaming
    compaction, then tiering — the same order
    :meth:`~repro.trace.RtrcDirAppender.maybe_compact` uses.  With no
    threshold flags the compaction is unconditional (the historical
    behavior); with ``--max-round-files`` / ``--max-slack`` it runs
    only when due, so a cron line can invoke this idempotently.  With
    only ``--retain`` / ``--tier-after``, compaction is skipped
    entirely.
    """
    before = sum(p.stat().st_size for p in target.iterdir() if p.is_file())
    gated = args.max_round_files is not None or args.max_slack is not None
    aging_only = (
        not gated and (args.retain is not None or args.tier_after is not None)
    )
    batch_kwargs: dict = {}
    if args.materialize:
        batch_kwargs["batch_snapshots"] = None
    elif args.batch_snapshots is not None:
        batch_kwargs["batch_snapshots"] = args.batch_snapshots
    try:
        if args.retain is not None:
            dropped = retain_shard_dir(target, args.retain)
            if dropped:
                print(
                    f"retention dropped {len(dropped)} shard file(s) older "
                    f"than {args.retain:g}s",
                    file=sys.stderr,
                )
        due = not aging_only
        if gated:
            files = list_rtrc_dir(target)
            slack = (
                shard_dir_slack(target) if args.max_slack is not None else 0.0
            )
            policy = CompactionPolicy(
                max_round_files=args.max_round_files,
                max_slack_fraction=args.max_slack,
                target_shards=args.shards,
            )
            due = len(files) > args.shards and policy.compaction_due(
                len(files), slack
            )
            if not due:
                print(
                    f"compaction not due: {len(files)} file(s), "
                    f"slack {slack:.2f}",
                    file=sys.stderr,
                )
        if due:
            paths = compact_shard_dir(
                target,
                args.shards,
                gzip_shards=args.gzip,
                **batch_kwargs,
            )
            print(
                f"compacted {target} into {len(paths)} shard file(s)",
                file=sys.stderr,
            )
        if args.tier_after is not None:
            tiered = tier_shard_dir(target, args.tier_after)
            if tiered:
                print(
                    f"tiered {len(tiered)} cold shard file(s) to .gz",
                    file=sys.stderr,
                )
    except (TraceFormatError, ValueError) as exc:
        print(f"cannot compact shard directory: {exc}", file=sys.stderr)
        return 2
    after = sum(p.stat().st_size for p in target.iterdir() if p.is_file())
    print(f"{target}: {before} -> {after} bytes", file=sys.stderr)
    return 0


def _open_live(path, backend: str = "serial", network=None) -> LiveAnalyzer:
    """Open a LiveAnalyzer, absorbing one racing header rewrite.

    The producer commits by rewriting the store header in place; a
    read that lands mid-rewrite can parse a torn header.  One short
    retry separates that transient from real corruption.
    """
    try:
        return LiveAnalyzer(path, backend=backend, network=network)
    except TraceFormatError:
        time.sleep(0.05)
        return LiveAnalyzer(path, backend=backend, network=network)


def _refresh_live(live: LiveAnalyzer) -> int:
    """``live.refresh()`` with the same torn-header retry."""
    try:
        return live.refresh()
    except TraceFormatError:
        time.sleep(0.05)
        return live.refresh()


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = Path(args.trace)
    network = None
    if args.backend == "network":
        try:
            network = _network_options(args)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.follow:
        if not _is_shard_dir_path(source) and (
            trace_format(source) != "rtrc" or source.suffix == ".gz"
        ):
            print(
                "--follow needs a plain .rtrc store or a shard directory",
                file=sys.stderr,
            )
            return 2
        if not source.exists():
            # A follower started before its producer: without the
            # store (or directory) we cannot even pick the follow
            # mode, so fail cleanly instead of a raw traceback.
            print(
                f"{source}: nothing to follow yet — start the crawl "
                "first (or create the store), then re-run",
                file=sys.stderr,
            )
            return 2
        return _follow_analyze(args, network)
    backend = args.backend or "thread"
    if backend == "serial":
        print(
            "--backend serial only applies to --follow; batch analysis "
            "with --shards 1 is already serial",
            file=sys.stderr,
        )
        return 2
    if backend == "network" and args.shards < 2:
        print(
            "--backend network needs --shards >= 2: a single shard runs "
            "inline, so there is nothing to distribute",
            file=sys.stderr,
        )
        return 2
    if source.is_dir():
        # A finished shard-dir crawl analyzes like any other trace:
        # load the committed rounds and concatenate.
        from repro.trace import concat_shards, read_rtrc_dir

        try:
            trace = concat_shards(read_rtrc_dir(source))
        except TraceFormatError as exc:
            print(f"cannot load shard directory: {exc}", file=sys.stderr)
            return 2
    else:
        trace = read_trace(source)
    with TraceAnalyzer(
        trace, shards=args.shards, backend=backend, network=network
    ) as analyzer:
        if backend == "network":
            # Print the URL before the first extraction so externally
            # attached workers (--workers 0) have an address to join.
            print(
                f"network coordinator at {analyzer.network_url()} "
                "(attach workers with: slmob worker <url>)",
                file=sys.stderr,
            )
        summary = analyzer.summary()
        print(f"== {summary.land_name} ==")
        print(render_summary_table([summary.row()]))

        ranges = args.range or [BLUETOOTH_RANGE, WIFI_RANGE]
        # One batched pass builds the neighbour grid once per snapshot for
        # every requested radius.
        analyzer.contacts_multirange(ranges)
        grid = log_grid(trace.metadata.tau, 1e4, 7)
        for r in ranges:
            print(f"\n-- temporal metrics at r={r:g} m (CCDF) --")
            series = {
                "CT": analyzer.contact_times(r),
                "ICT": analyzer.inter_contact_times(r),
                "FT": analyzer.first_contact_times(r),
            }
            print(render_ccdf_table(series, grid, complementary=True))
            print(f"\n-- graph metrics at r={r:g} m --")
            print(
                render_summary_table(
                    [
                        {
                            "median_degree": analyzer.degrees(r, args.every).median,
                            "isolated": round(analyzer.isolation_fraction(r, args.every), 3),
                            "median_diameter": analyzer.diameters(r, args.every).median,
                            "median_clustering": round(
                                analyzer.clustering(r, args.every).median, 3
                            ),
                        }
                    ]
                )
            )

        print("\n-- trip metrics --")
        print(
            render_summary_table(
                [
                    {
                        "metric": "travel length (m)",
                        "median": round(analyzer.travel_lengths().median, 1),
                        "p90": round(float(analyzer.travel_lengths().quantile(0.9)), 1),
                    },
                    {
                        "metric": "effective travel time (s)",
                        "median": round(analyzer.effective_travel_times().median, 1),
                        "p90": round(float(analyzer.effective_travel_times().quantile(0.9)), 1),
                    },
                    {
                        "metric": "travel time (s)",
                        "median": round(analyzer.travel_times().median, 1),
                        "p90": round(float(analyzer.travel_times().quantile(0.9)), 1),
                    },
                ]
            )
        )
        occupancy = analyzer.zone_occupation(20.0, args.every)
        print(f"\nzone occupation (L=20m): {float(occupancy.cdf(0.0)):.1%} empty cells, "
              f"busiest cell {occupancy.max:.0f} users")
    return 0


def _serve_store_specs(specs: list[str]) -> dict[str, Path]:
    """Parse ``[name=]PATH`` store arguments into ``{name: path}``.

    The default name is the path's basename with any ``.rtrc[.gz]``
    suffix stripped — ``crawls/dance.rtrc`` serves as ``/v1/dance``.
    """
    stores: dict[str, Path] = {}
    for spec in specs:
        if "=" in spec:
            name, _, raw = spec.partition("=")
        else:
            raw = spec
            name = Path(raw).name
            for suffix in (".gz", ".rtrc"):
                if name.endswith(suffix):
                    name = name[: -len(suffix)]
        if not name or "/" in name:
            raise ValueError(f"invalid store name in {spec!r}")
        if name in stores:
            raise ValueError(
                f"store name {name!r} used twice; disambiguate with name=PATH"
            )
        stores[name] = Path(raw)
    return stores


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import QueryService

    try:
        stores = _serve_store_specs(args.stores)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        service = QueryService(
            stores,
            host=args.host,
            port=args.port,
            backend=args.backend,
            ingest=args.ingest,
            ingest_budget=args.ingest_budget,
            ingest_body_limit=args.ingest_body_limit,
            verbose=not args.quiet,
        )
    except (ValueError, TraceFormatError) as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    with service:
        host, port = service.bind()
        names = ", ".join(sorted(stores))
        print(
            f"serving {names} on http://{host}:{port}/v1 "
            f"(ingest {'enabled' if args.ingest else 'disabled'}); Ctrl-C stops",
            file=sys.stderr,
        )
        try:
            service.serve_forever()
        except KeyboardInterrupt:
            print("stopping", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one network-backend worker against a coordinator.

    The ``SLMOB_WORKER_CHAOS`` environment variable injects faults for
    the distributed test-suite (``exit-after-claim``,
    ``sleep-after-claim:SECONDS``); it is not part of the public
    interface.
    """
    from repro.distributed import NetworkWorker

    worker = NetworkWorker(
        args.coordinator,
        poll_wait=args.poll,
        chaos=os.environ.get("SLMOB_WORKER_CHAOS"),
        quiet=args.quiet,
    )
    done = worker.run()
    if not args.quiet:
        print(f"coordinator gone; {done} task(s) completed", file=sys.stderr)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    trace = read_trace(Path(args.trace))
    issues = validate_trace(trace)
    if not issues:
        print("trace is clean")
        return 0
    for issue in issues[: args.limit]:
        print(str(issue))
    if len(issues) > args.limit:
        print(f"... and {len(issues) - args.limit} more")
    return 1 if any(i.severity == "error" for i in issues) else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import FULL_CONFIG, render_experiment_report
    from repro.experiments.runner import quick_config

    config = FULL_CONFIG if args.full else quick_config(args.hours)
    if args.every is not None:
        from dataclasses import replace

        config = replace(config, every=args.every)
    print(
        f"regenerating the paper's evaluation "
        f"({config.duration / 3600.0:.0f} h window; this simulates all "
        "three lands)...",
        file=sys.stderr,
    )
    report = render_experiment_report(config)
    header = "# EXPERIMENTS — paper vs measured\n\n"
    body = header + report if args.out else report
    if args.out:
        Path(args.out).write_text(body, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slmob",
        description="Reproduction toolkit for 'Characterizing User Mobility in Second Life'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--land",
                            choices=sorted(_LAND_KEYS) + ["metaverse"],
                            default="dance",
                            help="scenario: a simulated land preset, or "
                                 "'metaverse' for the synthetic Zipf-hotspot "
                                 "avatar workload (generated directly; "
                                 "--users scales it)")
        parser.add_argument("--users", type=int, default=2000,
                            help="with --land metaverse: avatar count "
                                 "(default 2000; scale up for million-"
                                 "avatar load generation)")
        parser.add_argument("--hours", type=float, default=1.0)
        parser.add_argument("--tau", type=float, default=10.0)
        parser.add_argument("--seed", type=int, default=2008)
        parser.add_argument("--start-hour", type=float, default=12.0)
        parser.add_argument("--spinup", type=float, default=1800.0)
        parser.add_argument("--naive", action="store_true",
                            help="use the perturbing (non-mimicking) crawler")

    simulate = sub.add_parser("simulate", help="simulate a land and write a trace")
    add_world_args(simulate)
    simulate.add_argument("--monitor",
                          choices=["crawler", "sensors", "association"],
                          default="crawler",
                          help="observable: 'crawler' records coordinates; "
                               "'sensors' runs the in-world sensor grid with "
                               "its platform limits; 'association' records "
                               "nearest-AP WLAN associations (needs a land "
                               "with access points, e.g. --land campus)")
    simulate.add_argument("--sensor-model", choices=["hard", "pathloss"],
                          default="hard",
                          help="with --monitor sensors: 'hard' is the "
                               "deterministic 96 m LSL disc; 'pathloss' "
                               "detects probabilistically with distance "
                               "(log-distance decay + shadowing)")
    simulate.add_argument("--sensor-sigma", type=float, default=6.0,
                          help="with --sensor-model pathloss: shadow-fading "
                               "std dev in dB (0 degenerates to the hard "
                               "radius; default 6)")
    simulate.add_argument("--out", required=True,
                          help="output .csv[.gz], .jsonl[.gz] or .rtrc[.gz]")
    simulate.set_defaults(func=_cmd_simulate)

    crawl = sub.add_parser(
        "crawl",
        help="stream a live crawl into an appendable .rtrc store, "
             "committing round by round",
    )
    add_world_args(crawl)
    crawl.add_argument("--monitor", choices=["crawler", "association"],
                       default="crawler",
                       help="streaming observable: 'crawler' records "
                            "coordinates, 'association' nearest-AP WLAN "
                            "associations (--land campus); the sensor grid "
                            "buffers in script memory and cannot stream")
    crawl.add_argument("--out", required=True,
                       help="appendable output store: a plain .rtrc file, "
                            "or a suffix-less path for a shard directory "
                            "with one file per committed round (created or "
                            "extended)")
    crawl.add_argument("--round-minutes", type=float, default=10.0,
                       help="simulated minutes per append round; each round "
                            "ends in a commit (the crash-durability point)")
    crawl.add_argument("--follow", action="store_true",
                       help="incrementally analyze the growing store after "
                            "each commit and print a status line")
    crawl.add_argument("--range", type=float, action="append",
                       help="communication range(s) for --follow status "
                            "lines (repeatable; default bluetooth 10 m)")
    crawl.add_argument("--compact-every", type=int, default=None,
                       help="auto-compact the shard directory whenever it "
                            "exceeds this many committed round files "
                            "(streaming, bounded-memory; shard-dir --out "
                            "only; followers re-open on the generation bump)")
    crawl.set_defaults(func=_cmd_crawl)

    convert = sub.add_parser(
        "convert", help="transcode a trace between csv/jsonl/rtrc (suffix decides)"
    )
    convert.add_argument("input", help="source trace (.csv[.gz], .jsonl[.gz], .rtrc[.gz])")
    convert.add_argument("output", help="destination trace; format from suffix")
    convert.set_defaults(func=_cmd_convert)

    analyze = sub.add_parser("analyze", help="compute the paper's metrics from a trace")
    analyze.add_argument("trace")
    analyze.add_argument("--range", type=float, action="append",
                         help="communication range(s) in meters (repeatable)")
    analyze.add_argument("--every", type=int, default=6,
                         help="snapshot stride for graph metrics")
    analyze.add_argument("--shards", type=int, default=1,
                         help="fan contact/session/zone/graph extraction over "
                              "this many time shards (1 = unsharded)")
    analyze.add_argument("--backend",
                         choices=["serial", "thread", "process", "network"],
                         default=None,
                         help="worker backend: 'thread' (batch default) "
                              "shares memory but serializes on the GIL; "
                              "'process' memmap-loads per-part .rtrc files "
                              "in spawned workers; 'network' serves the "
                              "same part files over an HTTP coordinator to "
                              "'slmob worker' processes (see --workers / "
                              "--listen); 'serial' (--follow default) runs "
                              "parts inline one at a time")
    analyze.add_argument("--workers", type=int, default=None,
                         help="with --backend network: local worker "
                              "processes to spawn and supervise (default: "
                              "CPU count; 0 = spawn none, attach workers "
                              "yourself with 'slmob worker <url>')")
    analyze.add_argument("--listen", default=None, metavar="HOST:PORT",
                         help="with --backend network: coordinator bind "
                              "address (default 127.0.0.1 on an ephemeral "
                              "port; bind a routable address to attach "
                              "workers from other machines)")
    analyze.add_argument("--follow", action="store_true",
                         help="tail a growing .rtrc store or shard "
                              "directory: re-read after each commit and "
                              "extend contact/session results incrementally "
                              "(ignores --shards; honours --backend)")
    analyze.add_argument("--poll", type=float, default=2.0,
                         help="seconds between growth checks with --follow")
    analyze.add_argument("--idle-rounds", type=int, default=3,
                         help="stop --follow after this many growth-free "
                              "polls (0 = report once and exit)")
    analyze.set_defaults(func=_cmd_analyze)

    serve = sub.add_parser(
        "serve",
        help="serve cached JSON mobility analytics over live stores "
             "(contacts / sessions / zones / graph metrics), optionally "
             "accepting crawl rounds via POST",
    )
    serve.add_argument("stores", nargs="+", metavar="[NAME=]PATH",
                       help="store(s) to serve: appendable .rtrc files or "
                            "shard directories; NAME= overrides the URL "
                            "segment (default: basename without .rtrc)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8700,
                       help="bind port (default 8700; 0 picks a free port)")
    serve.add_argument("--backend",
                       choices=["serial", "thread", "process"],
                       default="serial",
                       help="follower backend for catch-up extraction "
                            "(as in analyze --follow)")
    serve.add_argument("--ingest", action="store_true",
                       help="accept POST /v1/<store>/rounds into shard-dir "
                            "stores (the service's appender must then be "
                            "the directory's only writer); a missing "
                            "suffix-less store path is created fresh")
    serve.add_argument("--ingest-budget", type=int,
                       default=DEFAULT_INGEST_BUDGET,
                       help="ingest requests allowed per sliding 60 s "
                            "window, across all stores")
    serve.add_argument("--ingest-body-limit", type=int,
                       default=DEFAULT_INGEST_BODY_LIMIT,
                       help="largest accepted ingest request body, bytes")
    serve.add_argument("--quiet", action="store_true",
                       help="do not log one line per request to stderr")
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="serve a network-backend coordinator: claim part tasks, "
             "fetch part files, run the extraction, stream encoded "
             "results back (exits when the coordinator goes away)",
    )
    worker.add_argument("coordinator",
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8831/v1 (printed by "
                             "'analyze --backend network')")
    worker.add_argument("--poll", type=float, default=0.05,
                        help="idle seconds between claim attempts, until "
                             "the coordinator advertises its own interval")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress the per-task progress lines")
    worker.set_defaults(func=_cmd_worker)

    shard_export = sub.add_parser(
        "shard-export",
        help="materialize per-shard .rtrc files (plus a manifest) for "
             "parallel workers",
    )
    shard_export.add_argument("input",
                              help="source trace (.csv[.gz], .jsonl[.gz], .rtrc[.gz])")
    shard_export.add_argument("outdir", help="destination directory")
    shard_export.add_argument("--shards", type=int, required=True,
                              help="number of contiguous time shards to write")
    shard_export.add_argument("--gzip", action="store_true",
                              help="write .rtrc.gz shards (not memmappable)")
    shard_export.set_defaults(func=_cmd_shard_export)

    compact = sub.add_parser(
        "compact",
        help="fold append-round shard files into balanced shards, or trim "
             "the capacity slack of an appendable .rtrc store (only after "
             "the crawl writing it has finished — a live appender keeps "
             "writing to the pre-compaction file)",
    )
    compact.add_argument("store",
                         help="a shard directory (crawled round by round) "
                              "or an appendable plain .rtrc store")
    compact.add_argument("--shards", type=int, default=1,
                         help="shard count for a compacted directory "
                              "(default 1; ignored for single files)")
    compact.add_argument("--gzip", action="store_true",
                         help="write compacted directory shards as .rtrc.gz "
                              "(not memmappable; ignored for single files)")
    compact.add_argument("--max-round-files", type=int, default=None,
                         help="only compact a directory holding more than "
                              "this many files (makes the command an "
                              "idempotent cron line)")
    compact.add_argument("--max-slack", type=float, default=None,
                         help="only compact a directory whose non-payload "
                              "byte fraction exceeds this (0..1)")
    compact.add_argument("--batch-snapshots", type=int,
                         default=None,
                         help="snapshots per streaming-compaction batch "
                              "(bounds peak memory; default 4096)")
    compact.add_argument("--materialize", action="store_true",
                         help="use the legacy whole-store in-RAM rewrite "
                              "instead of the streaming compactor")
    compact.add_argument("--retain", type=float, default=None, metavar="SECONDS",
                         help="before compacting, drop shard files whose "
                              "entire time range is older than this many "
                              "trace-time seconds (relative to the newest "
                              "snapshot)")
    compact.add_argument("--tier-after", type=float, default=None, metavar="SECONDS",
                         help="after compacting, gzip shard files whose time "
                              "range ended more than this many trace-time "
                              "seconds before the newest snapshot")
    compact.set_defaults(func=_cmd_compact)

    validate = sub.add_parser("validate", help="run trace sanity checks")
    validate.add_argument("trace")
    validate.add_argument("--limit", type=int, default=20)
    validate.set_defaults(func=_cmd_validate)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("--full", action="store_true",
                             help="paper-scale 24 h windows")
    experiments.add_argument("--hours", type=float, default=3.0,
                             help="window for the quick run (ignored with --full)")
    experiments.add_argument("--every", type=int, default=None,
                             help="override the graph-metric snapshot stride")
    experiments.add_argument("--out", help="write the report to this file")
    experiments.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``slmob`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
