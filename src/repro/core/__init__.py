"""The paper's analysis layer.

Everything here consumes a :class:`~repro.trace.Trace` and produces
the statistics of §3/§4:

* :mod:`repro.core.contacts` — contact time (CT), inter-contact time
  (ICT) and first contact time (FT) under a communication range *r*;
* :mod:`repro.core.kernels` — the vectorized run-length extraction
  kernels and the columnar :class:`ContactSet` they produce;
* :mod:`repro.core.losgraph` — line-of-sight network snapshots and
  their degree / diameter / clustering distributions;
* :mod:`repro.core.spatial` — travel length, effective travel time,
  travel (login) time, zone occupation;
* :mod:`repro.core.analyzer` — the :class:`TraceAnalyzer` facade that
  caches expensive extractions and exposes every metric as an
  :class:`~repro.stats.ECDF`;
* :mod:`repro.core.report` — plain-text rendering of the results.

The two canonical ranges are exported as :data:`BLUETOOTH_RANGE`
(r_b = 10 m) and :data:`WIFI_RANGE` (r_w = 80 m).
"""

from repro.core.contacts import (
    BLUETOOTH_RANGE,
    WIFI_RANGE,
    ContactInterval,
    contact_durations,
    extract_contact_set,
    extract_contact_sets_multirange,
    extract_contacts,
    extract_contacts_loop,
    extract_contacts_multirange,
    extract_contacts_multirange_loop,
    extract_contacts_reference,
    first_contact_times,
    inter_contact_times,
    iter_snapshot_pairs,
    snapshot_id_pairs,
)
from repro.core.kernels import (
    ContactEventTable,
    ContactSet,
    build_contact_events,
    contact_set_from_columns,
    contact_set_from_events,
    multirange_contact_sets,
)
from repro.core.sharded import (
    ShardAnalysisError,
    ShardedAnalyzer,
    merge_shard_contacts,
    merge_shard_sessions,
)
from repro.core.live import LiveAnalyzer, StoreChangedError
from repro.core.windowed import WindowedAnalyzer
from repro.core.losgraph import (
    clustering_series,
    degree_samples,
    diameter_series,
    isolation_fraction,
    snapshot_graph,
)
from repro.core.spatial import (
    effective_travel_times,
    travel_lengths,
    travel_times,
    zone_occupation,
)
from repro.core.analyzer import TraceAnalyzer, TraceSummary
from repro.core.report import render_ccdf_table, render_summary_table

__all__ = [
    "BLUETOOTH_RANGE",
    "WIFI_RANGE",
    "ContactEventTable",
    "ContactInterval",
    "ContactSet",
    "build_contact_events",
    "contact_durations",
    "contact_set_from_columns",
    "contact_set_from_events",
    "extract_contact_set",
    "extract_contact_sets_multirange",
    "extract_contacts",
    "extract_contacts_loop",
    "extract_contacts_multirange",
    "extract_contacts_multirange_loop",
    "extract_contacts_reference",
    "multirange_contact_sets",
    "LiveAnalyzer",
    "StoreChangedError",
    "ShardAnalysisError",
    "ShardedAnalyzer",
    "WindowedAnalyzer",
    "merge_shard_contacts",
    "merge_shard_sessions",
    "first_contact_times",
    "inter_contact_times",
    "iter_snapshot_pairs",
    "snapshot_id_pairs",
    "clustering_series",
    "degree_samples",
    "diameter_series",
    "isolation_fraction",
    "snapshot_graph",
    "effective_travel_times",
    "travel_lengths",
    "travel_times",
    "zone_occupation",
    "TraceAnalyzer",
    "TraceSummary",
    "render_ccdf_table",
    "render_summary_table",
]
