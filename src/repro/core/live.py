"""Live incremental analysis over a growing ``.rtrc`` store or shard dir.

A streaming crawl (:class:`~repro.trace.RtrcAppender`,
:class:`~repro.trace.RtrcDirAppender`) extends its store while the
measurement is still running; re-running a whole-trace
:class:`~repro.core.analyzer.TraceAnalyzer` after every commit would
re-extract the entire past for each new minute of data.
:class:`LiveAnalyzer` instead treats the store's growth history as a
time partition: every :meth:`refresh` that observes new snapshots adds
one or more *parts* covering exactly the newly appended spans,
extraction runs only over those parts, and the per-part results are
stitched through the same exact boundary merges
:class:`~repro.core.sharded.ShardedAnalyzer` and
:class:`~repro.core.windowed.WindowedAnalyzer` use.  The incremental
answers are therefore bit-for-bit what a full recompute over the
current prefix would produce — pinned against the serial oracle by
``tests/unit/core/test_live.py`` and ``test_live_shard_dir.py``.

Two inputs are followed:

* a single appendable ``.rtrc`` **file** — each growing refresh turns
  the newly appended snapshot span into one part (a zero-copy view of
  the re-memmapped store);
* a **shard directory** — each committed append round already *is* an
  immutable ``shard-*.rtrc`` file, so every new file becomes one part
  and, under ``backend="process"``, workers memmap-load the round
  files directly: the crawl's own output doubles as the parallel
  work-distribution format, nothing is re-materialized.

The one contract both producers guarantee and this class relies on:
the store is **append-only** — committed snapshots (and committed
shard files) never change, new ones only arrive at the end.  A store
that shrank or rewrote its past is rejected on refresh.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.parallel import (
    SCHEDULER_BACKENDS,
    PartAnalysisError,
    PartScheduler,
)
from repro.core.sharded import BoundaryMergeAnalyzer
from repro.trace import (
    StoreChangedError,
    Trace,
    TraceMetadata,
    list_rtrc_dir,
    read_store_rtrc,
    read_trace_rtrc,
)

# Re-exported here for compatibility: the error now lives in
# repro.trace (RtrcDirAppender.commit raises it too), but followers
# and their callers historically imported it from this module.
__all__ = ["LiveAnalyzer", "StoreChangedError"]


class LiveAnalyzer(BoundaryMergeAnalyzer):
    """Incrementally extend analyses as an ``.rtrc`` store grows.

    Parameters
    ----------
    path:
        The store to follow: a single appendable ``.rtrc`` file, or a
        shard directory an :class:`~repro.trace.RtrcDirAppender` is
        committing rounds into (an existing directory selects shard-dir
        mode).  Either may be empty (a crawl that has not committed
        yet): analyses over zero snapshots return empty
        contact/session lists, and the first :meth:`refresh` that sees
        data makes them live.
    mmap:
        Memory-map the store on every refresh (the default).  Pass
        False to load copies instead — only useful on filesystems
        without mmap support.
    backend:
        Where the per-part extractions run when more than one part
        needs work.  ``"serial"`` (default) — inline, one part at a
        time.  ``"thread"`` — a thread pool over the part views; the
        run-length extraction kernels are numpy-bound and release the
        GIL, so parts overlap.  ``"process"`` —
        spawned workers memmap-load one ``.rtrc`` file per part: in
        shard-dir mode the committed round files are used as-is; in
        single-file mode each growth part is materialized once into a
        scheduler-private temp file.  ``"network"`` — the same part
        files served over an HTTP coordinator to ``slmob worker``
        processes (see ``network`` below).  Parallelism pays off when
        several parts need extraction at once — a follower catching up
        on a long crawl, or the first request for a new parameter
        backfilling every committed round.
    max_workers:
        Pool cap for the parallel backends (default: CPU count).
    network:
        Optional :class:`~repro.distributed.NetworkOptions` for
        ``backend="network"`` — the same part files (round files, in
        dir mode) served over an HTTP coordinator to ``slmob worker``
        processes, possibly on other machines.  Ignored by the other
        backends.

    Usage
    -----
    Call :meth:`refresh` whenever the producer may have committed new
    snapshots (it returns how many arrived), then query any of the
    :class:`~repro.core.sharded.BoundaryMergeAnalyzer` analyses —
    ``contacts`` / ``contacts_multirange`` / ``sessions`` /
    ``zone_occupation`` / ``degree_array`` / ``diameter_array`` /
    ``clustering_array``::

        live = LiveAnalyzer("crawl.rtrc")
        while crawling:
            if live.refresh():
                print(len(live.contacts(10.0)), "contacts so far")

    Each query after a refresh extracts only uncached parts;
    previously computed parts are served from a per-part cache and
    merged with the fresh tail.  Merging is cheap (linear in result
    size) compared to extraction, so a long-running crawl pays per
    round roughly the cost of analyzing just that round's data.

    Lifecycle: :meth:`close` (or a ``with`` block) drops the memmaps
    and shuts the worker pool down; cached results stay readable, new
    analyses and refreshes raise.
    """

    def __init__(
        self,
        path: str | Path,
        mmap: bool = True,
        backend: str = "serial",
        max_workers: int | None = None,
        network: object | None = None,
    ) -> None:
        if backend not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{SCHEDULER_BACKENDS}"
            )
        super().__init__()
        self.path = Path(path)
        self._label = str(self.path)
        self._mmap = bool(mmap)
        self.backend = backend
        self._dir = self.path.is_dir()
        self.metadata: TraceMetadata = TraceMetadata()
        # (kind, part_index, params) -> task result; the incremental
        # heart — parts never change, so their results never expire.
        self._task_cache: dict[tuple, object] = {}
        self._scheduler = PartScheduler(
            backend, max_workers, file_prefix="round", network=network
        )
        if self._dir:
            self._known_files: list[str] = []
            # Per non-empty round file: (path, first_time, length).
            # Only metadata is retained — part traces are reopened
            # lazily, so a follower of a months-long crawl does not
            # hold one memmap (and file descriptor) per round forever.
            self._part_paths: list[Path] = []
            self._part_meta: list[tuple[float, int]] = []
            self._dir_names: list[str] = []
            self._snapshots = 0
            self._observations = 0
            self._last_time = float("-inf")
        else:
            self._store = None
            # Snapshot indices cutting the store into growth parts:
            # part i covers snapshots [_edges[i], _edges[i + 1]).
            self._edges: list[int] = [0]
            # Guard against a store whose past was rewritten: the last
            # committed snapshot time must never change between
            # refreshes.
            self._last_edge_time: float | None = None
        self.refresh()

    # -- lifecycle ----------------------------------------------------------

    def _release(self) -> None:
        """Drop the memmaps and the pool; cached merged results survive.

        New analyses and refreshes raise afterwards — the contract
        shared with :class:`~repro.core.windowed.WindowedAnalyzer` and
        :class:`~repro.core.sharded.ShardedAnalyzer`.
        """
        if not self._dir:
            self._store = None
        self._scheduler.close()

    def _open_store(self):
        self._check_open()
        return self._store

    # -- growth tracking ----------------------------------------------------

    def refresh(self) -> int:
        """Observe the producer's commits; returns how many new snapshots.

        New snapshots become new parts (one per growth span or per
        committed shard file); analyses requested afterwards extract
        only those parts and re-merge.  A refresh that observes no
        growth is free and invalidates nothing.  Raises
        :class:`StoreChangedError` if the store shrank or its
        committed prefix changed — the append-only contract is broken
        and incremental results would be silently wrong.
        """
        self._check_open()
        grown = self._refresh_dir() if self._dir else self._refresh_file()
        if grown:
            # Merged results are stale; the per-part task cache is not.
            self._contacts.clear()
            self._sessions.clear()
            self._samples.clear()
        return grown

    def _refresh_file(self) -> int:
        store, metadata = read_store_rtrc(self.path, mmap=self._mmap)
        known = self._edges[-1]
        if store.snapshot_count < known:
            raise StoreChangedError(
                f"{self.path}: store shrank from {known} to "
                f"{store.snapshot_count} snapshots; LiveAnalyzer requires "
                "an append-only store"
            )
        if known and self._last_edge_time is not None:
            if float(store.times[known - 1]) != self._last_edge_time:
                raise StoreChangedError(
                    f"{self.path}: committed snapshots changed under the "
                    "analyzer; LiveAnalyzer requires an append-only store"
                )
        self._store = store
        self.metadata = metadata
        grown = store.snapshot_count - known
        if grown:
            self._edges.append(store.snapshot_count)
            self._last_edge_time = float(store.times[store.snapshot_count - 1])
        return grown

    def _refresh_dir(self) -> int:
        """All-or-nothing: no state changes unless every new file loads.

        A mid-loop failure (torn read racing a commit, a file deleted
        by a concurrent compaction) must not leave some parts
        registered while the merged caches still describe the old
        part set — the CLI retries ``TraceFormatError`` and would
        otherwise serve an internally inconsistent view.
        """
        files = list_rtrc_dir(self.path)
        known = self._known_files
        if files[: len(known)] != known:
            raise StoreChangedError(
                f"{self.path}: committed shard files changed under the "
                "analyzer; LiveAnalyzer requires an append-only shard "
                "directory (compact only between followers)"
            )
        new_paths: list[Path] = []
        new_meta: list[tuple[float, int]] = []
        dir_names = self._dir_names
        metadata = self.metadata
        last_time = self._last_time
        snapshots = observations = 0
        for name in files[len(known):]:
            trace = read_trace_rtrc(self.path / name, mmap=self._mmap)
            metadata = trace.metadata
            names = trace.columns.users.names
            if (
                self.backend in ("process", "network")
                and names[: len(dir_names)] != dir_names
            ):
                # The process and network backends decode every part's
                # worker payload with the newest file's name table,
                # which is only correct when each round's table is a
                # prefix of the next (true for RtrcDirAppender /
                # to_rtrc_dir / compact_shard_dir output).  A foreign
                # directory with independent interners must fail
                # loudly here, not silently mis-name users.
                raise ValueError(
                    f"{self.path}: shard file {name!r} does not extend the "
                    f"previous files' user table; backend={self.backend!r} "
                    "needs prefix-consistent interners (use "
                    "backend='serial' for foreign shard directories)"
                )
            if len(names) >= len(dir_names):
                dir_names = list(names)
            if len(trace):
                first = float(trace.columns.times[0])
                if first <= last_time:
                    raise StoreChangedError(
                        f"{self.path}: shard file {name!r} is not strictly "
                        "after its predecessors; LiveAnalyzer requires an "
                        "append-only shard directory"
                    )
                new_paths.append(self.path / name)
                new_meta.append((first, len(trace)))
                last_time = trace.end_time
                snapshots += len(trace)
                observations += trace.columns.observation_count
        # Every new file loaded cleanly — commit the whole batch.
        self.metadata = metadata
        self._dir_names = dir_names
        self._part_paths.extend(new_paths)
        self._part_meta.extend(new_meta)
        self._known_files.extend(files[len(known):])
        self._last_time = last_time
        self._snapshots += snapshots
        self._observations += observations
        return snapshots

    @property
    def snapshot_count(self) -> int:
        """Snapshots observed as of the last refresh."""
        return self._snapshots if self._dir else self._edges[-1]

    @property
    def observation_count(self) -> int:
        """Observation rows observed as of the last refresh."""
        if self._dir:
            return self._observations
        return self._open_store().observation_count

    @property
    def part_count(self) -> int:
        """Growth parts observed so far.

        One per growing refresh for a single file; one per committed
        non-empty shard file for a shard directory.
        """
        if self._dir:
            return len(self._part_paths)
        return len(self._edges) - 1

    @property
    def is_shard_dir(self) -> bool:
        """Whether the followed store is a shard directory."""
        return self._dir

    @property
    def committed_file_count(self) -> int:
        """Committed shard files observed (0 in single-file mode).

        Unlike :attr:`part_count` this counts *empty* committed rounds
        too, so together with the manifest generation it tags exactly
        the committed prefix this follower has observed — the query
        service's cache-invalidation token.
        """
        return len(self._known_files) if self._dir else 0

    # -- BoundaryMergeAnalyzer plumbing -------------------------------------

    def _part_trace(self, index: int) -> Trace:
        if self._dir:
            # Reopened on demand (a header parse, not a load): holding
            # one memmap per committed round would leak an fd per
            # round over a long crawl.
            self._check_open()
            return read_trace_rtrc(self._part_paths[index], mmap=self._mmap)
        store = self._open_store()
        lo, hi = self._edges[index], self._edges[index + 1]
        return Trace.from_columns(store.slice_snapshots(lo, hi), self.metadata)

    def _part_file(self, index: int) -> Path | None:
        """The on-disk file already holding part ``index``, if any.

        In shard-dir mode every part is a committed round file —
        process workers memmap it directly.  Single-file parts are
        views into one big store, so the scheduler materializes them.
        """
        return self._part_paths[index] if self._dir else None

    @property
    def _names(self) -> Sequence[str]:
        if self._dir:
            # Round k's user table is a prefix of round k+1's (the
            # appender interns cumulatively; validated on refresh for
            # the process backend), so the newest table decodes every
            # earlier part's ids too.
            return self._dir_names
        store = self._open_store()
        return store.users.names

    def _part_error(self, index: int, kind: str, exc: Exception):
        trace = self._part_trace(index)
        return PartAnalysisError(
            f"{kind} failed on part {index + 1}/{self.part_count} covering "
            f"t=[{trace.start_time:g}, {trace.end_time:g}] "
            f"({len(trace)} snapshots): {exc}"
        )

    def _map(self, kind: str, params_per_part: Sequence[tuple]) -> list[object]:
        """One task result per part, extracting only uncached parts.

        Cache keys include the part's own parameters, so strided
        analyses (whose per-part phase depends only on the lengths of
        *earlier* parts, which never change) hit the cache too.
        Uncached parts fan over the scheduler's backend — several at
        once when a follower is catching up or a new parameter
        backfills the history.
        """
        self._check_open()
        missing = [
            (index, params)
            for index, params in enumerate(params_per_part)
            if (kind, index, params) not in self._task_cache
        ]
        if missing:
            results = self._scheduler.run(
                kind,
                missing,
                part_trace=self._part_trace,
                part_path=self._part_file,
                names=lambda: self._names,
                wrap_error=self._part_error,
            )
            for (index, params), result in zip(missing, results):
                self._task_cache[(kind, index, params)] = result
        return [
            self._task_cache[(kind, index, params)]
            for index, params in enumerate(params_per_part)
        ]

    def _strided_samples(self, kind: str, head: tuple, every: int) -> np.ndarray:
        if not self.part_count:
            raise ValueError(
                f"{self.path}: store holds no snapshots yet; refresh() "
                "after the producer commits"
            )
        return super()._strided_samples(kind, head, every)

    def _part_first_times(self) -> list[float]:
        if self._dir:
            return [first for first, _ in self._part_meta]
        store = self._open_store()
        return [float(store.times[lo]) for lo in self._edges[:-1]]

    def _part_lengths(self) -> list[int]:
        if self._dir:
            return [length for _, length in self._part_meta]
        return np.diff(np.asarray(self._edges, dtype=np.int64)).tolist()
