"""Live incremental analysis over a growing ``.rtrc`` store.

A streaming crawl (:class:`~repro.trace.RtrcAppender`) extends its
store while the measurement is still running; re-running a whole-trace
:class:`~repro.core.analyzer.TraceAnalyzer` after every commit would
re-extract the entire past for each new minute of data.
:class:`LiveAnalyzer` instead treats the store's growth history as a
time partition: every :meth:`refresh` that observes new snapshots adds
one *part* covering exactly the newly appended span, extraction runs
only over that part (a zero-copy view of the re-memmapped store), and
the per-part results are stitched through the same exact boundary
merges :class:`~repro.core.sharded.ShardedAnalyzer` and
:class:`~repro.core.windowed.WindowedAnalyzer` use.  The incremental
answers are therefore bit-for-bit what a full recompute over the
current prefix would produce — pinned against the serial oracle by
``tests/unit/core/test_live.py``.

The one contract the appender guarantees and this class relies on:
the store is **append-only** — committed snapshots never change, new
ones only arrive at the end.  A store that shrank or rewrote its past
is rejected on refresh.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.parallel import extract_shard_task
from repro.core.sharded import BoundaryMergeAnalyzer
from repro.trace import Trace, TraceMetadata, read_store_rtrc


class LiveAnalyzer(BoundaryMergeAnalyzer):
    """Incrementally extend analyses as an ``.rtrc`` store grows.

    Parameters
    ----------
    path:
        The store to follow.  It may be empty (a crawl that has not
        committed yet): analyses over zero snapshots return empty
        contact/session lists, and the first :meth:`refresh` that sees
        data makes them live.
    mmap:
        Memory-map the store on every refresh (the default).  Pass
        False to load copies instead — only useful on filesystems
        without mmap support.

    Usage
    -----
    Call :meth:`refresh` whenever the producer may have committed new
    snapshots (it returns how many arrived), then query any of the
    :class:`~repro.core.sharded.BoundaryMergeAnalyzer` analyses —
    ``contacts`` / ``contacts_multirange`` / ``sessions`` /
    ``zone_occupation`` / ``degree_array`` / ``diameter_array`` /
    ``clustering_array``::

        live = LiveAnalyzer("crawl.rtrc")
        while crawling:
            if live.refresh():
                print(len(live.contacts(10.0)), "contacts so far")

    Each query after a refresh extracts only the newly appended part;
    previously computed parts are served from a per-part cache and
    merged with the fresh tail.  Merging is cheap (linear in result
    size) compared to extraction, so a long-running crawl pays per
    round roughly the cost of analyzing just that round's data.

    Lifecycle: :meth:`close` (or a ``with`` block) drops the memmap;
    cached results stay readable, new analyses and refreshes raise.
    """

    def __init__(self, path: str | Path, mmap: bool = True) -> None:
        super().__init__()
        self.path = Path(path)
        self._mmap = bool(mmap)
        self._closed = False
        self._store = None
        self.metadata: TraceMetadata = TraceMetadata()
        # Snapshot indices cutting the store into growth parts: part i
        # covers snapshots [_edges[i], _edges[i + 1]).
        self._edges: list[int] = [0]
        # Guard against a store whose past was rewritten: the last
        # committed snapshot time must never change between refreshes.
        self._last_edge_time: float | None = None
        # (kind, part_index, params) -> task result; the incremental
        # heart — parts never change, so their results never expire.
        self._task_cache: dict[tuple, object] = {}
        self.refresh()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop the memmapped store; cached merged results survive.

        New analyses and refreshes raise afterwards — mirroring
        :class:`~repro.core.windowed.WindowedAnalyzer`.
        """
        self._closed = True
        self._store = None

    def __enter__(self) -> "LiveAnalyzer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _open_store(self):
        if self._store is None:
            raise ValueError(f"{self.path}: analyzer is closed")
        return self._store

    # -- growth tracking ----------------------------------------------------

    def refresh(self) -> int:
        """Re-memmap the store; returns how many new snapshots appeared.

        New snapshots become one new part; analyses requested
        afterwards extract only that part and re-merge.  A refresh
        that observes no growth is free and invalidates nothing.
        Raises ``ValueError`` if the store shrank or its committed
        prefix changed — the append-only contract is broken and
        incremental results would be silently wrong.
        """
        if self._closed:
            raise ValueError(f"{self.path}: analyzer is closed")
        store, metadata = read_store_rtrc(self.path, mmap=self._mmap)
        known = self._edges[-1]
        if store.snapshot_count < known:
            raise ValueError(
                f"{self.path}: store shrank from {known} to "
                f"{store.snapshot_count} snapshots; LiveAnalyzer requires "
                "an append-only store"
            )
        if known and self._last_edge_time is not None:
            if float(store.times[known - 1]) != self._last_edge_time:
                raise ValueError(
                    f"{self.path}: committed snapshots changed under the "
                    "analyzer; LiveAnalyzer requires an append-only store"
                )
        self._store = store
        self.metadata = metadata
        grown = store.snapshot_count - known
        if grown:
            self._edges.append(store.snapshot_count)
            self._last_edge_time = float(store.times[store.snapshot_count - 1])
            # Merged results are stale; the per-part task cache is not.
            self._contacts.clear()
            self._sessions.clear()
            self._samples.clear()
        return grown

    @property
    def snapshot_count(self) -> int:
        """Snapshots in the store as of the last refresh."""
        return self._edges[-1]

    @property
    def observation_count(self) -> int:
        """Observation rows in the store as of the last refresh."""
        return self._open_store().observation_count

    @property
    def part_count(self) -> int:
        """Growth parts observed so far (one per growing refresh)."""
        return len(self._edges) - 1

    # -- BoundaryMergeAnalyzer plumbing -------------------------------------

    def _map(self, kind: str, params_per_part: Sequence[tuple]) -> list[object]:
        """One task result per part, extracting only uncached parts.

        Cache keys include the part's own parameters, so strided
        analyses (whose per-part phase depends only on the lengths of
        *earlier* parts, which never change) hit the cache too.
        """
        store = self._open_store()
        results: list[object] = []
        for index, params in enumerate(params_per_part):
            key = (kind, index, params)
            if key not in self._task_cache:
                lo, hi = self._edges[index], self._edges[index + 1]
                part = Trace.from_columns(
                    store.slice_snapshots(lo, hi), self.metadata
                )
                self._task_cache[key] = extract_shard_task(part, kind, params)
            results.append(self._task_cache[key])
        return results

    def _strided_samples(self, kind: str, head: tuple, every: int) -> np.ndarray:
        if not self.part_count:
            raise ValueError(
                f"{self.path}: store holds no snapshots yet; refresh() "
                "after the producer commits"
            )
        return super()._strided_samples(kind, head, every)

    def _part_first_times(self) -> list[float]:
        store = self._open_store()
        return [float(store.times[lo]) for lo in self._edges[:-1]]

    def _part_lengths(self) -> list[int]:
        return np.diff(np.asarray(self._edges, dtype=np.int64)).tolist()
