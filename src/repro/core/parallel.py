"""Shard task execution: one task vocabulary for every backend.

The sharded and windowed analyzers fan per-shard extraction over
workers.  A *task* is a plain ``(kind, params)`` pair — picklable, so
the same task runs on an in-memory shard (thread backend, serial
windowed loop) or inside a spawned worker process that memmap-loads
its shard from a per-shard ``.rtrc`` file (process backend).  The
shard file *is* the input channel: the parent ships a path plus a tiny
task tuple, the worker pages in only what the extraction touches.

Results travel as **compact array payloads** instead of object lists:
contact intervals become five flat arrays, sessions become a CSR-style
``(user ids, offsets, times, xyz)`` quadruple, and the per-snapshot
metrics (zone occupation, degrees, diameters, clustering) are already
arrays.  Pickling a shard's result therefore costs a handful of buffer
copies regardless of how many Python objects the final answer
materializes — the parent decodes payloads back into the exact
``ContactInterval`` / ``UserSession`` objects the serial extractors
produce, so the boundary merges stay bit-for-bit.

Both backends run the *same* :func:`extract_shard_task` body; the
codec (:func:`encode_payload` / :func:`decode_payload`) wraps it only
where a pickle boundary actually exists — the process backend's
:func:`run_shard_file_task`.  In-process execution (thread backend,
serial windowed loop) passes the extractor's objects straight
through, paying nothing.  The equivalence suite
(``tests/unit/core/test_parallel_backends.py``) pins both paths
against the unsharded oracle.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core import losgraph, spatial
from repro.core.contacts import (
    ContactInterval,
    extract_contacts,
    extract_contacts_multirange,
)
from repro.trace import Trace, UserSession, extract_sessions, read_trace_rtrc
from repro.trace.columnar import UserInterner

#: Task kinds understood by :func:`run_shard_task`.
TASK_KINDS = (
    "contacts",
    "contacts_multirange",
    "sessions",
    "zone_occupation",
    "degrees",
    "diameters",
    "clustering",
)

#: Payload of one shard's contact extraction: ``(ids_a, ids_b, starts,
#: ends, censored)`` flat arrays, one row per interval, in the exact
#: order the serial extractor emits.
ContactPayload = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: Payload of one shard's session extraction: ``(user_ids, offsets,
#: times, xyz)`` — CSR layout, session ``i`` owns rows
#: ``offsets[i]:offsets[i + 1]``.
SessionPayload = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


# -- payload codecs --------------------------------------------------------


def encode_contacts(
    contacts: Sequence[ContactInterval], users: UserInterner
) -> ContactPayload:
    """Contact intervals as five flat arrays (order preserved)."""
    n = len(contacts)
    ids_a = np.fromiter((users.id_of(c.user_a) for c in contacts), np.int64, count=n)
    ids_b = np.fromiter((users.id_of(c.user_b) for c in contacts), np.int64, count=n)
    starts = np.fromiter((c.start for c in contacts), np.float64, count=n)
    ends = np.fromiter((c.end for c in contacts), np.float64, count=n)
    censored = np.fromiter((c.censored for c in contacts), np.bool_, count=n)
    return ids_a, ids_b, starts, ends, censored


def decode_contacts(
    payload: ContactPayload, names: Sequence[str]
) -> list[ContactInterval]:
    """Rebuild the exact interval list :func:`encode_contacts` saw."""
    ids_a, ids_b, starts, ends, censored = payload
    return [
        ContactInterval(names[a], names[b], start, end, flag)
        for a, b, start, end, flag in zip(
            ids_a.tolist(), ids_b.tolist(), starts.tolist(), ends.tolist(),
            censored.tolist(),
        )
    ]


def encode_sessions(
    sessions: Sequence[UserSession], users: UserInterner
) -> SessionPayload:
    """Sessions as one CSR block (order preserved)."""
    n = len(sessions)
    uids = np.fromiter((users.id_of(s.user) for s in sessions), np.int64, count=n)
    counts = np.fromiter((s.observation_count for s in sessions), np.int64, count=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if n:
        blocks = [s.as_arrays() for s in sessions]
        times = np.concatenate([t for t, _ in blocks])
        xyz = np.concatenate([x for _, x in blocks])
    else:
        times = np.empty(0, dtype=np.float64)
        xyz = np.empty((0, 3), dtype=np.float64)
    return uids, offsets, times, xyz


def decode_sessions(
    payload: SessionPayload, names: Sequence[str]
) -> list[UserSession]:
    """Rebuild the exact session list :func:`encode_sessions` saw."""
    uids, offsets, times, xyz = payload
    bounds = offsets.tolist()
    return [
        UserSession._from_arrays(names[uid], times[lo:hi], xyz[lo:hi])
        for uid, lo, hi in zip(uids.tolist(), bounds, bounds[1:])
    ]


def encode_payload(kind: str, result: object, users: UserInterner) -> object:
    """Compact-array form of one task result, for the pickle boundary."""
    if kind == "contacts":
        return encode_contacts(result, users)
    if kind == "contacts_multirange":
        return {r: encode_contacts(c, users) for r, c in result.items()}
    if kind == "sessions":
        return encode_sessions(result, users)
    return result


def decode_payload(kind: str, payload: object, names: Sequence[str]) -> object:
    """Inverse of :func:`encode_payload` — the exact extractor objects."""
    if kind == "contacts":
        return decode_contacts(payload, names)
    if kind == "contacts_multirange":
        return {r: decode_contacts(p, names) for r, p in payload.items()}
    if kind == "sessions":
        return decode_sessions(payload, names)
    return payload


# -- the task runner -------------------------------------------------------


def phased_selection(trace: Trace, every: int, phase: int) -> Trace | None:
    """The shard's slice of a globally strided snapshot selection.

    ``phase`` is the first local snapshot the global ``range(0, S,
    every)`` stride lands on inside this shard; ``None`` means the
    stride skips the shard entirely.
    """
    if every == 1:
        return trace if len(trace) else None
    kept = np.arange(phase, len(trace), every)
    if not len(kept):
        return None
    return Trace.from_columns(trace.columns.select(kept), trace.metadata)


def extract_shard_task(trace: Trace, kind: str, params: tuple) -> object:
    """Run one analysis task on one shard; returns the raw result.

    This is the single worker body every backend executes —
    interval/session *objects* for the list-valued tasks, sample
    arrays for the rest.  Strided tasks carry their shard's phase in
    ``params`` so the union of the per-shard selections reproduces the
    global stride exactly.
    """
    if kind == "contacts":
        (r,) = params
        return extract_contacts(trace, r)
    if kind == "contacts_multirange":
        (radii,) = params
        return extract_contacts_multirange(trace, radii)
    if kind == "sessions":
        (gap_threshold,) = params
        return extract_sessions(trace, gap_threshold)
    if kind == "zone_occupation":
        cell_size, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.int64)
        return spatial.zone_occupation(sub, cell_size, 1)
    if kind == "degrees":
        r, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.int64)
        return np.asarray(losgraph.degree_samples(sub, r, 1), dtype=np.int64)
    if kind == "diameters":
        r, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.int64)
        return np.asarray(losgraph.diameter_series(sub, r, 1), dtype=np.int64)
    if kind == "clustering":
        r, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.float64)
        return np.asarray(losgraph.clustering_series(sub, r, 1), dtype=np.float64)
    raise ValueError(f"unknown shard task {kind!r}")


# -- the process backend ---------------------------------------------------


def run_shard_task(trace: Trace, kind: str, params: tuple) -> object:
    """The shared task body plus the payload encoding, in the worker."""
    result = extract_shard_task(trace, kind, params)
    return encode_payload(kind, result, trace.columns.users)


def run_shard_file_task(path: str, kind: str, params: tuple) -> object:
    """Worker entry point of the process backend.

    Runs inside a spawned worker: memmap-load the shard's ``.rtrc``
    file (zero parse, lazy paging — only the pages the task touches
    fault in), execute the shared task body, and encode the result for
    the trip back through the pipe.  Module-level so it pickles under
    the ``spawn`` start method.
    """
    return run_shard_task(read_trace_rtrc(Path(path), mmap=True), kind, params)


def process_pool(max_workers: int) -> ProcessPoolExecutor:
    """A ``spawn``-based process pool.

    ``spawn`` (not ``fork``) so workers start from a clean interpreter
    on every platform: nothing of the parent's heap — in particular
    its memmapped stores — leaks into the children, which is exactly
    the out-of-core contract the per-shard files exist for.
    """
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=multiprocessing.get_context("spawn"),
    )
