"""Shard task execution: one task vocabulary for every backend.

The sharded and windowed analyzers fan per-shard extraction over
workers.  A *task* is a plain ``(kind, params)`` pair — picklable, so
the same task runs on an in-memory shard (thread backend, serial
windowed loop) or inside a spawned worker process that memmap-loads
its shard from a per-shard ``.rtrc`` file (process backend).  The
shard file *is* the input channel: the parent ships a path plus a tiny
task tuple, the worker pages in only what the extraction touches.

Results travel as **compact array payloads** instead of object lists:
the extractors themselves now produce columnar results — contact
intervals as a five-array :class:`~repro.core.kernels.ContactSet`,
sessions as a CSR-backed :class:`~repro.trace.SessionSet` — and the
per-snapshot metrics (zone occupation, degrees, diameters, clustering)
are already arrays.  The codec is therefore *thin*: encoding a shard's
result is handing over the set's existing arrays (no per-object
interner lookups), decoding is rebuilding the set around the parent's
name table (no object construction — ``ContactInterval`` /
``UserSession`` views stay lazy).  Interner ids are stable across
every view of a measurement, so worker-side ids decode directly
against the parent's table.

Every backend runs the *same* :func:`extract_shard_task` body; the
codec (:func:`encode_payload` / :func:`decode_payload`) wraps it only
where a pickle boundary actually exists — the process backend's
:func:`run_shard_file_task`, and the network backend's HTTP result
channel (:mod:`repro.distributed`), which ships the identical
part-file-plus-task-tuple shape to workers in *other processes on
other machines*.  In-process execution (thread backend, serial
windowed loop) passes the extractor's sets straight through, paying
nothing.  The equivalence suite
(``tests/unit/core/test_parallel_backends.py``,
``tests/unit/distributed/``) pins every path against the unsharded
oracle.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import weakref
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core import losgraph, spatial
from repro.core.contacts import (
    extract_contact_set,
    extract_contact_sets_multirange,
)
from repro.core.kernels import ContactSet
from repro.trace import (
    SessionSet,
    Trace,
    extract_session_set,
    read_trace_rtrc,
    write_trace_rtrc,
)

#: Execution backends understood by :class:`PartScheduler`.
SCHEDULER_BACKENDS = ("serial", "thread", "process", "network")

#: Task kinds understood by :func:`run_shard_task`.
TASK_KINDS = (
    "contacts",
    "contacts_multirange",
    "sessions",
    "zone_occupation",
    "degrees",
    "diameters",
    "clustering",
)

#: Payload of one shard's contact extraction: ``(ids_a, ids_b, starts,
#: ends, censored)`` flat arrays, one row per interval, in the exact
#: order the serial extractor emits.
ContactPayload = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: Payload of one shard's session extraction: ``(user_ids, offsets,
#: times, xyz)`` — CSR layout, session ``i`` owns rows
#: ``offsets[i]:offsets[i + 1]``.
SessionPayload = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


# -- payload codecs --------------------------------------------------------


def encode_contacts(contacts: ContactSet) -> ContactPayload:
    """A contact set's five flat arrays — already the payload."""
    return contacts.arrays()


def decode_contacts(payload: ContactPayload, names: Sequence[str]) -> ContactSet:
    """Rebuild the set around the parent's name table (no boxing)."""
    return ContactSet(*payload, names)


def encode_sessions(sessions: SessionSet) -> SessionPayload:
    """A session set's CSR block — already the payload."""
    return sessions.arrays()


def decode_sessions(payload: SessionPayload, names: Sequence[str]) -> SessionSet:
    """Rebuild the set around the parent's name table (no boxing)."""
    return SessionSet(*payload, names)


def encode_payload(kind: str, result: object) -> object:
    """Compact-array form of one task result, for the pickle boundary."""
    if kind == "contacts":
        return encode_contacts(result)
    if kind == "contacts_multirange":
        return {r: encode_contacts(c) for r, c in result.items()}
    if kind == "sessions":
        return encode_sessions(result)
    return result


def decode_payload(kind: str, payload: object, names: Sequence[str]) -> object:
    """Inverse of :func:`encode_payload` — the extractor's columnar sets."""
    if kind == "contacts":
        return decode_contacts(payload, names)
    if kind == "contacts_multirange":
        return {r: decode_contacts(p, names) for r, p in payload.items()}
    if kind == "sessions":
        return decode_sessions(payload, names)
    return payload


# -- the task runner -------------------------------------------------------


def phased_selection(trace: Trace, every: int, phase: int) -> Trace | None:
    """The shard's slice of a globally strided snapshot selection.

    ``phase`` is the first local snapshot the global ``range(0, S,
    every)`` stride lands on inside this shard; ``None`` means the
    stride skips the shard entirely.
    """
    if every == 1:
        return trace if len(trace) else None
    kept = np.arange(phase, len(trace), every)
    if not len(kept):
        return None
    return Trace.from_columns(trace.columns.select(kept), trace.metadata)


def extract_shard_task(trace: Trace, kind: str, params: tuple) -> object:
    """Run one analysis task on one shard; returns the raw result.

    This is the single worker body every backend executes — columnar
    :class:`~repro.core.kernels.ContactSet` /
    :class:`~repro.trace.SessionSet` results for the interval tasks,
    sample arrays for the rest.  Strided tasks carry their shard's
    phase in ``params`` so the union of the per-shard selections
    reproduces the global stride exactly; ``contacts_multirange``
    carries ``(radii, radius_workers)`` so a part can fan its radius
    sweep across threads internally.
    """
    if kind == "contacts":
        (r,) = params
        return extract_contact_set(trace, r)
    if kind == "contacts_multirange":
        radii, radius_workers = params
        return extract_contact_sets_multirange(trace, radii, radius_workers)
    if kind == "sessions":
        (gap_threshold,) = params
        return extract_session_set(trace, gap_threshold)
    if kind == "zone_occupation":
        cell_size, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.int64)
        return spatial.zone_occupation(sub, cell_size, 1)
    if kind == "degrees":
        r, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.int64)
        return np.asarray(losgraph.degree_samples(sub, r, 1), dtype=np.int64)
    if kind == "diameters":
        r, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.int64)
        return np.asarray(losgraph.diameter_series(sub, r, 1), dtype=np.int64)
    if kind == "clustering":
        r, every, phase = params
        sub = phased_selection(trace, every, phase)
        if sub is None:
            return np.empty(0, dtype=np.float64)
        return np.asarray(losgraph.clustering_series(sub, r, 1), dtype=np.float64)
    raise ValueError(f"unknown shard task {kind!r}")


# -- the process backend ---------------------------------------------------


def run_shard_task(trace: Trace, kind: str, params: tuple) -> object:
    """The shared task body plus the payload encoding, in the worker."""
    result = extract_shard_task(trace, kind, params)
    return encode_payload(kind, result)


def run_shard_file_task(path: str, kind: str, params: tuple) -> object:
    """Worker entry point of the process backend.

    Runs inside a spawned worker: memmap-load the shard's ``.rtrc``
    file (zero parse, lazy paging — only the pages the task touches
    fault in), execute the shared task body, and encode the result for
    the trip back through the pipe.  Module-level so it pickles under
    the ``spawn`` start method.
    """
    return run_shard_task(read_trace_rtrc(Path(path), mmap=True), kind, params)


def process_pool(max_workers: int) -> ProcessPoolExecutor:
    """A ``spawn``-based process pool.

    ``spawn`` (not ``fork``) so workers start from a clean interpreter
    on every platform: nothing of the parent's heap — in particular
    its memmapped stores — leaks into the children, which is exactly
    the out-of-core contract the per-shard files exist for.
    """
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=multiprocessing.get_context("spawn"),
    )


# -- the part scheduler ----------------------------------------------------


class PartAnalysisError(RuntimeError):
    """A part task failed; the message names the failing part.

    :class:`~repro.core.sharded.ShardAnalysisError` specializes it for
    shard parts, so existing callers keep catching what they caught.
    """


class PartScheduler:
    """Run one ``(kind, part, params)`` task set on a chosen backend.

    This is the execution engine every time-partitioned analyzer
    (:class:`~repro.core.sharded.ShardedAnalyzer`,
    :class:`~repro.core.windowed.WindowedAnalyzer`,
    :class:`~repro.core.live.LiveAnalyzer`) fans its per-part
    extractions through.  The analyzers decide *what* the parts are
    (shards, windows, append rounds) and how to merge; the scheduler
    owns *where* tasks run and every resource that entails:

    * ``backend="serial"`` — tasks run inline, strictly one part at a
      time, ``part_trace`` called per task so at most one part's pages
      are live (the windowed analyzer's out-of-core contract).
    * ``backend="thread"`` — a per-run ``ThreadPoolExecutor`` over the
      in-memory part views.  Cheap to start; the run-length extraction
      kernels are numpy-bound and release the GIL, so parts overlap.
    * ``backend="process"`` — a persistent ``spawn``-based
      ``ProcessPoolExecutor`` whose workers memmap-load one ``.rtrc``
      file per part (:func:`run_shard_file_task`).  Parts that already
      live on disk (shard directories, append-round files) are handed
      to workers as-is; parts that only exist as in-memory views are
      materialized lazily into a private temp directory, once per part
      index.
    * ``backend="network"`` — a persistent
      :class:`~repro.distributed.NetworkExecutor` serving the same
      part files over a loopback (or LAN) HTTP coordinator to
      ``slmob worker`` processes, which may live on other machines.
      Tasks are leased with a deadline: a slow or dead worker's task
      is re-dispatched, and results merge first-write-wins, so the
      analysis is bit-for-bit the serial result at any worker count.
      Tune with the ``network=`` :class:`~repro.distributed.NetworkOptions`.

    Part indices must be stable and parts immutable: the scheduler
    caches materialized part files by index, so index ``i`` must
    always denote the same snapshots (true for shards, windows, and
    append-only growth parts).

    Lifecycle: :meth:`close` shuts the worker pool down and deletes
    the materialized part files.  A pool broken by a worker death is
    discarded on detection so the next run respawns a fresh one.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        *,
        file_prefix: str = "part",
        error_cls: type[PartAnalysisError] = PartAnalysisError,
        network: object | None = None,
    ) -> None:
        if backend not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {SCHEDULER_BACKENDS}"
            )
        self.backend = backend
        self._max_workers = max_workers
        self._file_prefix = file_prefix
        self._error_cls = error_cls
        self._network_options = network
        self._netexec = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_size = 0
        self._pool_finalizer: weakref.finalize | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._part_files: dict[int, Path] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and delete materialized part files."""
        self._closed = True
        if self._netexec is not None:
            self._netexec.close()
            self._netexec = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        self._part_files.clear()

    def __enter__(self) -> "PartScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def pool(self) -> ProcessPoolExecutor | None:
        """The live process pool, if one has been spawned."""
        return self._pool

    @property
    def materialized_paths(self) -> list[Path]:
        """Part files this scheduler wrote (not externally provided ones)."""
        return [self._part_files[i] for i in sorted(self._part_files)]

    # -- execution ---------------------------------------------------------

    def run(
        self,
        kind: str,
        tasks: Sequence[tuple[int, tuple]],
        *,
        part_trace: Callable[[int], Trace],
        part_path: Callable[[int], Path | None] | None = None,
        names: Sequence[str] | Callable[[], Sequence[str]] | None = None,
        wrap_error: Callable[[int, str, Exception], Exception] | None = None,
    ) -> list[object]:
        """Run ``tasks`` (``(part_index, params)`` pairs), in task order.

        ``part_trace(i)`` yields part ``i`` as an in-memory (usually
        zero-copy) trace view; ``part_path(i)`` may name an ``.rtrc``
        file already holding exactly that part, which the process
        backend then memmap-loads directly instead of materializing a
        copy.  ``names`` is the interner's name table (or a callable
        producing it) used to decode process-backend payloads back
        into extractor objects.  ``wrap_error(i, kind, exc)`` builds
        the exception re-raised when part ``i``'s task fails (the
        original rides along as ``__cause__``).

        A single-task run executes inline on every backend — there is
        no parallelism to buy, so no spawn or shard-file overhead is
        paid.
        """
        if self._closed:
            raise ValueError("part scheduler is closed")
        tasks = list(tasks)
        wrap = wrap_error or self._default_error
        if self.backend == "serial" or len(tasks) <= 1:
            return [
                self._run_inline(index, kind, params, part_trace, wrap)
                for index, params in tasks
            ]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self._workers(len(tasks))) as pool:
                futures = [
                    pool.submit(extract_shard_task, part_trace(index), kind, params)
                    for index, params in tasks
                ]
                return [
                    self._collect(index, kind, future, wrap)
                    for (index, _), future in zip(tasks, futures)
                ]
        paths = [self._task_file(index, part_trace, part_path) for index, _ in tasks]
        if self.backend == "network":
            payloads = self._network_executor().run(
                kind, tasks, dict(zip((i for i, _ in tasks), paths)), wrap
            )
            return self._decode_all(kind, payloads, names)
        pool = self._process_pool(len(tasks))
        try:
            futures = [
                pool.submit(run_shard_file_task, str(path), kind, params)
                for path, (_, params) in zip(paths, tasks)
            ]
        except BrokenProcessPool as exc:
            self.discard_pool()
            raise self._error_cls(
                f"{kind}: the worker pool broke before part tasks could "
                f"be submitted: {exc}"
            ) from exc
        payloads = [
            self._collect(index, kind, future, wrap)
            for (index, _), future in zip(tasks, futures)
        ]
        return self._decode_all(kind, payloads, names)

    def _decode_all(
        self,
        kind: str,
        payloads: Sequence[object],
        names: Sequence[str] | Callable[[], Sequence[str]] | None,
    ) -> list[object]:
        """Decode worker payloads against the parent's name table."""
        name_table = names() if callable(names) else names
        if name_table is None:
            raise ValueError(
                f"{self.backend} backend needs the interner's name table "
                "to decode worker payloads"
            )
        return [decode_payload(kind, payload, name_table) for payload in payloads]

    def _network_executor(self):
        """The persistent network coordinator, created on first use.

        Imported lazily: :mod:`repro.distributed` sits on top of this
        module, and serial/thread/process schedulers never pay for it.
        """
        if self._netexec is None:
            from repro.distributed import NetworkExecutor

            self._netexec = NetworkExecutor(
                self._network_options, default_workers=self._max_workers
            )
        return self._netexec

    def network_url(self) -> str:
        """The network coordinator's base URL (workers attach here).

        Starts the coordinator if it is not yet running; only valid on
        ``backend="network"`` schedulers.
        """
        if self.backend != "network":
            raise ValueError(
                f"scheduler backend is {self.backend!r}; only the network "
                "backend has a coordinator URL"
            )
        if self._closed:
            raise ValueError("part scheduler is closed")
        return self._network_executor().url

    def _process_pool(self, task_count: int) -> ProcessPoolExecutor:
        """The persistent spawn pool, created on first use.

        Spawning workers is much more expensive than a thread pool, so
        the pool is reused across runs; a ``weakref`` finalizer makes
        sure an abandoned scheduler does not leak worker processes
        until interpreter exit.  A pool sized for an earlier, smaller
        run is replaced when a bigger task set arrives (a live
        follower's first refresh may see two rounds, a later backfill
        forty — the backfill must not be pinned to two workers); it
        never shrinks.
        """
        size = self._workers(task_count)
        if self._pool is not None and self._pool_size < size:
            self.discard_pool()
        if self._pool is None:
            self._pool = process_pool(size)
            self._pool_size = size
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    def discard_pool(self) -> None:
        """Drop a broken pool so the next run spawns a fresh one.

        ``ProcessPoolExecutor`` marks itself permanently broken when a
        worker dies (OOM kill, segfault); keeping it around would make
        every later run fail on submit even though the part files and
        traces are intact.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None

    # -- plumbing ----------------------------------------------------------

    def _workers(self, task_count: int) -> int:
        return self._max_workers or min(task_count, os.cpu_count() or 1)

    def _run_inline(
        self,
        index: int,
        kind: str,
        params: tuple,
        part_trace: Callable[[int], Trace],
        wrap: Callable[[int, str, Exception], Exception],
    ) -> object:
        try:
            return extract_shard_task(part_trace(index), kind, params)
        except Exception as exc:
            raise wrap(index, kind, exc) from exc

    def _collect(
        self,
        index: int,
        kind: str,
        future: Future,
        wrap: Callable[[int, str, Exception], Exception],
    ) -> object:
        try:
            return future.result()
        except Exception as exc:
            if isinstance(exc, BrokenProcessPool):
                self.discard_pool()
            raise wrap(index, kind, exc) from exc

    def _default_error(
        self, index: int, kind: str, exc: Exception
    ) -> PartAnalysisError:
        return self._error_cls(f"{kind} failed on part {index}: {exc}")

    def _task_file(
        self,
        index: int,
        part_trace: Callable[[int], Trace],
        part_path: Callable[[int], Path | None] | None,
    ) -> Path:
        """The ``.rtrc`` file a worker should memmap-load for part ``index``.

        An analyzer-provided on-disk part (shard dir, append round) is
        used as-is; otherwise the part is materialized once into the
        scheduler's temp directory and reused across runs.
        """
        if part_path is not None:
            existing = part_path(index)
            if existing is not None:
                return Path(existing)
        if index not in self._part_files:
            if self._tmpdir is None:
                self._tmpdir = tempfile.TemporaryDirectory(prefix="rtrc-parts-")
            target = Path(self._tmpdir.name) / f"{self._file_prefix}-{index:05d}.rtrc"
            self._part_files[index] = write_trace_rtrc(part_trace(index), target)
        return self._part_files[index]
