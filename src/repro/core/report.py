"""Plain-text rendering of analysis results.

The experiment harness regenerates the paper's figures as *tables of
series* (no plotting dependency is available offline); these helpers
format them consistently for the CLI, the benchmarks, and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.stats import ECDF


def render_summary_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Fixed-width table from uniform dict rows."""
    if not rows:
        raise ValueError("no rows to render")
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ValueError("rows have inconsistent columns")
    widths = {
        column: max(len(str(column)), *(len(_fmt(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns)
        for row in rows
    ]
    return "\n".join([header, rule, *body])


def render_ccdf_table(
    series: Mapping[str, ECDF],
    points: Sequence[float],
    label: str = "x",
    complementary: bool = True,
) -> str:
    """Evaluate several distributions on a common grid and tabulate.

    One column per named series, one row per grid point; values are
    CCDF (default) or CDF heights.  This is the text twin of one
    figure panel: same curves, same axes, numbers instead of ink.
    """
    if not series:
        raise ValueError("no series to render")
    if not points:
        raise ValueError("no evaluation points")
    names = list(series)
    rows = []
    for x in points:
        row: dict[str, object] = {label: _fmt_number(x)}
        for name in names:
            ecdf = series[name]
            value = ecdf.ccdf(x) if complementary else ecdf.cdf(x)
            row[name] = f"{float(value):.3f}"
        rows.append(row)
    return render_summary_table(rows)


def log_grid(low: float, high: float, count: int = 9) -> list[float]:
    """A log-spaced evaluation grid, matching the paper's log axes."""
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
    return [float(v) for v in np.logspace(np.log10(low), np.log10(high), count)]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return _fmt_number(value)
    return str(value)


def _fmt_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.2f}"
