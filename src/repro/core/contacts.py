"""Contact statistics: CT, ICT and FT (§3.1 of the paper).

Definitions, following Chaintreau et al. and the paper:

* **Contact time (CT)** — the interval during which a pair of users
  stays within communication range ``r``.
* **Inter-contact time (ICT)** — for a pair with successive contact
  intervals ``[t^k_s, t^k_e]``, the gap ``t^{k+1}_s - t^k_e``.
* **First contact time (FT)** — per user: the waiting time from her
  first appearance until she is first within range of *any* other
  user.

Sampling convention.  The monitor observes the world only every τ
seconds, so contacts are defined on the sampled sequence: a pair in
range at consecutive snapshots belongs to one contact interval.  A
contact observed from snapshot ``t_i`` through ``t_j`` is assigned
duration ``t_j - t_i + τ`` — the pair was already in range when first
seen and remained so until somewhere inside the next period; this also
gives single-snapshot contacts the natural resolution-limited duration
τ (the paper's CT axes indeed start at τ = 10 s).  Contacts still open
when the trace ends are *censored*: they are closed at the final
snapshot and flagged, and excluded from duration statistics by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.trace import Trace

#: Bluetooth-class communication range used throughout the paper, meters.
BLUETOOTH_RANGE = 10.0

#: WiFi-class (802.11a) communication range used throughout the paper, meters.
WIFI_RANGE = 80.0


@dataclass(frozen=True)
class ContactInterval:
    """One contact between a pair of users.

    ``start``/``end`` are in trace time; ``end`` includes the +τ
    closure for completed contacts.  ``censored`` marks contacts cut
    short by the end of the measurement.
    """

    user_a: str
    user_b: str
    start: float
    end: float
    censored: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"contact ends ({self.end}) before it starts ({self.start})")
        if self.user_a == self.user_b:
            raise ValueError(f"self-contact for user {self.user_a!r}")

    @property
    def pair(self) -> tuple[str, str]:
        """The user pair, in canonical (sorted) order."""
        return (self.user_a, self.user_b) if self.user_a <= self.user_b else (self.user_b, self.user_a)

    @property
    def duration(self) -> float:
        """Length of the contact in seconds."""
        return self.end - self.start


def _snapshot_pairs(users: list[str], coords: np.ndarray, r: float) -> set[tuple[str, str]]:
    """Canonically ordered pairs of users within range ``r``."""
    n = len(users)
    if n < 2:
        return set()
    plane = coords[:, :2]
    diff = plane[:, None, :] - plane[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    close = np.argwhere((dist < r) & np.triu(np.ones((n, n), dtype=bool), k=1))
    pairs: set[tuple[str, str]] = set()
    for i, j in close:
        a, b = users[int(i)], users[int(j)]
        pairs.add((a, b) if a <= b else (b, a))
    return pairs


def extract_contacts(trace: Trace, r: float) -> list[ContactInterval]:
    """All contact intervals of a trace under communication range ``r``.

    Runs in one pass over the snapshots, tracking open contacts in a
    dictionary; strict closure (a pair out of range at any snapshot
    ends the contact — missing one sample means missing the pair).
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    tau = trace.metadata.tau
    open_contacts: dict[tuple[str, str], float] = {}
    last_seen: dict[tuple[str, str], float] = {}
    contacts: list[ContactInterval] = []

    for snapshot in trace:
        users, coords = snapshot.as_arrays()
        current = _snapshot_pairs(users, coords, r)
        now = snapshot.time
        # Close contacts that did not survive into this snapshot.
        for pair in list(open_contacts):
            if pair not in current:
                start = open_contacts.pop(pair)
                contacts.append(
                    ContactInterval(pair[0], pair[1], start, last_seen[pair] + tau)
                )
                del last_seen[pair]
        # Open new contacts / refresh ongoing ones.
        for pair in current:
            if pair not in open_contacts:
                open_contacts[pair] = now
            last_seen[pair] = now

    # Whatever is still open is censored by the end of the measurement.
    for pair, start in open_contacts.items():
        contacts.append(
            ContactInterval(pair[0], pair[1], start, last_seen[pair], censored=True)
        )
    contacts.sort(key=lambda c: (c.start, c.pair))
    return contacts


def contact_durations(
    contacts: Iterable[ContactInterval],
    include_censored: bool = False,
) -> list[float]:
    """CT samples (seconds) from extracted contacts."""
    return [
        c.duration
        for c in contacts
        if include_censored or not c.censored
    ]


def inter_contact_times(contacts: Iterable[ContactInterval]) -> list[float]:
    """ICT samples: gaps between successive contacts of each pair.

    The gap runs from the *end* of contact ``k`` to the *start* of
    contact ``k+1`` of the same pair, per the paper's definition
    ``ICT^k = t^{k+1}_s - t^k_e``.  Censored end times still delimit a
    real gap start, so censored contacts participate.
    """
    by_pair: dict[tuple[str, str], list[ContactInterval]] = {}
    for contact in contacts:
        by_pair.setdefault(contact.pair, []).append(contact)
    gaps: list[float] = []
    for intervals in by_pair.values():
        intervals.sort(key=lambda c: c.start)
        for previous, current in zip(intervals, intervals[1:]):
            gap = current.start - previous.end
            if gap > 0:
                gaps.append(gap)
    return gaps


def first_contact_times(
    trace: Trace,
    r: float,
    contacts: Iterable[ContactInterval] | None = None,
) -> dict[str, float]:
    """FT per user: wait from first appearance to first neighbour.

    Users who never contact anyone within the trace are absent from
    the result (their FT is right-censored); callers needing the count
    can compare against ``trace.unique_users()``.
    """
    if contacts is None:
        contacts = extract_contacts(trace, r)
    first_contact: dict[str, float] = {}
    for contact in contacts:
        for user in contact.pair:
            if user not in first_contact or contact.start < first_contact[user]:
                first_contact[user] = contact.start
    first_appearance: dict[str, float] = {}
    for snapshot in trace:
        for user in snapshot.users:
            if user not in first_appearance:
                first_appearance[user] = snapshot.time
    return {
        user: first_contact[user] - first_appearance[user]
        for user in first_contact
    }


def iter_contact_pairs(contacts: Iterable[ContactInterval]) -> Iterator[tuple[str, str]]:
    """Distinct user pairs that ever met, in first-contact order."""
    seen: set[tuple[str, str]] = set()
    for contact in contacts:
        if contact.pair not in seen:
            seen.add(contact.pair)
            yield contact.pair
