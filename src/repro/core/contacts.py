"""Contact statistics: CT, ICT and FT (§3.1 of the paper).

Definitions, following Chaintreau et al. and the paper:

* **Contact time (CT)** — the interval during which a pair of users
  stays within communication range ``r``.
* **Inter-contact time (ICT)** — for a pair with successive contact
  intervals ``[t^k_s, t^k_e]``, the gap ``t^{k+1}_s - t^k_e``.
* **First contact time (FT)** — per user: the waiting time from her
  first appearance until she is first within range of *any* other
  user.

Sampling convention.  The monitor observes the world only every τ
seconds, so contacts are defined on the sampled sequence: a pair in
range at consecutive snapshots belongs to one contact interval.  A
contact observed from snapshot ``t_i`` through ``t_j`` is assigned
duration ``t_j - t_i + τ`` — the pair was already in range when first
seen and remained so until somewhere inside the next period; this also
gives single-snapshot contacts the natural resolution-limited duration
τ (the paper's CT axes indeed start at τ = 10 s).  Contacts still open
when the trace ends are *censored*: they are closed at the final
snapshot and flagged, and excluded from duration statistics by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.geometry.grid import (
    planar_neighbour_pairs,
    planar_neighbour_pairs_with_distances,
)
from repro.core.kernels import (
    ContactEventTable,
    ContactSet,
    build_contact_events,
    contact_set_from_events,
    multirange_contact_sets,
)
from repro.trace import Trace

#: Bluetooth-class communication range used throughout the paper, meters.
BLUETOOTH_RANGE = 10.0

#: WiFi-class (802.11a) communication range used throughout the paper, meters.
WIFI_RANGE = 80.0


@dataclass(frozen=True)
class ContactInterval:
    """One contact between a pair of users.

    ``start``/``end`` are in trace time; ``end`` includes the +τ
    closure for completed contacts.  ``censored`` marks contacts cut
    short by the end of the measurement.
    """

    user_a: str
    user_b: str
    start: float
    end: float
    censored: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"contact ends ({self.end}) before it starts ({self.start})")
        if self.user_a == self.user_b:
            raise ValueError(f"self-contact for user {self.user_a!r}")

    @property
    def pair(self) -> tuple[str, str]:
        """The user pair, in canonical (sorted) order."""
        return (
            (self.user_a, self.user_b)
            if self.user_a <= self.user_b
            else (self.user_b, self.user_a)
        )

    @property
    def duration(self) -> float:
        """Length of the contact in seconds."""
        return self.end - self.start


def snapshot_id_pairs(user_ids: np.ndarray, xyz: np.ndarray, r: float) -> np.ndarray:
    """Interned-id pairs within range ``r`` in one snapshot.

    ``user_ids`` and ``xyz`` are one columnar snapshot slice; the
    result is an ``(m, 2)`` int64 array of global user ids with
    ``pair[:, 0] < pair[:, 1]`` numerically.  Neighbour search is the
    uniform-grid cell list, so cost scales with local density rather
    than the snapshot's square.
    """
    if len(user_ids) < 2:
        return np.empty((0, 2), dtype=np.int64)
    local = planar_neighbour_pairs(xyz[:, :2], r)
    if not len(local):
        return local
    first = user_ids[local[:, 0]]
    second = user_ids[local[:, 1]]
    return np.stack(
        (np.minimum(first, second), np.maximum(first, second)), axis=1
    )


def iter_snapshot_pairs(
    trace: Trace, r: float
) -> Iterator[tuple[float, np.ndarray, np.ndarray]]:
    """Per snapshot: ``(time, user_ids, id_pairs)`` straight off the columns.

    ``user_ids`` is the snapshot's presence slice and ``id_pairs`` the
    in-range pairs from :func:`snapshot_id_pairs`.  This is the array
    feed the DTN replay and graph layers consume; names live in
    ``trace.columns.users``.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    cols = trace.columns
    for index in range(cols.snapshot_count):
        user_ids, xyz = cols.slice_of(index)
        yield float(cols.times[index]), user_ids, snapshot_id_pairs(user_ids, xyz, r)


def extract_contact_set(trace: Trace, r: float) -> ContactSet:
    """Contact intervals as a columnar :class:`ContactSet`.

    The fast path: one event table, one run-length kernel pass
    (:mod:`repro.core.kernels`).  Strict closure (a pair out of range
    at any snapshot ends the contact — missing one sample means
    missing the pair); contacts reaching the final snapshot are
    censored there.  Bit-for-bit equivalent to
    :func:`extract_contacts_loop` and
    :func:`extract_contacts_reference`.
    """
    return contact_set_from_events(build_contact_events(trace, r))


def extract_contacts(trace: Trace, r: float) -> list[ContactInterval]:
    """All contact intervals of a trace under communication range ``r``.

    Object-list view over :func:`extract_contact_set` — same rows,
    same ``(start, pair)`` order, boxed as :class:`ContactInterval`.
    Consumers that only need numbers should take the set instead and
    read its columns.
    """
    return extract_contact_set(trace, r).intervals()


def extract_contact_sets_multirange(
    trace: Trace,
    ranges: Iterable[float],
    radius_workers: int | None = None,
) -> dict[float, ContactSet]:
    """Columnar contact sets under several ranges from one event table.

    The event table is built once at the *largest* requested radius
    with per-pair distances kept; every radius is then one run-length
    kernel pass under a distance mask.  ``radius_workers > 1`` fans
    the per-radius passes across a thread pool (pure numpy work, so
    the in-part fan actually runs concurrently); results are identical
    on any worker count.
    """
    radii = sorted({float(r) for r in ranges})
    for r in radii:
        if r <= 0:
            raise ValueError(f"communication range must be positive, got {r}")
    if not radii:
        return {}
    table = build_contact_events(
        trace, radii[-1], keep_distances=len(radii) > 1
    )
    return multirange_contact_sets(table, radii, radius_workers)


def extract_contacts_multirange(
    trace: Trace,
    ranges: Iterable[float],
    radius_workers: int | None = None,
) -> dict[float, list[ContactInterval]]:
    """Contact intervals under several communication ranges in one pass.

    Object-list view over :func:`extract_contact_sets_multirange`;
    each value is exactly what ``extract_contacts(trace, r)`` returns.
    ``ranges`` may be unsorted and may contain duplicates; the result
    is keyed by each distinct radius.  An empty ``ranges`` yields an
    empty dict.
    """
    sets = extract_contact_sets_multirange(trace, ranges, radius_workers)
    return {r: s.intervals() for r, s in sets.items()}


def extract_contacts_loop(trace: Trace, r: float) -> list[ContactInterval]:
    """The original per-snapshot state machine, kept as oracle/baseline.

    Runs in one pass over the columnar snapshots, tracking open
    contacts in a dictionary keyed by packed integer id pairs.  The
    run-length kernel (:func:`extract_contact_set`) is pinned
    bit-for-bit against this loop; benchmarks report the kernel/loop
    ratio.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    tau = trace.metadata.tau
    cols = trace.columns
    names = cols.users.names
    shift = max(len(names), 1)
    open_contacts: dict[int, float] = {}
    last_seen: dict[int, float] = {}
    closed: list[tuple[int, float, float, bool]] = []

    for index in range(cols.snapshot_count):
        user_ids, xyz = cols.slice_of(index)
        pairs = snapshot_id_pairs(user_ids, xyz, r)
        current = set((pairs[:, 0] * shift + pairs[:, 1]).tolist())
        now = float(cols.times[index])
        # Close contacts that did not survive into this snapshot.
        for key in list(open_contacts):
            if key not in current:
                start = open_contacts.pop(key)
                closed.append((key, start, last_seen.pop(key) + tau, False))
        # Open new contacts / refresh ongoing ones.
        for key in current:
            if key not in open_contacts:
                open_contacts[key] = now
            last_seen[key] = now

    # Whatever is still open is censored by the end of the measurement.
    for key, start in open_contacts.items():
        closed.append((key, start, last_seen[key], True))

    raw = []
    for key, start, end, censored in closed:
        name_a = names[key // shift]
        name_b = names[key % shift]
        if name_b < name_a:
            name_a, name_b = name_b, name_a
        raw.append((start, name_a, name_b, end, censored))
    # Tuple sort == the (start, pair) order; ties are impossible, so
    # later fields never compare and the key stays C-level.
    raw.sort()
    return [
        ContactInterval(user_a, user_b, start, end, censored)
        for start, user_a, user_b, end, censored in raw
    ]


def extract_contacts_multirange_loop(
    trace: Trace,
    ranges: Iterable[float],
) -> dict[float, list[ContactInterval]]:
    """The original batched sweep loop, kept as oracle/baseline.

    Builds the cell list once per snapshot at the *largest* requested
    radius, keeps the candidate distances, and selects each smaller
    radius by masking.  Per radius the interval state advances by
    diffing consecutive sorted pair-key sets in Python — the per-radius
    kernel passes of :func:`extract_contact_sets_multirange` replace
    exactly this loop; benchmarks report the ratio.
    """
    radii = sorted({float(r) for r in ranges})
    for r in radii:
        if r <= 0:
            raise ValueError(f"communication range must be positive, got {r}")
    if not radii:
        return {}
    r_max = radii[-1]
    tau = trace.metadata.tau
    cols = trace.columns
    names = cols.users.names
    shift = max(len(names), 1)
    empty_keys = np.empty(0, dtype=np.int64)

    open_start: list[dict[int, float]] = [{} for _ in radii]
    prev_keys: list[np.ndarray] = [empty_keys for _ in radii]
    closed: list[list[tuple[int, float, float, bool]]] = [[] for _ in radii]
    prev_time = 0.0

    for index in range(cols.snapshot_count):
        user_ids, xyz = cols.slice_of(index)
        now = float(cols.times[index])
        if len(user_ids) < 2:
            keys_sorted = empty_keys
            dist_sorted = np.empty(0, dtype=np.float64)
        else:
            local, dist = planar_neighbour_pairs_with_distances(xyz[:, :2], r_max)
            first = user_ids[local[:, 0]]
            second = user_ids[local[:, 1]]
            keys = np.minimum(first, second) * shift + np.maximum(first, second)
            order = np.argsort(keys)
            keys_sorted = keys[order]
            dist_sorted = dist[order]
        for k, r in enumerate(radii):
            current = keys_sorted if r == r_max else keys_sorted[dist_sorted < r]
            ended = np.setdiff1d(prev_keys[k], current, assume_unique=True)
            starts = open_start[k]
            for key in ended.tolist():
                closed[k].append((key, starts.pop(key), prev_time + tau, False))
            begun = np.setdiff1d(current, prev_keys[k], assume_unique=True)
            for key in begun.tolist():
                starts[key] = now
            prev_keys[k] = current
        prev_time = now

    # Pairs still in range at the last snapshot are censored there.
    for k in range(len(radii)):
        starts = open_start[k]
        for key in prev_keys[k].tolist():
            closed[k].append((key, starts[key], prev_time, True))

    result: dict[float, list[ContactInterval]] = {}
    for k, r in enumerate(radii):
        raw = []
        for key, start, end, censored in closed[k]:
            name_a = names[key // shift]
            name_b = names[key % shift]
            if name_b < name_a:
                name_a, name_b = name_b, name_a
            raw.append((start, name_a, name_b, end, censored))
        # Tuple sort == the (start, pair) order extract_contacts uses; a
        # (start, pair) tie is impossible, so later fields never
        # compare.  Sorting raw tuples before object construction keeps
        # the sort key C-level.
        raw.sort()
        result[r] = [
            ContactInterval(user_a, user_b, start, end, censored)
            for start, user_a, user_b, end, censored in raw
        ]
    return result


def extract_contacts_reference(trace: Trace, r: float) -> list[ContactInterval]:
    """Reference O(n²) extractor kept for equivalence testing.

    This is the original dense-distance-matrix implementation working
    on string pairs; :func:`extract_contacts` must produce the exact
    same interval list on any trace.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    tau = trace.metadata.tau
    open_contacts: dict[tuple[str, str], float] = {}
    last_seen: dict[tuple[str, str], float] = {}
    contacts: list[ContactInterval] = []

    for snapshot in trace:
        users, coords = snapshot.as_arrays()
        current: set[tuple[str, str]] = set()
        n = len(users)
        if n >= 2:
            plane = coords[:, :2]
            diff = plane[:, None, :] - plane[None, :, :]
            dist = np.hypot(diff[..., 0], diff[..., 1])
            close = np.argwhere(
                (dist < r) & np.triu(np.ones((n, n), dtype=bool), k=1)
            )
            for i, j in close:
                a, b = users[int(i)], users[int(j)]
                current.add((a, b) if a <= b else (b, a))
        now = snapshot.time
        for pair in list(open_contacts):
            if pair not in current:
                start = open_contacts.pop(pair)
                contacts.append(
                    ContactInterval(pair[0], pair[1], start, last_seen[pair] + tau)
                )
                del last_seen[pair]
        for pair in current:
            if pair not in open_contacts:
                open_contacts[pair] = now
            last_seen[pair] = now

    for pair, start in open_contacts.items():
        contacts.append(
            ContactInterval(pair[0], pair[1], start, last_seen[pair], censored=True)
        )
    contacts.sort(key=lambda c: (c.start, c.pair))
    return contacts


def contact_durations(
    contacts: Iterable[ContactInterval],
    include_censored: bool = False,
) -> list[float]:
    """CT samples (seconds) from extracted contacts."""
    return [
        c.duration
        for c in contacts
        if include_censored or not c.censored
    ]


def inter_contact_times(contacts: Iterable[ContactInterval]) -> list[float]:
    """ICT samples: gaps between successive contacts of each pair.

    The gap runs from the *end* of contact ``k`` to the *start* of
    contact ``k+1`` of the same pair, per the paper's definition
    ``ICT^k = t^{k+1}_s - t^k_e``.  Censored end times still delimit a
    real gap start, so censored contacts participate.
    """
    by_pair: dict[tuple[str, str], list[ContactInterval]] = {}
    for contact in contacts:
        by_pair.setdefault(contact.pair, []).append(contact)
    gaps: list[float] = []
    for intervals in by_pair.values():
        intervals.sort(key=lambda c: c.start)
        for previous, current in zip(intervals, intervals[1:]):
            gap = current.start - previous.end
            if gap > 0:
                gaps.append(gap)
    return gaps


def first_contact_times(
    trace: Trace,
    r: float,
    contacts: Iterable[ContactInterval] | None = None,
) -> dict[str, float]:
    """FT per user: wait from first appearance to first neighbour.

    Users who never contact anyone within the trace are absent from
    the result (their FT is right-censored); callers needing the count
    can compare against ``trace.unique_users()``.
    """
    if contacts is None:
        contacts = extract_contacts(trace, r)
    first_contact: dict[str, float] = {}
    for contact in contacts:
        for user in contact.pair:
            if user not in first_contact or contact.start < first_contact[user]:
                first_contact[user] = contact.start
    first_appearance: dict[str, float] = {}
    for snapshot in trace:
        for user in snapshot.users:
            if user not in first_appearance:
                first_appearance[user] = snapshot.time
    return {
        user: first_contact[user] - first_appearance[user]
        for user in first_contact
    }


def iter_contact_pairs(contacts: Iterable[ContactInterval]) -> Iterator[tuple[str, str]]:
    """Distinct user pairs that ever met, in first-contact order."""
    seen: set[tuple[str, str]] = set()
    for contact in contacts:
        if contact.pair not in seen:
            seen.add(contact.pair)
            yield contact.pair
