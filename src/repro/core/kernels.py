"""Vectorized run-length extraction kernels over a global event table.

Contact extraction used to advance a Python state machine snapshot by
snapshot (a dict of open contacts keyed by packed pair ids).  That
loop is the serial floor under every backend: the grid neighbour
search is numpy, but the per-snapshot dict/set churn is pure Python
and serializes on the GIL.  This module replaces the state machine
with a sort:

1. **Event table** — per snapshot, the in-range pairs are packed into
   integer keys (``min_id * shift + max_id``, exactly the keys the old
   state machine used) and concatenated into one global table of
   ``(pair_key, snapshot_index)`` events, optionally keeping each
   pair's distance for multi-range masking.
2. **Run-length kernel** — one ``np.lexsort`` by ``(pair_key,
   snapshot_index)`` groups every pair's in-range history
   contiguously.  A *run break* is a key change or a snapshot-index
   jump > 1 (strict closure: one missed sample ends the contact).
   Each run is one contact interval: ``start = times[first]``,
   ``end = times[last] + tau``, censored iff the run reaches the final
   snapshot (then ``end = times[last]``, no +τ closure).
3. **Columnar result** — intervals come out as five flat arrays (the
   process-backend codec's exact payload layout) wrapped in
   :class:`ContactSet`; ``ContactInterval`` objects are built lazily
   only when a consumer actually asks for them.

For a radio-range sweep the event table is built **once** at the
largest radius with distances kept; every radius is then the same
kernel run under a distance mask — and because each masked run is
independent numpy work, a sweep can fan across radii on a thread pool
*within one part* (:func:`multirange_contact_sets`'s
``radius_workers``).

Everything here is pinned bit-for-bit against the retained loop
extractors and the dense O(n²) reference by
``tests/unit/core/test_kernels.py`` and
``tests/property/test_kernel_properties.py``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.grid import (
    planar_neighbour_pairs,
    planar_neighbour_pairs_with_distances,
)
from repro.trace.columnar import name_ranks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.contacts import ContactInterval
    from repro.trace import Trace


class ContactSet:
    """Contact intervals as five flat arrays — the canonical form.

    The layout is exactly the process-backend codec's payload:
    ``ids_a`` / ``ids_b`` (int64 interner ids, canonical so that
    ``names[ids_a[k]] <= names[ids_b[k]]``), ``starts`` / ``ends``
    (float64 trace time, ``ends`` includes the +τ closure for
    completed contacts) and ``censored`` (bool).  Rows are ordered by
    ``(start, pair)`` — the same order the object extractors always
    produced.

    :class:`~repro.core.contacts.ContactInterval` objects are *views*
    built lazily: iterate, index, or call :meth:`intervals` (cached).
    Consumers that only need numbers (durations, ICT gaps, the codec,
    the boundary merges) read the columns and never box a row.
    """

    __slots__ = (
        "ids_a",
        "ids_b",
        "starts",
        "ends",
        "censored",
        "_names",
        "_intervals",
    )

    def __init__(
        self,
        ids_a: np.ndarray,
        ids_b: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        censored: np.ndarray,
        names: Sequence[str],
    ) -> None:
        self.ids_a = np.asarray(ids_a, dtype=np.int64)
        self.ids_b = np.asarray(ids_b, dtype=np.int64)
        self.starts = np.asarray(starts, dtype=np.float64)
        self.ends = np.asarray(ends, dtype=np.float64)
        self.censored = np.asarray(censored, dtype=np.bool_)
        n = len(self.ids_a)
        if not (
            len(self.ids_b) == len(self.starts) == len(self.ends)
            == len(self.censored) == n
        ):
            raise ValueError("contact columns must have equal length")
        self._names = names
        self._intervals: list[ContactInterval] | None = None

    @classmethod
    def empty(cls, names: Sequence[str]) -> "ContactSet":
        """A set with zero intervals over the given name table."""
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return cls(e, e.copy(), f, f.copy(), np.empty(0, dtype=np.bool_), names)

    # -- shape & comparison ------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids_a)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ContactSet):
            return (
                np.array_equal(self.ids_a, other.ids_a)
                and np.array_equal(self.ids_b, other.ids_b)
                and np.array_equal(self.starts, other.starts)
                and np.array_equal(self.ends, other.ends)
                and np.array_equal(self.censored, other.censored)
                and list(self._names) == list(other._names)
            )
        if isinstance(other, list):
            return self.intervals() == other
        return NotImplemented

    __hash__ = None  # mutable cache inside; not hashable

    @property
    def names(self) -> Sequence[str]:
        """The interner name table the ids index into."""
        return self._names

    def arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The five-array payload ``(ids_a, ids_b, starts, ends, censored)``."""
        return self.ids_a, self.ids_b, self.starts, self.ends, self.censored

    # -- lazy object views -------------------------------------------------

    def _interval(self, k: int) -> "ContactInterval":
        from repro.core.contacts import ContactInterval

        names = self._names
        return ContactInterval(
            names[self.ids_a[k]],
            names[self.ids_b[k]],
            float(self.starts[k]),
            float(self.ends[k]),
            bool(self.censored[k]),
        )

    def __getitem__(self, k: int) -> "ContactInterval":
        if self._intervals is not None:
            return self._intervals[k]
        return self._interval(k)

    def __iter__(self) -> Iterator["ContactInterval"]:
        if self._intervals is not None:
            return iter(self._intervals)
        return (self._interval(k) for k in range(len(self)))

    def intervals(self) -> "list[ContactInterval]":
        """The rows as ``ContactInterval`` objects (built once, cached)."""
        if self._intervals is None:
            from repro.core.contacts import ContactInterval

            names = self._names
            self._intervals = [
                ContactInterval(names[a], names[b], start, end, bool(flag))
                for a, b, start, end, flag in zip(
                    self.ids_a.tolist(),
                    self.ids_b.tolist(),
                    self.starts.tolist(),
                    self.ends.tolist(),
                    self.censored.tolist(),
                )
            ]
        return self._intervals

    # -- columnar statistics ----------------------------------------------

    def durations(self, include_censored: bool = False) -> np.ndarray:
        """CT samples (seconds), censored rows excluded by default."""
        lengths = self.ends - self.starts
        if include_censored:
            return lengths
        return lengths[~self.censored]

    def pair_keys(self, shift: int | None = None) -> np.ndarray:
        """Packed ``a * shift + b`` pair identifiers, one per row."""
        if shift is None:
            shift = max(len(self._names), 1)
        return self.ids_a * shift + self.ids_b

    def inter_contact_gaps(self) -> np.ndarray:
        """ICT samples: per-pair gaps between successive contacts.

        The gap runs from the *end* of contact ``k`` to the *start* of
        contact ``k+1`` of the same pair (censored ends still delimit
        a real gap start); non-positive gaps are dropped.  Same sample
        multiset as
        :func:`~repro.core.contacts.inter_contact_times`.
        """
        if len(self) < 2:
            return np.empty(0, dtype=np.float64)
        keys = self.pair_keys()
        order = np.lexsort((self.starts, keys))
        k = keys[order]
        starts = self.starts[order]
        ends = self.ends[order]
        same = k[1:] == k[:-1]
        gaps = starts[1:][same] - ends[:-1][same]
        return gaps[gaps > 0]

    def contact_users(self) -> np.ndarray:
        """Sorted unique user ids that appear in any interval."""
        return np.unique(np.concatenate((self.ids_a, self.ids_b)))

    def first_contact_starts(self) -> tuple[np.ndarray, np.ndarray]:
        """Per user: ``(user_ids, earliest contact start)``, id-sorted."""
        if not len(self):
            e = np.empty(0, dtype=np.int64)
            return e, np.empty(0, dtype=np.float64)
        ids = np.concatenate((self.ids_a, self.ids_b))
        starts = np.concatenate((self.starts, self.starts))
        order = np.lexsort((starts, ids))
        ids, starts = ids[order], starts[order]
        first = np.empty(len(ids), dtype=np.bool_)
        first[0] = True
        first[1:] = ids[1:] != ids[:-1]
        return ids[first], starts[first]


# -- the event table --------------------------------------------------------


@dataclass(frozen=True)
class ContactEventTable:
    """All in-range pair sightings of a trace, as flat event columns.

    One row per (snapshot, in-range pair): ``keys`` holds the packed
    pair id (``min * shift + max``), ``snaps`` the snapshot index, and
    ``dists`` (present only when built with ``keep_distances``) the
    pair's planar distance — the handle multi-range masking selects
    smaller radii with.  ``radius`` is the radius the table was built
    at; a mask at ``r < radius`` reproduces the table that a direct
    build at ``r`` would produce, because the neighbour search keeps
    strictly-closer-than-``radius`` candidates with exact distances.
    """

    keys: np.ndarray
    snaps: np.ndarray
    dists: np.ndarray | None
    times: np.ndarray
    tau: float
    shift: int
    names: Sequence[str]
    radius: float

    @property
    def snapshot_count(self) -> int:
        return len(self.times)


def build_contact_events(
    trace: "Trace", r: float, keep_distances: bool = False
) -> ContactEventTable:
    """Concatenate per-snapshot in-range pairs into one event table.

    The per-snapshot neighbour search is the same uniform-grid cell
    list the loop extractors used (cost scales with local density);
    only the *state* between snapshots disappears — events are just
    appended and sorted once by the kernel.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    cols = trace.columns
    names = cols.users.names
    shift = max(len(names), 1)
    key_parts: list[np.ndarray] = []
    snap_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    for index in range(cols.snapshot_count):
        user_ids, xyz = cols.slice_of(index)
        if len(user_ids) < 2:
            continue
        if keep_distances:
            local, dist = planar_neighbour_pairs_with_distances(xyz[:, :2], r)
        else:
            local = planar_neighbour_pairs(xyz[:, :2], r)
            dist = None
        if not len(local):
            continue
        first = user_ids[local[:, 0]]
        second = user_ids[local[:, 1]]
        key_parts.append(
            np.minimum(first, second) * shift + np.maximum(first, second)
        )
        snap_parts.append(np.full(len(local), index, dtype=np.int64))
        if dist is not None:
            dist_parts.append(dist)
    if key_parts:
        keys = np.concatenate(key_parts)
        snaps = np.concatenate(snap_parts)
        dists = np.concatenate(dist_parts) if keep_distances else None
    else:
        keys = np.empty(0, dtype=np.int64)
        snaps = np.empty(0, dtype=np.int64)
        dists = np.empty(0, dtype=np.float64) if keep_distances else None
    return ContactEventTable(
        keys=keys,
        snaps=snaps,
        dists=dists,
        times=np.asarray(cols.times, dtype=np.float64),
        tau=float(trace.metadata.tau),
        shift=shift,
        names=names,
        radius=float(r),
    )


# -- the run-length kernel ---------------------------------------------------


def contact_set_from_events(
    table: ContactEventTable, r: float | None = None
) -> ContactSet:
    """Read contact intervals off the run boundaries of an event table.

    With ``r`` given, only events whose kept distance is ``< r`` are
    considered (the multi-range mask); the table must then have been
    built with ``keep_distances`` and ``r <= table.radius``.
    """
    keys, snaps = table.keys, table.snaps
    if r is not None and r != table.radius:
        if table.dists is None:
            raise ValueError("distance masking needs keep_distances=True")
        if r > table.radius:
            raise ValueError(
                f"mask radius {r} exceeds the table's build radius "
                f"{table.radius}"
            )
        mask = table.dists < r
        keys, snaps = keys[mask], snaps[mask]
    return ContactSet(
        *_run_length_intervals(
            keys, snaps, table.times, table.tau, table.shift, table.names
        ),
        table.names,
    )


def _run_length_intervals(
    keys: np.ndarray,
    snaps: np.ndarray,
    times: np.ndarray,
    tau: float,
    shift: int,
    names: Sequence[str],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The kernel proper: events → five sorted interval columns.

    One lexsort by ``(pair_key, snapshot_index)`` makes every pair's
    sighting history contiguous and time-ordered.  A run break is a
    key change or a snapshot jump > 1 — strict per-snapshot closure.
    The final snapshot censors any run that reaches it (no +τ
    closure), matching the loop extractors exactly.
    """
    if not len(keys):
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return e, e.copy(), f, f.copy(), np.empty(0, dtype=np.bool_)
    order = np.lexsort((snaps, keys))
    k = keys[order]
    s = snaps[order]
    head = np.empty(len(k), dtype=np.bool_)
    head[0] = True
    head[1:] = (k[1:] != k[:-1]) | (s[1:] != s[:-1] + 1)
    first = np.flatnonzero(head)
    last = np.append(first[1:], len(k)) - 1
    run_keys = k[first]
    censored = s[last] == len(times) - 1
    starts = times[s[first]]
    ends = np.where(censored, times[s[last]], times[s[last]] + tau)
    ids_a = run_keys // shift
    ids_b = run_keys % shift
    return _canonical_contact_columns(
        ids_a, ids_b, starts, ends, censored, names
    )


def _canonical_contact_columns(
    ids_a: np.ndarray,
    ids_b: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    censored: np.ndarray,
    names: Sequence[str],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize pairs by *name* order and sort rows by (start, pair).

    This is the flat-array ``np.lexsort`` replacing the old
    Python-level ``contacts.sort(key=lambda c: (c.start, c.pair))`` —
    the sort happens before any object is constructed.
    """
    ranks = name_ranks(names)
    rank_a = ranks[ids_a]
    rank_b = ranks[ids_b]
    swap = rank_a > rank_b
    low = np.where(swap, ids_b, ids_a)
    high = np.where(swap, ids_a, ids_b)
    ids_a, ids_b = low, high
    rank_a, rank_b = np.minimum(rank_a, rank_b), np.maximum(rank_a, rank_b)
    order = np.lexsort((rank_b, rank_a, starts))
    return (
        ids_a[order],
        ids_b[order],
        starts[order],
        ends[order],
        censored[order],
    )


def contact_set_from_columns(
    ids_a: np.ndarray,
    ids_b: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    censored: np.ndarray,
    names: Sequence[str],
) -> ContactSet:
    """Canonicalize + sort raw interval columns into a :class:`ContactSet`.

    For producers (boundary merges, stitchers) that assemble interval
    columns in some other order: pairs are name-canonicalized and rows
    sorted by ``(start, pair)`` exactly like the kernel output.
    """
    return ContactSet(
        *_canonical_contact_columns(ids_a, ids_b, starts, ends, censored, names),
        names,
    )


# -- multirange fan ----------------------------------------------------------


def multirange_contact_sets(
    table: ContactEventTable,
    radii: Iterable[float],
    radius_workers: int | None = None,
) -> dict[float, ContactSet]:
    """Run the kernel once per radius over one shared event table.

    The table must have been built with ``keep_distances=True`` at (at
    least) the largest requested radius.  Each radius is an
    independent masked kernel run — pure numpy, so with
    ``radius_workers > 1`` the sweep fans across a thread pool *within
    one part* (the in-part radius fan); results are identical on any
    worker count, only the wall clock changes.
    """
    rs = sorted({float(r) for r in radii})
    for r in rs:
        if r <= 0:
            raise ValueError(f"communication range must be positive, got {r}")
    if not rs:
        return {}
    if rs[-1] > table.radius:
        raise ValueError(
            f"requested radius {rs[-1]} exceeds the table's build radius "
            f"{table.radius}"
        )
    if radius_workers is not None and radius_workers > 1 and len(rs) > 1:
        with ThreadPoolExecutor(
            max_workers=min(radius_workers, len(rs))
        ) as pool:
            sets = list(
                pool.map(lambda r: contact_set_from_events(table, r), rs)
            )
        return dict(zip(rs, sets))
    return {r: contact_set_from_events(table, r) for r in rs}
