"""Out-of-core windowed analysis over a memmapped ``.rtrc`` store.

A month-long crawl does not fit comfortably in RAM, but the paper's
extractions are sequential in time: contacts, sessions and the
per-snapshot graph samples all advance snapshot by snapshot.
:class:`WindowedAnalyzer` exploits that — it opens an ``.rtrc`` file
as a memmap (zero parse, nothing resident) and iterates fixed-width
**time windows** over it.  Each window is a zero-copy
:meth:`~repro.trace.columnar.ColumnarStore.slice_snapshots` view, so
at any moment only the pages of the window being processed (plus the
accumulated *results*) are live; processed windows are dropped and
their pages evicted by the OS under memory pressure.

Windows are merged through the same
:class:`~repro.core.sharded.BoundaryMergeAnalyzer` plumbing the
sharded analyzer uses, so the answers are bit-for-bit what a
whole-trace :class:`~repro.core.analyzer.TraceAnalyzer` returns — the
split just follows the wall clock instead of an even snapshot count.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.core.parallel import extract_shard_task
from repro.core.sharded import BoundaryMergeAnalyzer
from repro.trace import Trace, TraceMetadata, read_store_rtrc


class WindowedAnalyzer(BoundaryMergeAnalyzer):
    """Stream fixed-width time windows of an on-disk trace.

    Parameters
    ----------
    path:
        An ``.rtrc`` file (plain, non-empty).  It is memory-mapped,
        so construction costs a header parse, not a load.
    window:
        Window width in seconds of trace time.  Windows are aligned
        to the first snapshot: window ``i`` covers
        ``[t0 + i * window, t0 + (i + 1) * window)``, and the final
        snapshot always lands in the last window.  The width is a
        *memory* knob, not an accuracy knob — any width produces the
        exact whole-trace answers; smaller widths keep fewer pages
        live at once.
    mmap:
        Pass ``False`` to load the store into memory instead of
        mapping it (defeats the out-of-core point; useful only where
        mmap is unavailable).

    Analyses run one window at a time and merge exactly; results are
    cached per parameter like the other analyzers.

    Lifecycle
    ---------
    :meth:`close` (or a ``with`` block) drops the memmap so the file
    mapping and descriptor can go away; cached results stay readable,
    new analyses raise.
    """

    def __init__(
        self,
        path: str | Path,
        window: float,
        mmap: bool = True,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window width must be positive, got {window}")
        super().__init__()
        self.path = Path(path)
        self.window = float(window)
        store, metadata = read_store_rtrc(self.path, mmap=mmap)
        if store.snapshot_count == 0:
            raise ValueError("cannot analyze an empty trace")
        self._store = store
        self.metadata: TraceMetadata = metadata
        times = store.times
        t0 = float(times[0])
        span = float(times[-1]) - t0
        self._window_total = int(math.floor(span / self.window)) + 1
        # Assign each snapshot its window index and cut edges at the
        # index changes — O(S) however narrow the window, where
        # enumerating every window boundary would be O(span / width)
        # (a month-long trace at window=1e-3 s is billions of mostly
        # empty windows).  Empty windows never make an edge, which is
        # exactly what iter_windows / the boundary merges want.
        indices = np.floor((np.asarray(times) - t0) / self.window).astype(np.int64)
        run_starts = np.flatnonzero(np.diff(indices)) + 1
        self._edges = np.concatenate(
            ([0], run_starts, [store.snapshot_count])
        ).astype(np.int64)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop the memmapped store so its mapping and fd can go away.

        Cached results stay readable; starting a *new* analysis after
        close raises.  Mirrors the protocol of
        :class:`~repro.core.sharded.ShardedAnalyzer` and
        :class:`~repro.core.analyzer.TraceAnalyzer`.
        """
        self._store = None

    def __enter__(self) -> "WindowedAnalyzer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _open_store(self):
        if self._store is None:
            raise ValueError(f"{self.path}: analyzer is closed")
        return self._store

    # -- shape -------------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        """Snapshots in the underlying store."""
        return self._open_store().snapshot_count

    @property
    def window_count(self) -> int:
        """Number of fixed-width windows covering the trace (incl. empty)."""
        return self._window_total

    # -- iteration ---------------------------------------------------------

    def iter_windows(self) -> Iterator[Trace]:
        """Yield each non-empty window as a zero-copy trace view.

        Windows whose time span contains no snapshot are skipped —
        they carry no observations, and the boundary merges only care
        about the non-empty sequence (exactly like the sharded
        analyzer drops empty shards).
        """
        store = self._open_store()
        for lo, hi in zip(self._edges[:-1].tolist(), self._edges[1:].tolist()):
            yield Trace.from_columns(
                store.slice_snapshots(lo, hi), self.metadata
            )

    # -- execution (strictly one window in memory at a time) ---------------

    def _map(self, kind: str, params_per_part: Sequence[tuple]) -> list[object]:
        return [
            extract_shard_task(trace, kind, params)
            for trace, params in zip(self.iter_windows(), params_per_part)
        ]

    def _part_first_times(self) -> list[float]:
        return self._open_store().times[self._edges[:-1]].astype(float).tolist()

    def _part_lengths(self) -> list[int]:
        return np.diff(self._edges).tolist()
