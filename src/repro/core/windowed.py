"""Out-of-core windowed analysis over a memmapped ``.rtrc`` store.

A month-long crawl does not fit comfortably in RAM, but the paper's
extractions are sequential in time: contacts, sessions and the
per-snapshot graph samples all advance snapshot by snapshot.
:class:`WindowedAnalyzer` exploits that — it opens an ``.rtrc`` file
as a memmap (zero parse, nothing resident) and iterates fixed-width
**time windows** over it.  Each window is a zero-copy
:meth:`~repro.trace.columnar.ColumnarStore.slice_snapshots` view, so
in the default serial mode only the pages of the window being
processed (plus the accumulated *results*) are live; processed
windows are dropped and their pages evicted by the OS under memory
pressure.

Windows are merged through the same
:class:`~repro.core.sharded.BoundaryMergeAnalyzer` plumbing the
sharded analyzer uses, so the answers are bit-for-bit what a
whole-trace :class:`~repro.core.analyzer.TraceAnalyzer` returns — the
split just follows the wall clock instead of an even snapshot count.
Since the part scheduler landed, windows can also *fan*: pass
``backend="thread"`` or ``backend="process"`` and the per-window
tasks run on a worker pool (the process backend materializes each
non-empty window once as its own ``.rtrc`` file that workers
memmap-load), trading the strict one-window memory bound for
multi-core throughput.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.core.parallel import (
    SCHEDULER_BACKENDS,
    PartAnalysisError,
    PartScheduler,
)
from repro.core.sharded import BoundaryMergeAnalyzer
from repro.trace import (
    Trace,
    TraceFormatError,
    TraceMetadata,
    concat_shards,
    list_rtrc_dir,
    read_store_rtrc,
    read_trace_rtrc,
)


class WindowedAnalyzer(BoundaryMergeAnalyzer):
    """Stream fixed-width time windows of an on-disk trace.

    Parameters
    ----------
    path:
        An ``.rtrc`` file (plain, non-empty) — memory-mapped, so
        construction costs a header parse, not a load — or a **shard
        directory** written by :class:`~repro.trace.RtrcDirAppender`
        / :func:`~repro.trace.to_rtrc_dir`.  A directory's committed
        round files are analyzed *in place* as the window parts:
        consecutive files whose first snapshot falls in the same
        window are grouped into one part, nothing is re-materialized
        into a tempdir, and single-file parts are handed to the
        process/network backends as the files they already are.  Part
        boundaries then follow the committed round boundaries rather
        than cutting mid-file (a file that spills past its window's
        end stays with its part) — the boundary merges make the
        answers exact for any contiguous split, so this changes
        scheduling granularity, never results.
    window:
        Window width in seconds of trace time.  Windows are aligned
        to the first snapshot: window ``i`` covers
        ``[t0 + i * window, t0 + (i + 1) * window)``, and the final
        snapshot always lands in the last window.  The width is a
        *memory* knob, not an accuracy knob — any width produces the
        exact whole-trace answers; smaller widths keep fewer pages
        live at once.
    mmap:
        Pass ``False`` to load the store into memory instead of
        mapping it (defeats the out-of-core point; useful only where
        mmap is unavailable).
    backend:
        ``"serial"`` (default) — windows run strictly one at a time;
        the out-of-core memory bound holds.  ``"thread"`` — a thread
        pool over the zero-copy window views; the run-length
        extraction kernels are numpy-bound and release the GIL, so
        windows overlap.  ``"process"`` —
        non-empty windows are materialized once as per-window
        ``.rtrc`` files and spawned workers memmap-load their own
        window; real multi-core scaling, with roughly one window per
        worker resident at a time instead of one overall.
        ``"network"`` — the same window files served over an HTTP
        coordinator (:mod:`repro.distributed`) to ``slmob worker``
        processes, possibly on other machines.
    max_workers:
        Pool cap for the parallel backends; defaults to one worker
        per non-empty window, bounded by the CPU count.
    network:
        Optional :class:`~repro.distributed.NetworkOptions` for the
        network backend; ignored by the other backends.

    Analyses merge exactly; results are cached per parameter like the
    other analyzers.

    Lifecycle
    ---------
    :meth:`close` (or a ``with`` block) drops the memmap, shuts the
    worker pool down and deletes materialized window files; cached
    results stay readable, new analyses raise.
    """

    def __init__(
        self,
        path: str | Path,
        window: float,
        mmap: bool = True,
        backend: str = "serial",
        max_workers: int | None = None,
        network: object | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window width must be positive, got {window}")
        if backend not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{SCHEDULER_BACKENDS}"
            )
        super().__init__()
        self.path = Path(path)
        self.window = float(window)
        self.backend = backend
        self._label = str(self.path)
        self._mmap = bool(mmap)
        self._store = None
        self._part_files: list[list[Path]] = []
        self._part_meta: list[tuple[float, int]] = []
        self._dir_names: list[str] = []
        self._snapshots = 0
        self._is_dir = self.path.is_dir()
        if self._is_dir:
            parts = self._init_dir()
        else:
            store, metadata = read_store_rtrc(self.path, mmap=mmap)
            if store.snapshot_count == 0:
                raise ValueError("cannot analyze an empty trace")
            self._store = store
            self.metadata: TraceMetadata = metadata
            times = store.times
            t0 = float(times[0])
            span = float(times[-1]) - t0
            self._window_total = int(math.floor(span / self.window)) + 1
            # Assign each snapshot its window index and cut edges at the
            # index changes — O(S) however narrow the window, where
            # enumerating every window boundary would be O(span / width)
            # (a month-long trace at window=1e-3 s is billions of mostly
            # empty windows).  Empty windows never make an edge, which is
            # exactly what iter_windows / the boundary merges want.
            indices = np.floor((np.asarray(times) - t0) / self.window).astype(
                np.int64
            )
            run_starts = np.flatnonzero(np.diff(indices)) + 1
            self._edges = np.concatenate(
                ([0], run_starts, [store.snapshot_count])
            ).astype(np.int64)
            parts = len(self._edges) - 1
        self._scheduler = PartScheduler(
            backend,
            max_workers or min(parts, os.cpu_count() or 1),
            file_prefix="window",
            network=network,
        )

    def _init_dir(self) -> int:
        """Group the directory's committed round files into window parts.

        Mirrors :class:`~repro.core.live.LiveAnalyzer`'s shard-dir
        handling: every file is opened once (a header parse), the
        ordering invariant is checked, and for the process/network
        backends — which decode worker payloads with one global name
        table — each file's user table must extend its predecessors'
        (true for everything this package writes; foreign directories
        with independent interners must use serial/thread).  Empty
        round files contribute no snapshots and join no part.
        """
        metadata: TraceMetadata | None = None
        t0: float | None = None
        last_time = float("-inf")
        current_window = -1
        for name in list_rtrc_dir(self.path):
            trace = read_trace_rtrc(self.path / name, mmap=self._mmap)
            if metadata is None:
                metadata = trace.metadata
            names = trace.columns.users.names
            if (
                self.backend in ("process", "network")
                and names[: len(self._dir_names)] != self._dir_names
            ):
                raise ValueError(
                    f"{self.path}: shard file {name!r} does not extend the "
                    f"previous files' user table; backend={self.backend!r} "
                    "needs prefix-consistent interners (use "
                    "backend='serial' for foreign shard directories)"
                )
            if len(names) >= len(self._dir_names):
                self._dir_names = list(names)
            if not len(trace):
                continue
            first = float(trace.columns.times[0])
            if first <= last_time:
                raise TraceFormatError(
                    f"{self.path}: shard file {name!r} is not strictly "
                    "after its predecessors; the directory is not a "
                    "time-ordered shard dir"
                )
            last_time = float(trace.columns.times[-1])
            self._snapshots += len(trace)
            if t0 is None:
                t0 = first
            index = int(math.floor((first - t0) / self.window))
            if index == current_window and self._part_files:
                self._part_files[-1].append(self.path / name)
                start, count = self._part_meta[-1]
                self._part_meta[-1] = (start, count + len(trace))
            else:
                current_window = index
                self._part_files.append([self.path / name])
                self._part_meta.append((first, len(trace)))
        if t0 is None:
            raise ValueError("cannot analyze an empty trace")
        self.metadata = metadata
        self._window_total = int(math.floor((last_time - t0) / self.window)) + 1
        return len(self._part_files)

    # -- lifecycle ---------------------------------------------------------

    def _release(self) -> None:
        """Drop the memmapped store, the pool, and any window files.

        Cached results stay readable; starting a *new* analysis after
        close raises.  Mirrors the protocol of
        :class:`~repro.core.sharded.ShardedAnalyzer` and
        :class:`~repro.core.analyzer.TraceAnalyzer`.
        """
        self._store = None
        self._scheduler.close()

    def _open_store(self):
        self._check_open()
        return self._store

    # -- shape -------------------------------------------------------------

    @property
    def snapshot_count(self) -> int:
        """Snapshots in the underlying store."""
        if self._is_dir:
            self._check_open()
            return self._snapshots
        return self._open_store().snapshot_count

    @property
    def window_count(self) -> int:
        """Number of fixed-width windows covering the trace (incl. empty)."""
        return self._window_total

    @property
    def is_shard_dir(self) -> bool:
        """Whether the analyzed store is a shard directory."""
        return self._is_dir

    @property
    def part_count(self) -> int:
        """Non-empty window parts the analyses fan over."""
        return len(self._part_files) if self._is_dir else len(self._edges) - 1

    # -- iteration ---------------------------------------------------------

    def _window_trace(self, index: int) -> Trace:
        """Non-empty window ``index`` as a (usually zero-copy) trace view.

        Shard-dir parts re-open their round files on demand — a header
        parse each, not a load — so a long directory costs one fd per
        *in-flight* part rather than one per committed round.
        """
        if self._is_dir:
            self._check_open()
            members = self._part_files[index]
            if len(members) == 1:
                return read_trace_rtrc(members[0], mmap=self._mmap)
            return concat_shards(
                [read_trace_rtrc(path, mmap=self._mmap) for path in members]
            )
        store = self._open_store()
        lo, hi = int(self._edges[index]), int(self._edges[index + 1])
        return Trace.from_columns(store.slice_snapshots(lo, hi), self.metadata)

    def _window_file(self, index: int) -> Path | None:
        """The on-disk file already holding part ``index``, if any.

        A single-file shard-dir part *is* its committed round file, so
        the process and network backends memmap it where it lies; a
        multi-file part (several rounds in one window) or a view into
        one big store is materialized by the scheduler as usual.
        """
        if self._is_dir and len(self._part_files[index]) == 1:
            return self._part_files[index][0]
        return None

    def iter_windows(self) -> Iterator[Trace]:
        """Yield each non-empty window as a zero-copy trace view.

        Windows whose time span contains no snapshot are skipped —
        they carry no observations, and the boundary merges only care
        about the non-empty sequence (exactly like the sharded
        analyzer drops empty shards).
        """
        for index in range(self.part_count):
            yield self._window_trace(index)

    # -- execution ---------------------------------------------------------

    def _map(self, kind: str, params_per_part: Sequence[tuple]) -> list[object]:
        """One task per non-empty window, fanned per the backend.

        The serial backend pulls window views one at a time, so at
        most one window's pages are resident; the parallel backends
        keep roughly one window per worker live instead.
        """
        self._check_open()
        return self._scheduler.run(
            kind,
            list(enumerate(params_per_part)),
            part_trace=self._window_trace,
            part_path=self._window_file if self._is_dir else None,
            names=self._names,
            wrap_error=self._window_error,
        )

    def _names(self) -> Sequence[str]:
        if self._is_dir:
            # Round k's table is a prefix of round k+1's (validated in
            # _init_dir for the backends that decode with one table),
            # so the longest table decodes every part's ids.
            return self._dir_names
        return self._open_store().users.names

    def _window_error(self, index: int, kind: str, exc: Exception):
        detail = ""
        if self._is_dir:
            try:
                trace = self._window_trace(index)
                detail = (
                    f" covering t=[{trace.start_time:g}, {trace.end_time:g}]"
                    f" ({len(trace)} snapshots)"
                )
            except (OSError, TraceFormatError):
                pass
        elif self._store is not None:
            lo, hi = int(self._edges[index]), int(self._edges[index + 1])
            detail = (
                f" covering t=[{float(self._store.times[lo]):g}, "
                f"{float(self._store.times[hi - 1]):g}] ({hi - lo} snapshots)"
            )
        return PartAnalysisError(
            f"{kind} failed on window {index + 1}/{self.part_count}"
            f"{detail}: {exc}"
        )

    # -- partition geometry ------------------------------------------------

    def _part_first_times(self) -> list[float]:
        if self._is_dir:
            return [start for start, _ in self._part_meta]
        return self._open_store().times[self._edges[:-1]].astype(float).tolist()

    def _part_lengths(self) -> list[int]:
        if self._is_dir:
            return [count for _, count in self._part_meta]
        return np.diff(self._edges).tolist()
