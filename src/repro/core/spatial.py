"""Spatial metrics: trips and zone occupation (§3.2, Figs. 3 & 4).

All trip metrics are per *session* (one user visit, login→logout, as
reconstructed by :func:`repro.trace.extract_sessions`):

* **travel length** — summed displacement between consecutive
  observed positions;
* **effective travel time** — time spent moving (pauses excluded);
* **travel time** — total connection time to the land.

Zone occupation divides the land into L x L cells (L = 20 m in the
paper) and counts the users in every cell of every snapshot — empty
cells included, which is why the paper's Fig. 3 CDF starts around 0.8:
most of a land is empty most of the time.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import flat_cell_indices, grid_shape
from repro.trace import SessionSet, Trace, UserSession, extract_sessions

#: The paper's zone size, meters.
ZONE_SIZE = 20.0

#: Sessions shorter than this many observations are skipped by trip
#: metrics: a user seen once has no displacement and would contribute
#: a structural zero.
MIN_OBSERVATIONS = 2


def _sessions(trace: Trace, sessions: list[UserSession] | None) -> list[UserSession]:
    if sessions is None:
        sessions = extract_sessions(trace)
    return [s for s in sessions if s.observation_count >= MIN_OBSERVATIONS]


def _trip_mask(sessions: SessionSet) -> np.ndarray:
    """Rows of a columnar set that qualify for trip metrics."""
    return sessions.observation_counts() >= MIN_OBSERVATIONS


def travel_lengths(
    trace: Trace,
    sessions: list[UserSession] | SessionSet | None = None,
) -> list[float] | np.ndarray:
    """Travel-length samples (meters), one per session — Fig. 4(a).

    A columnar :class:`~repro.trace.SessionSet` takes the vectorized
    path (one segment-sum over the whole observation table); a session
    list keeps the per-object path.
    """
    if isinstance(sessions, SessionSet):
        return sessions.travel_lengths()[_trip_mask(sessions)]
    return [session.travel_length() for session in _sessions(trace, sessions)]


def effective_travel_times(
    trace: Trace,
    sessions: list[UserSession] | SessionSet | None = None,
    pause_epsilon: float = 0.5,
) -> list[float] | np.ndarray:
    """Effective-travel-time samples (seconds) — Fig. 4(b)."""
    if isinstance(sessions, SessionSet):
        return sessions.effective_travel_times(pause_epsilon)[_trip_mask(sessions)]
    return [
        session.effective_travel_time(pause_epsilon)
        for session in _sessions(trace, sessions)
    ]


def travel_times(
    trace: Trace,
    sessions: list[UserSession] | SessionSet | None = None,
) -> list[float] | np.ndarray:
    """Travel (login) time samples (seconds) — Fig. 4(c)."""
    if isinstance(sessions, SessionSet):
        return sessions.travel_times()[_trip_mask(sessions)]
    return [session.travel_time for session in _sessions(trace, sessions)]


def zone_occupation(
    trace: Trace,
    cell_size: float = ZONE_SIZE,
    every: int = 1,
) -> np.ndarray:
    """Users-per-cell samples over all snapshots — Fig. 3.

    Returns a flat integer array with one entry per (cell, snapshot)
    pair, empty cells included.  ``every`` subsamples snapshots.
    """
    if every < 1:
        raise ValueError(f"stride must be >= 1, got {every}")
    meta = trace.metadata
    cols = trace.columns
    kept = np.arange(0, cols.snapshot_count, every)
    if not len(kept):
        return np.empty(0, dtype=np.int64)
    grid_cols, grid_rows = grid_shape(meta.width, meta.height, cell_size)
    cells = grid_cols * grid_rows

    strided = cols.select(kept)
    cell_keys = flat_cell_indices(
        strided.xyz[:, :2], meta.width, meta.height, cell_size
    )
    snap_of_row = np.repeat(np.arange(len(kept)), strided.counts())
    keys = snap_of_row * cells + cell_keys
    # One bincount over (snapshot, cell) keys covers every selected
    # snapshot, empty cells and empty snapshots included.
    return np.bincount(keys, minlength=len(kept) * cells)


def hotspot_cells(
    trace: Trace,
    cell_size: float = ZONE_SIZE,
    threshold: int = 10,
    every: int = 1,
) -> float:
    """Fraction of (cell, snapshot) samples at or above ``threshold`` users.

    Quantifies the "hot-spots with several tens of users" observation
    about Dance Island.
    """
    counts = zone_occupation(trace, cell_size, every)
    if counts.size == 0:
        raise ValueError("trace produced no occupancy samples")
    return float((counts >= threshold).sum() / counts.size)
