"""The analysis facade: one object, every metric of the paper.

``TraceAnalyzer`` caches the expensive extractions (contacts per
range, sessions) so that computing all six panels of Fig. 1 plus
Fig. 2 touches each snapshot once per range.  Extractions are cached
in their columnar form (:class:`~repro.core.kernels.ContactSet`,
:class:`~repro.trace.SessionSet`); the temporal and spatial metrics
read the flat arrays directly, and the interval/session *object* views
are materialized lazily only when a caller asks for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core import contacts as contacts_mod
from repro.core import losgraph, spatial
from repro.core.contacts import ContactInterval
from repro.core.kernels import ContactSet
from repro.core.sharded import BACKENDS, ShardedAnalyzer
from repro.stats import ECDF
from repro.trace import SessionSet, Trace, UserSession, extract_session_set


@dataclass(frozen=True)
class TraceSummary:
    """The paper's §3 trace-summary row."""

    land_name: str
    duration: float
    snapshot_count: int
    unique_users: int
    mean_concurrency: float
    max_concurrency: int

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "land": self.land_name,
            "duration_h": round(self.duration / 3600.0, 2),
            "snapshots": self.snapshot_count,
            "unique_users": self.unique_users,
            "mean_concurrent": round(self.mean_concurrency, 1),
            "max_concurrent": self.max_concurrency,
        }


class TraceAnalyzer:
    """Compute and cache every §3 metric of one trace.

    The front door of the analysis layer: construct it once per trace
    and ask for metrics — expensive extractions (contacts per range,
    sessions, per-snapshot sample arrays) are computed on first use
    and cached, so rendering all of Fig. 1 + Fig. 2 touches each
    snapshot once per range.

    Parameters
    ----------
    trace:
        The (non-empty) trace to analyze.  A memmap-backed trace
        (:func:`~repro.trace.read_trace_rtrc`) works unchanged — pages
        fault in as extractions touch them.
    shards:
        With ``shards > 1`` the whole-trace extractions (contacts,
        sessions, zone occupation, losgraph degrees / diameters /
        clustering) fan out over contiguous time shards via
        :class:`~repro.core.sharded.ShardedAnalyzer`.  The merged
        results are *exactly* equal to the unsharded path, so every
        downstream metric is unchanged; pick the shard count by core
        count, not by accuracy concerns.
    max_workers:
        Cap on the shard worker pool (default: one worker per
        non-empty shard, bounded by the CPU count).
    backend:
        Where shard workers run.  ``"thread"`` (default) has no
        start-up cost; the run-length extraction kernels are
        numpy-bound and release the GIL, so shards overlap well.
        ``"process"`` materializes per-shard ``.rtrc`` files and fans
        spawned workers that memmap-load their own shard — full
        isolation at the cost of worker spawn and a one-time shard
        write.  ``"network"`` serves the same shard files over an HTTP
        coordinator (:mod:`repro.distributed`) to ``slmob worker``
        processes, possibly on other machines.  Validated even when
        ``shards == 1`` so typos fail loudly.
    network:
        Optional :class:`~repro.distributed.NetworkOptions` for the
        network backend; ignored by the other backends.

    Lifecycle
    ---------
    The process backend owns a worker pool and shard files; release
    them promptly with :meth:`close` or a ``with`` block::

        with TraceAnalyzer(trace, shards=8, backend="process") as a:
            a.contacts_multirange([10.0, 80.0])

    ``close()`` is a no-op for the serial and thread paths, so it is
    always safe to use the context-manager form.  Cached results
    remain readable after close.
    """

    def __init__(
        self,
        trace: Trace,
        shards: int = 1,
        max_workers: int | None = None,
        backend: str = "thread",
        network: object | None = None,
    ) -> None:
        if trace.is_empty:
            raise ValueError("cannot analyze an empty trace")
        if backend not in BACKENDS:
            # Validate even when unsharded, so a typo'd backend fails
            # loudly instead of silently running serial.
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.trace = trace
        self._sharded = (
            ShardedAnalyzer(trace, shards, max_workers, backend, network)
            if shards > 1
            else None
        )
        self._contact_sets: dict[float, ContactSet] = {}
        self._session_set: SessionSet | None = None
        # Array caches: repeated analyzer passes (figures, ablations)
        # re-request the same samples; keeping them as flat ndarrays
        # avoids re-walking the columnar store and re-boxing floats.
        self._degree_arrays: dict[tuple[float, int], np.ndarray] = {}
        self._zone_arrays: dict[tuple[float, int], np.ndarray] = {}

    def close(self) -> None:
        """Release sharded-backend resources (process pool, shard files)."""
        if self._sharded is not None:
            self._sharded.close()

    def network_url(self) -> str:
        """The network coordinator's URL (``backend="network"`` only).

        Starts the coordinator if needed so workers can attach before
        the first analysis; raises ``ValueError`` for other backends
        or an unsharded analyzer (nothing fans out at ``shards == 1``).
        """
        if self._sharded is None:
            raise ValueError(
                "the network coordinator only exists with shards > 1"
            )
        return self._sharded.network_url()

    def __enter__(self) -> "TraceAnalyzer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- cached extractions ------------------------------------------------

    def contact_set(self, r: float) -> ContactSet:
        """Columnar contact set under range ``r`` (cached per range)."""
        if self._sharded is not None:
            return self._sharded.contact_set(r)
        if r not in self._contact_sets:
            self._contact_sets[r] = contacts_mod.extract_contact_set(
                self.trace, r
            )
        return self._contact_sets[r]

    def contacts(self, r: float) -> list[ContactInterval]:
        """Contact intervals under range ``r`` (cached per range)."""
        return self.contact_set(r).intervals()

    def contact_sets_multirange(
        self,
        ranges: Iterable[float],
        radius_workers: int | None = None,
    ) -> dict[float, ContactSet]:
        """Columnar contact sets for a whole radio-range sweep.

        Uncached radii share one event-table build at the largest
        radius (:func:`~repro.core.contacts.extract_contact_sets_multirange`);
        ``radius_workers > 1`` fans the per-radius kernel passes over
        an internal thread pool.  Results land in the same per-range
        cache :meth:`contact_set` uses.
        """
        radii = sorted({float(r) for r in ranges})
        if self._sharded is not None:
            return self._sharded.contact_sets_multirange(radii, radius_workers)
        missing = [r for r in radii if r not in self._contact_sets]
        if missing:
            self._contact_sets.update(
                contacts_mod.extract_contact_sets_multirange(
                    self.trace, missing, radius_workers
                )
            )
        return {r: self._contact_sets[r] for r in radii}

    def contacts_multirange(
        self,
        ranges: Iterable[float],
        radius_workers: int | None = None,
    ) -> dict[float, list[ContactInterval]]:
        """Contacts for a whole radio-range sweep in one batched pass."""
        sets = self.contact_sets_multirange(ranges, radius_workers)
        return {r: s.intervals() for r, s in sets.items()}

    def session_set(self) -> SessionSet:
        """Columnar session set (cached)."""
        if self._sharded is not None:
            return self._sharded.session_set()
        if self._session_set is None:
            self._session_set = extract_session_set(self.trace)
        return self._session_set

    def sessions(self) -> list[UserSession]:
        """Reconstructed user visits (cached)."""
        return self.session_set().sessions()

    def degree_array(self, r: float, every: int = 1) -> np.ndarray:
        """Aggregated degree samples as a flat float array (cached)."""
        key = (r, every)
        if key not in self._degree_arrays:
            if self._sharded is not None:
                samples = self._sharded.degree_array(r, every)
            else:
                samples = losgraph.degree_samples(self.trace, r, every)
            self._degree_arrays[key] = np.asarray(samples, dtype=float)
        return self._degree_arrays[key]

    def zone_array(self, cell_size: float, every: int = 1) -> np.ndarray:
        """Users-per-cell samples as a flat int array (cached)."""
        key = (cell_size, every)
        if key not in self._zone_arrays:
            if self._sharded is not None:
                self._zone_arrays[key] = self._sharded.zone_occupation(
                    cell_size, every
                )
            else:
                self._zone_arrays[key] = spatial.zone_occupation(
                    self.trace, cell_size, every
                )
        return self._zone_arrays[key]

    # -- summary -----------------------------------------------------------

    def summary(self) -> TraceSummary:
        """Unique users, concurrency and span — the paper's trace table."""
        concurrency = self.trace.concurrency()
        return TraceSummary(
            land_name=self.trace.metadata.land_name,
            duration=self.trace.duration,
            snapshot_count=len(self.trace),
            unique_users=len(self.trace.unique_users()),
            mean_concurrency=self.trace.mean_concurrency(),
            max_concurrency=max(concurrency) if concurrency else 0,
        )

    # -- temporal metrics (Fig. 1) -------------------------------------------

    def contact_times(self, r: float) -> ECDF:
        """CT distribution under range ``r`` — Fig. 1(a)/(d)."""
        durations = self.contact_set(r).durations()
        return _ecdf(durations, f"no completed contacts at r={r}")

    def inter_contact_times(self, r: float) -> ECDF:
        """ICT distribution under range ``r`` — Fig. 1(b)/(e)."""
        gaps = self.contact_set(r).inter_contact_gaps()
        return _ecdf(gaps, f"no repeated contacts at r={r}")

    def first_contact_times(self, r: float) -> ECDF:
        """FT distribution under range ``r`` — Fig. 1(c)/(f).

        Waits are first-contact start minus first appearance, both
        read off flat arrays: the contact set's per-user earliest
        starts and the columnar store's first row per user id (row
        times are snapshot-ordered, so the first occurrence *is* the
        earliest).
        """
        user_ids, starts = self.contact_set(r).first_contact_starts()
        cols = self.trace.columns
        first_seen = np.full(len(cols.users.names), np.inf, dtype=np.float64)
        seen_ids, first_rows = np.unique(cols.user_ids, return_index=True)
        first_seen[seen_ids] = cols.row_times()[first_rows]
        waits = starts - first_seen[user_ids]
        return _ecdf(waits, f"no user ever met a neighbour at r={r}")

    # -- line-of-sight graph metrics (Fig. 2) ----------------------------------

    def degrees(self, r: float, every: int = 1) -> ECDF:
        """Aggregated node-degree distribution — Fig. 2(a)/(d)."""
        return _ecdf(self.degree_array(r, every), f"no degree samples at r={r}")

    def isolation_fraction(self, r: float, every: int = 1) -> float:
        """Share of (user, snapshot) samples with zero neighbours."""
        samples = self.degree_array(r, every)
        if not len(samples):
            raise ValueError("trace produced no degree samples")
        return float((samples == 0).sum() / len(samples))

    def diameters(self, r: float, every: int = 1) -> ECDF:
        """Largest-component diameter distribution — Fig. 2(b)/(e)."""
        if self._sharded is not None:
            series = np.asarray(self._sharded.diameter_array(r, every), dtype=float)
        else:
            series = [float(d) for d in losgraph.diameter_series(self.trace, r, every)]
        return _ecdf(series, f"no diameter samples at r={r}")

    def clustering(self, r: float, every: int = 1) -> ECDF:
        """Per-snapshot mean clustering distribution — Fig. 2(c)/(f)."""
        if self._sharded is not None:
            series = self._sharded.clustering_array(r, every)
        else:
            series = losgraph.clustering_series(self.trace, r, every)
        return _ecdf(series, f"no clustering samples at r={r}")

    # -- spatial metrics (Figs. 3 & 4) ---------------------------------------------

    def travel_lengths(self) -> ECDF:
        """Per-session travel length — Fig. 4(a)."""
        return _ecdf(spatial.travel_lengths(self.trace, self.session_set()),
                     "no sessions with at least two observations")

    def effective_travel_times(self) -> ECDF:
        """Per-session effective travel time — Fig. 4(b)."""
        return _ecdf(spatial.effective_travel_times(self.trace, self.session_set()),
                     "no sessions with at least two observations")

    def travel_times(self) -> ECDF:
        """Per-session connection time — Fig. 4(c)."""
        return _ecdf(spatial.travel_times(self.trace, self.session_set()),
                     "no sessions with at least two observations")

    def zone_occupation(self, cell_size: float = spatial.ZONE_SIZE, every: int = 1) -> ECDF:
        """Users-per-cell distribution — Fig. 3."""
        counts = self.zone_array(cell_size, every)
        return _ecdf(counts.astype(float), "no occupancy samples")


def _ecdf(samples: list[float] | np.ndarray, empty_message: str) -> ECDF:
    if len(samples) == 0:
        raise ValueError(empty_message)
    return ECDF(samples)
