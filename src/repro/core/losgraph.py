"""Line-of-sight networks and their graph-theoretic properties (§3.2).

"Given an arbitrary communication range r, a communication link exists
[between] two users v_i, v_j if their distance is less than r" — under
an ideal wireless channel (no obstacles), which is also what we build.

Aggregation conventions, matching Fig. 2:

* **node degree** — every user in every snapshot contributes one
  sample ("aggregated over the whole measurement period");
* **network diameter** — one sample per snapshot: the longest shortest
  path *of the largest connected component* (the network may be
  disconnected);
* **clustering coefficient** — one sample per snapshot: the mean
  Watts-Strogatz local clustering over all users present.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import planar_neighbour_pairs
from repro.netgraph import Graph, average_clustering, diameter
from repro.trace import Snapshot, Trace


def graph_from_pairs(users: list[str], pairs: np.ndarray) -> Graph:
    """Build a line-of-sight graph from node names plus local index pairs."""
    graph = Graph(nodes=users)
    for i, j in pairs:
        graph.add_edge(users[int(i)], users[int(j)])
    return graph


def snapshot_graph(snapshot: Snapshot, r: float) -> Graph:
    """The line-of-sight network of one snapshot.

    Every present user is a node (isolated users matter for the degree
    distribution); an edge links users closer than ``r``.  Edges come
    from the uniform-grid neighbour search, so cost follows local
    density instead of the snapshot's square.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    users, coords = snapshot.as_arrays()
    if len(users) < 2:
        return Graph(nodes=users)
    return graph_from_pairs(users, planar_neighbour_pairs(coords[:, :2], r))


def degree_samples(trace: Trace, r: float, every: int = 1) -> list[int]:
    """Aggregated node-degree samples (one per user per snapshot).

    ``every`` subsamples the snapshot sequence (1 = use all), which
    benchmark harnesses use to bound runtime; the distribution is
    insensitive to moderate subsampling because consecutive snapshots
    are highly correlated.

    Degrees are counted directly on the columnar pair arrays (bincount
    over pair endpoints) — no per-snapshot graph object is built.
    """
    if r <= 0:
        raise ValueError(f"communication range must be positive, got {r}")
    if every < 1:
        raise ValueError(f"stride must be >= 1, got {every}")
    cols = trace.columns
    samples: list[int] = []
    for index in range(0, cols.snapshot_count, every):
        user_ids, xyz = cols.slice_of(index)
        n = len(user_ids)
        if n == 0:
            continue
        if n == 1:
            samples.append(0)
            continue
        pairs = planar_neighbour_pairs(xyz[:, :2], r)
        degrees = np.bincount(pairs.ravel(), minlength=n)
        samples.extend(int(d) for d in degrees)
    return samples


def isolation_fraction(trace: Trace, r: float, every: int = 1) -> float:
    """Fraction of degree samples equal to zero.

    This is the headline Fig. 2(a) number: ~60 % of Apfel Land users
    have no neighbour at Bluetooth range, ~10 % on Dance Island, ~0 %
    on Isle of View.
    """
    samples = degree_samples(trace, r, every)
    if not samples:
        raise ValueError("trace produced no degree samples")
    zeros = sum(1 for degree_value in samples if degree_value == 0)
    return zeros / len(samples)


def diameter_series(trace: Trace, r: float, every: int = 1) -> list[int]:
    """Per-snapshot diameter of the largest connected component."""
    series: list[int] = []
    for snapshot in _strided(trace, every):
        graph = snapshot_graph(snapshot, r)
        series.append(diameter(graph, of_largest_component=True))
    return series


def clustering_series(
    trace: Trace,
    r: float,
    every: int = 1,
    count_low_degree: bool = False,
) -> list[float]:
    """Per-snapshot mean Watts-Strogatz clustering coefficient.

    By default the mean runs over the users whose coefficient is
    defined (degree >= 2); snapshots with no such user yield no sample.
    This matches the paper's reading — sparse lands still show "high
    median values of the clustering coefficient" because the isolated
    majority is not averaged in as zeros.  Set ``count_low_degree``
    for the strict Watts-Strogatz convention.
    """
    series: list[float] = []
    for snapshot in _strided(trace, every):
        graph = snapshot_graph(snapshot, r)
        if graph.node_count == 0:
            continue
        if not count_low_degree and not any(
            graph.degree(node) >= 2 for node in graph.nodes()
        ):
            continue
        series.append(average_clustering(graph, count_low_degree))
    return series


def _strided(trace: Trace, every: int):
    if every < 1:
        raise ValueError(f"stride must be >= 1, got {every}")
    # Yield lazily: materializing the skipped snapshots' dict views
    # would defeat the columnar layout for strided consumers.
    for index in range(0, len(trace), every):
        yield trace[index]
