"""Shard-parallel analysis: fan extractions over time shards, merge exactly.

:class:`ShardedAnalyzer` splits a trace into ``k`` contiguous time
shards (:func:`repro.trace.split_time_shards`), runs the expensive
per-snapshot extractions shard-by-shard on a
:class:`concurrent.futures.ThreadPoolExecutor`, and merges the partial
results into *exactly* what the unsharded code produces — including
contacts and sessions that span shard boundaries.  The equivalence
suite (``tests/unit/core/test_sharded_equivalence.py``) pins this
bit-for-bit.

Merge semantics:

* **Contacts** — a contact still open at a shard's last snapshot is
  censored there; if the same pair is in range at the first snapshot
  of the next non-empty shard the two pieces are one contact (strict
  per-snapshot closure has no other way to keep a contact alive across
  the boundary).  Unmatched boundary-censored contacts are closed with
  the usual ``+τ`` convention; only contacts open at the end of the
  *last* shard stay censored.
* **Sessions** — per-shard visits of one user whose boundary gap is
  within the session gap threshold are concatenated; within a shard
  the extractor already guarantees larger gaps, so stitching only ever
  fires at boundaries.
* **Zone occupation** — the snapshot stride is phased per shard so the
  globally-strided snapshot selection is reproduced, then the
  per-shard count arrays concatenate in snapshot-major order.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core import spatial
from repro.core.contacts import (
    ContactInterval,
    extract_contacts,
    extract_contacts_multirange,
)
from repro.trace import Trace, UserSession, extract_sessions, split_time_shards

T = TypeVar("T")


class ShardedAnalyzer:
    """Fan contact/session/zone extraction across time shards.

    ``shards`` is the number of time windows; ``max_workers`` caps the
    thread pool (default: one thread per non-empty shard, bounded by
    the CPU count).  Results are cached like
    :class:`~repro.core.analyzer.TraceAnalyzer` caches its extractions.
    """

    def __init__(
        self,
        trace: Trace,
        shards: int,
        max_workers: int | None = None,
    ) -> None:
        if trace.is_empty:
            raise ValueError("cannot analyze an empty trace")
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.trace = trace
        self.shards = [s for s in split_time_shards(trace, shards) if len(s)]
        self.shard_count = shards
        self._max_workers = max_workers or min(
            len(self.shards), os.cpu_count() or 1
        )
        self._contacts: dict[float, list[ContactInterval]] = {}
        self._sessions: dict[float, list[UserSession]] = {}

    def _map(self, fn: Callable[[Trace], T], jobs: Sequence[Trace] | None = None) -> list[T]:
        """Apply ``fn`` to each job (default: every non-empty shard), in order."""
        if jobs is None:
            jobs = self.shards
        if len(jobs) <= 1:
            return [fn(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            return list(pool.map(fn, jobs))

    # -- contacts ----------------------------------------------------------

    def contacts(self, r: float) -> list[ContactInterval]:
        """Merged contact intervals under range ``r`` (cached per range)."""
        if r not in self._contacts:
            per_shard = self._map(lambda shard: extract_contacts(shard, r))
            self._contacts[r] = self._merge_contacts(per_shard)
        return self._contacts[r]

    def contacts_multirange(
        self, ranges: Iterable[float]
    ) -> dict[float, list[ContactInterval]]:
        """Batched multi-range extraction, sharded, merged per radius."""
        radii = sorted({float(r) for r in ranges})
        missing = [r for r in radii if r not in self._contacts]
        if missing:
            per_shard = self._map(
                lambda shard: extract_contacts_multirange(shard, missing)
            )
            for r in missing:
                self._contacts[r] = self._merge_contacts(
                    [result[r] for result in per_shard]
                )
        return {r: self._contacts[r] for r in radii}

    def _merge_contacts(
        self, per_shard: Sequence[list[ContactInterval]]
    ) -> list[ContactInterval]:
        tau = self.trace.metadata.tau
        first_times = [s.start_time for s in self.shards]
        merged: list[ContactInterval] = []
        # pair -> (merged start, last in-range time) of contacts still
        # open at the previous shard's boundary.
        open_tail: dict[tuple[str, str], tuple[float, float]] = {}
        for contacts, first_time in zip(per_shard, first_times):
            still_open: dict[tuple[str, str], tuple[float, float]] = {}
            for c in contacts:
                carried = open_tail.pop(c.pair, None) if c.start == first_time else None
                start = carried[0] if carried is not None else c.start
                if c.censored:
                    still_open[c.pair] = (start, c.end)
                elif start != c.start:
                    merged.append(
                        ContactInterval(c.pair[0], c.pair[1], start, c.end)
                    )
                else:
                    merged.append(c)
            # Boundary contacts the next shard did not continue close
            # with the usual +tau convention.
            for pair, (start, last_seen) in open_tail.items():
                merged.append(
                    ContactInterval(pair[0], pair[1], start, last_seen + tau)
                )
            open_tail = still_open
        # Contacts open at the end of the final shard stay censored.
        for pair, (start, last_seen) in open_tail.items():
            merged.append(
                ContactInterval(pair[0], pair[1], start, last_seen, censored=True)
            )
        merged.sort(key=lambda c: (c.start, c.pair))
        return merged

    # -- sessions ----------------------------------------------------------

    def sessions(self, gap_threshold: float | None = None) -> list[UserSession]:
        """Merged user visits (cached per resolved gap threshold)."""
        resolved = (
            gap_threshold
            if gap_threshold is not None
            else 2.0 * self.trace.metadata.tau
        )
        if resolved not in self._sessions:
            per_shard = self._map(
                lambda shard: extract_sessions(shard, resolved)
            )
            self._sessions[resolved] = self._merge_sessions(per_shard, resolved)
        return self._sessions[resolved]

    @staticmethod
    def _merge_sessions(
        per_shard: Sequence[list[UserSession]],
        gap_threshold: float,
    ) -> list[UserSession]:
        by_user: dict[str, list[UserSession]] = {}
        for sessions in per_shard:
            for session in sessions:
                by_user.setdefault(session.user, []).append(session)
        merged: list[UserSession] = []
        for user, sessions in by_user.items():
            current = sessions[0]
            for candidate in sessions[1:]:
                if candidate.login_time - current.logout_time <= gap_threshold:
                    times_a, xyz_a = current.as_arrays()
                    times_b, xyz_b = candidate.as_arrays()
                    current = UserSession._from_arrays(
                        user,
                        np.concatenate([times_a, times_b]),
                        np.vstack([xyz_a, xyz_b]),
                    )
                else:
                    merged.append(current)
                    current = candidate
            merged.append(current)
        merged.sort(key=lambda s: (s.login_time, s.user))
        return merged

    # -- zone occupation ---------------------------------------------------

    def zone_occupation(
        self,
        cell_size: float = spatial.ZONE_SIZE,
        every: int = 1,
    ) -> np.ndarray:
        """Users-per-cell samples, shard-parallel, snapshot-major order."""
        if every < 1:
            raise ValueError(f"stride must be >= 1, got {every}")
        jobs: list[Trace] = []
        consumed = 0
        for shard in self.shards:
            # Phase the stride so the union of shard selections equals
            # the global range(0, S, every) selection.
            phase = (-consumed) % every
            kept = np.arange(phase, len(shard), every)
            consumed += len(shard)
            if len(kept):
                jobs.append(
                    Trace.from_columns(shard.columns.select(kept), shard.metadata)
                )
        if not jobs:
            return np.empty(0, dtype=np.int64)
        parts = self._map(
            lambda sub: spatial.zone_occupation(sub, cell_size, 1), jobs
        )
        return np.concatenate(parts)
