"""Shard-parallel analysis: fan extractions over time shards, merge exactly.

:class:`ShardedAnalyzer` splits a trace into ``k`` contiguous time
shards (:func:`repro.trace.split_time_shards`), runs the expensive
per-snapshot extractions shard-by-shard on a worker pool, and merges
the partial results into *exactly* what the unsharded code produces —
including contacts and sessions that span shard boundaries.  The
equivalence suites (``tests/unit/core/test_sharded_equivalence.py``,
``tests/unit/core/test_parallel_backends.py``) pin this bit-for-bit.

Two execution backends share one task vocabulary
(:mod:`repro.core.parallel`):

* ``backend="thread"`` — a ``ThreadPoolExecutor`` over the in-memory
  shard views.  Cheap to start, but the Python interval/session state
  machines serialize on the GIL; only the numpy portions overlap.
* ``backend="process"`` — the shards are materialized as per-shard
  ``.rtrc`` files (lazily, into a private temp directory) and a
  ``spawn``-based ``ProcessPoolExecutor`` fans the same tasks; each
  worker memmap-loads its own file, so no trace bytes cross the pipe
  in either direction — tasks go in as tiny tuples, results come back
  as compact array payloads.

Merge semantics (split-agnostic; the windowed analyzer reuses them):

* **Contacts** — a contact still open at a shard's last snapshot is
  censored there; if the same pair is in range at the first snapshot
  of the next non-empty shard the two pieces are one contact (strict
  per-snapshot closure has no other way to keep a contact alive across
  the boundary).  Unmatched boundary-censored contacts are closed with
  the usual ``+τ`` convention; only contacts open at the end of the
  *last* shard stay censored.
* **Sessions** — per-shard visits of one user whose boundary gap is
  within the session gap threshold are concatenated; within a shard
  the extractor already guarantees larger gaps, so stitching only ever
  fires at boundaries.
* **Per-snapshot samples** (zone occupation, losgraph degrees,
  diameters, clustering) — the snapshot stride is phased per shard so
  the globally-strided selection is reproduced, then the per-shard
  sample arrays concatenate in snapshot-major order.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.core import spatial
from repro.core.contacts import ContactInterval
from repro.core.parallel import PartAnalysisError, PartScheduler
from repro.trace import (
    Trace,
    TraceMetadata,
    UserSession,
    split_time_shards,
)

#: Execution backends understood by :class:`ShardedAnalyzer`.
BACKENDS = ("thread", "process")


class ShardAnalysisError(PartAnalysisError):
    """A shard worker failed; the message names the shard's time range."""


def merge_shard_contacts(
    per_shard: Sequence[list[ContactInterval]],
    first_times: Sequence[float],
    tau: float,
) -> list[ContactInterval]:
    """Stitch per-shard contact intervals into the unsharded answer.

    ``per_shard`` holds each non-empty shard's intervals in time order;
    ``first_times`` the matching shards' first snapshot times.  The
    boundary rule is described in the module docstring.
    """
    merged: list[ContactInterval] = []
    # pair -> (merged start, last in-range time) of contacts still
    # open at the previous shard's boundary.
    open_tail: dict[tuple[str, str], tuple[float, float]] = {}
    for contacts, first_time in zip(per_shard, first_times):
        still_open: dict[tuple[str, str], tuple[float, float]] = {}
        for c in contacts:
            carried = open_tail.pop(c.pair, None) if c.start == first_time else None
            start = carried[0] if carried is not None else c.start
            if c.censored:
                still_open[c.pair] = (start, c.end)
            elif start != c.start:
                merged.append(
                    ContactInterval(c.pair[0], c.pair[1], start, c.end)
                )
            else:
                merged.append(c)
        # Boundary contacts the next shard did not continue close
        # with the usual +tau convention.
        for pair, (start, last_seen) in open_tail.items():
            merged.append(
                ContactInterval(pair[0], pair[1], start, last_seen + tau)
            )
        open_tail = still_open
    # Contacts open at the end of the final shard stay censored.
    for pair, (start, last_seen) in open_tail.items():
        merged.append(
            ContactInterval(pair[0], pair[1], start, last_seen, censored=True)
        )
    merged.sort(key=lambda c: (c.start, c.pair))
    return merged


def merge_shard_sessions(
    per_shard: Sequence[list[UserSession]],
    gap_threshold: float,
) -> list[UserSession]:
    """Stitch per-shard visit lists into the unsharded session list."""
    by_user: dict[str, list[UserSession]] = {}
    for sessions in per_shard:
        for session in sessions:
            by_user.setdefault(session.user, []).append(session)
    merged: list[UserSession] = []
    for user, sessions in by_user.items():
        current = sessions[0]
        for candidate in sessions[1:]:
            if candidate.login_time - current.logout_time <= gap_threshold:
                times_a, xyz_a = current.as_arrays()
                times_b, xyz_b = candidate.as_arrays()
                current = UserSession._from_arrays(
                    user,
                    np.concatenate([times_a, times_b]),
                    np.vstack([xyz_a, xyz_b]),
                )
            else:
                merged.append(current)
                current = candidate
        merged.append(current)
    merged.sort(key=lambda s: (s.login_time, s.user))
    return merged


def stride_phases(shard_lengths: Iterable[int], every: int) -> list[int]:
    """Per-shard phases reproducing the global ``range(0, S, every)``."""
    if every < 1:
        raise ValueError(f"stride must be >= 1, got {every}")
    phases: list[int] = []
    consumed = 0
    for length in shard_lengths:
        phases.append((-consumed) % every)
        consumed += length
    return phases


class BoundaryMergeAnalyzer:
    """Cache + exact-merge plumbing shared by time-partitioned analyzers.

    Subclasses split a trace into contiguous time parts — even
    snapshot shards (:class:`ShardedAnalyzer`), wall-clock windows
    (:class:`~repro.core.windowed.WindowedAnalyzer`), append rounds
    (:class:`~repro.core.live.LiveAnalyzer`) — and fan
    :func:`~repro.core.parallel.extract_shard_task` over them (usually
    through a :class:`~repro.core.parallel.PartScheduler`); this base
    owns the per-parameter result caches, the boundary merges, the
    strided-sample concatenation, and the shared close contract.  A
    subclass provides:

    * ``metadata`` — the trace's :class:`~repro.trace.TraceMetadata`;
    * ``_map(kind, params_per_part)`` — one decoded task result per
      non-empty part, in time order (call :meth:`_check_open` first);
    * ``_part_first_times()`` — first snapshot time per non-empty part;
    * ``_part_lengths()`` — snapshot count per non-empty part;
    * ``_release()`` — drop the subclass's resources (pools, memmaps,
      part files) when :meth:`close` runs.

    Close contract (uniform across every subclass, pinned by
    ``tests/unit/core/test_close_contract.py``): after :meth:`close`,
    previously computed results stay readable from the caches, any
    analysis that would need new extraction raises ``ValueError``
    mentioning "closed", and no pool, temp directory, or memmap is
    silently resurrected.  ``close()`` is idempotent and available as
    a context manager.
    """

    metadata: TraceMetadata

    #: Human-readable name used in the closed-analyzer error message;
    #: subclasses set it to something identifying the input.
    _label: str = "analyzer"

    def __init__(self) -> None:
        self._contacts: dict[float, list[ContactInterval]] = {}
        self._sessions: dict[float, list[UserSession]] = {}
        self._samples: dict[tuple, np.ndarray] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Release resources; cached results survive, new analyses raise."""
        if self._closed:
            return
        self._closed = True
        self._release()

    def _release(self) -> None:
        """Subclass hook: drop pools, memmaps, and part files."""

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self._label}: analyzer is closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- partition plumbing ------------------------------------------------

    def _map(self, kind: str, params_per_part: Sequence[tuple]) -> list[object]:
        raise NotImplementedError

    def _part_first_times(self) -> list[float]:
        raise NotImplementedError

    def _part_lengths(self) -> list[int]:
        raise NotImplementedError

    def _part_count(self) -> int:
        return len(self._part_lengths())

    # -- contacts ----------------------------------------------------------

    def contacts(self, r: float) -> list[ContactInterval]:
        """Merged contact intervals under range ``r`` (cached per range)."""
        if r not in self._contacts:
            per_part = self._map("contacts", [(r,)] * self._part_count())
            self._contacts[r] = merge_shard_contacts(
                per_part, self._part_first_times(), self.metadata.tau
            )
        return self._contacts[r]

    def contacts_multirange(
        self, ranges: Iterable[float]
    ) -> dict[float, list[ContactInterval]]:
        """Batched multi-range extraction, merged per radius."""
        radii = sorted({float(r) for r in ranges})
        missing = [r for r in radii if r not in self._contacts]
        if missing:
            per_part = self._map(
                "contacts_multirange", [(tuple(missing),)] * self._part_count()
            )
            first_times = self._part_first_times()
            for r in missing:
                self._contacts[r] = merge_shard_contacts(
                    [result[r] for result in per_part],
                    first_times,
                    self.metadata.tau,
                )
        return {r: self._contacts[r] for r in radii}

    # -- sessions ----------------------------------------------------------

    def sessions(self, gap_threshold: float | None = None) -> list[UserSession]:
        """Merged user visits (cached per resolved gap threshold)."""
        resolved = (
            gap_threshold
            if gap_threshold is not None
            else 2.0 * self.metadata.tau
        )
        if resolved not in self._sessions:
            per_part = self._map("sessions", [(resolved,)] * self._part_count())
            self._sessions[resolved] = merge_shard_sessions(per_part, resolved)
        return self._sessions[resolved]

    # -- per-snapshot sample arrays ----------------------------------------

    def _strided_samples(self, kind: str, head: tuple, every: int) -> np.ndarray:
        """Fan a strided per-snapshot task; concatenate snapshot-major."""
        key = (kind, *head, every)
        if key not in self._samples:
            phases = stride_phases(self._part_lengths(), every)
            parts = self._map(kind, [(*head, every, phase) for phase in phases])
            self._samples[key] = np.concatenate(parts)
        return self._samples[key]

    def zone_occupation(
        self,
        cell_size: float = spatial.ZONE_SIZE,
        every: int = 1,
    ) -> np.ndarray:
        """Users-per-cell samples, merged in snapshot-major order."""
        return self._strided_samples("zone_occupation", (cell_size,), every)

    def degree_array(self, r: float, every: int = 1) -> np.ndarray:
        """Aggregated node-degree samples — Fig. 2(a)/(d) feed."""
        return self._strided_samples("degrees", (r,), every)

    def diameter_array(self, r: float, every: int = 1) -> np.ndarray:
        """Per-snapshot largest-component diameters."""
        return self._strided_samples("diameters", (r,), every)

    def clustering_array(self, r: float, every: int = 1) -> np.ndarray:
        """Per-snapshot mean clustering coefficients."""
        return self._strided_samples("clustering", (r,), every)


class ShardedAnalyzer(BoundaryMergeAnalyzer):
    """Fan contact/session/zone/graph extraction across time shards.

    Usually reached through ``TraceAnalyzer(trace, shards=k)``; use it
    directly when only the raw merged extractions are needed.

    Parameters
    ----------
    trace:
        The (non-empty) trace to analyze.
    shards:
        Number of contiguous time windows to fan over.  Purely a
        performance knob: merges reproduce the unsharded results
        exactly at any count (empty shards are dropped).
    max_workers:
        Pool cap; defaults to one worker per non-empty shard, bounded
        by the CPU count.
    backend:
        ``"thread"`` — a ``ThreadPoolExecutor`` over in-memory shard
        views; no start-up cost, but the Python interval/session state
        machines serialize on the GIL, so only numpy grid work
        overlaps.  ``"process"`` — per-shard ``.rtrc`` files
        (materialized lazily into a private temp dir) analyzed by a
        ``spawn``-based ``ProcessPoolExecutor`` whose workers
        memmap-load their own shard; real multi-core scaling at the
        cost of worker spawn and the one-time shard write.

    Results are cached like :class:`~repro.core.analyzer.TraceAnalyzer`
    caches its extractions.

    Lifecycle
    ---------
    The process backend owns two lazy resources — the per-shard
    ``.rtrc`` files and a persistent worker pool (spawning workers is
    much more expensive than a thread pool, so it is reused across
    analyses).  Both are released by :meth:`close` (also available as
    a context manager) and, as a backstop, by garbage collection.
    After ``close()`` cached results stay readable but new analyses
    raise — nothing resurrects the pool silently.
    """

    def __init__(
        self,
        trace: Trace,
        shards: int,
        max_workers: int | None = None,
        backend: str = "thread",
    ) -> None:
        if trace.is_empty:
            raise ValueError("cannot analyze an empty trace")
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        super().__init__()
        self.trace = trace
        self.metadata = trace.metadata
        self.backend = backend
        self.shards = [s for s in split_time_shards(trace, shards) if len(s)]
        self.shard_count = shards
        self._label = "sharded analyzer"
        self._max_workers = max_workers or min(
            len(self.shards), os.cpu_count() or 1
        )
        self._scheduler = PartScheduler(
            backend,
            self._max_workers,
            file_prefix="shard",
            error_cls=ShardAnalysisError,
        )

    # -- lifecycle ---------------------------------------------------------

    def _release(self) -> None:
        """Shut down the worker pool and delete the shard files."""
        self._scheduler.close()

    # -- execution ---------------------------------------------------------

    def _map(self, kind: str, params_per_shard: Sequence[tuple]) -> list[object]:
        """One task per non-empty shard, results in shard order.

        Worker failures are re-raised as :class:`ShardAnalysisError`
        naming the failing shard's time range (the original exception
        rides along as ``__cause__``).  A broken process pool is
        discarded, so the analyzer stays usable after a worker death.
        A single non-empty shard runs inline on either backend — no
        spawn or shard-file overhead for zero available parallelism.
        """
        self._check_open()
        return self._scheduler.run(
            kind,
            list(enumerate(params_per_shard)),
            part_trace=lambda index: self.shards[index],
            names=lambda: self._names,
            wrap_error=self._shard_error,
        )

    def _shard_error(
        self, index: int, kind: str, exc: Exception
    ) -> ShardAnalysisError:
        shard = self.shards[index]
        return ShardAnalysisError(
            f"{kind} failed on shard {index + 1}/{len(self.shards)} covering "
            f"t=[{shard.start_time:g}, {shard.end_time:g}] "
            f"({len(shard)} snapshots): {exc}"
        )

    @property
    def _names(self) -> list[str]:
        return self.trace.columns.users.names

    # -- partition geometry ------------------------------------------------

    def _part_first_times(self) -> list[float]:
        return [s.start_time for s in self.shards]

    def _part_lengths(self) -> list[int]:
        return [len(s) for s in self.shards]
