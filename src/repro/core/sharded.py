"""Shard-parallel analysis: fan extractions over time shards, merge exactly.

:class:`ShardedAnalyzer` splits a trace into ``k`` contiguous time
shards (:func:`repro.trace.split_time_shards`), runs the expensive
per-snapshot extractions shard-by-shard on a worker pool, and merges
the partial results into *exactly* what the unsharded code produces —
including contacts and sessions that span shard boundaries.  The
equivalence suites (``tests/unit/core/test_sharded_equivalence.py``,
``tests/unit/core/test_parallel_backends.py``) pin this bit-for-bit.

Two execution backends share one task vocabulary
(:mod:`repro.core.parallel`):

* ``backend="thread"`` — a ``ThreadPoolExecutor`` over the in-memory
  shard views.  Cheap to start, and since extraction is dominated by
  the vectorized run-length kernels (:mod:`repro.core.kernels`), the
  numpy calls release the GIL and shards genuinely overlap.
* ``backend="process"`` — the shards are materialized as per-shard
  ``.rtrc`` files (lazily, into a private temp directory) and a
  ``spawn``-based ``ProcessPoolExecutor`` fans the same tasks; each
  worker memmap-loads its own file, so no trace bytes cross the pipe
  in either direction — tasks go in as tiny tuples, results come back
  as compact array payloads.

Merge semantics (split-agnostic; the windowed analyzer reuses them):

* **Contacts** — a contact still open at a shard's last snapshot is
  censored there; if the same pair is in range at the first snapshot
  of the next non-empty shard the two pieces are one contact (strict
  per-snapshot closure has no other way to keep a contact alive across
  the boundary).  Unmatched boundary-censored contacts are closed with
  the usual ``+τ`` convention; only contacts open at the end of the
  *last* shard stay censored.
* **Sessions** — per-shard visits of one user whose boundary gap is
  within the session gap threshold are concatenated; within a shard
  the extractor already guarantees larger gaps, so stitching only ever
  fires at boundaries.
* **Per-snapshot samples** (zone occupation, losgraph degrees,
  diameters, clustering) — the snapshot stride is phased per shard so
  the globally-strided selection is reproduced, then the per-shard
  sample arrays concatenate in snapshot-major order.

Both merges are **columnar**: per-part results arrive as
:class:`~repro.core.kernels.ContactSet` /
:class:`~repro.trace.SessionSet` arrays, one lexsort groups each
pair's (or user's) per-part pieces, a vectorized link condition finds
the boundary stitches, and run-length chains collapse into the merged
rows — no interval or session objects are built anywhere in the merge.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.core import spatial
from repro.core.contacts import ContactInterval
from repro.core.kernels import ContactSet, contact_set_from_columns
from repro.core.parallel import PartAnalysisError, PartScheduler
from repro.trace import (
    SessionSet,
    Trace,
    TraceMetadata,
    UserSession,
    split_time_shards,
)
from repro.trace.columnar import _concat_aranges, name_ranks

#: Execution backends understood by :class:`ShardedAnalyzer`.
BACKENDS = ("thread", "process", "network")


class ShardAnalysisError(PartAnalysisError):
    """A shard worker failed; the message names the shard's time range."""


def _unify_name_tables(
    tables: Sequence[Sequence[str]],
) -> tuple[Sequence[str], list[np.ndarray | None]]:
    """One name table covering every part, plus per-part id remaps.

    Parts produced from views of one store share its table (identity
    fast path); parts loaded from a shard directory's round files carry
    prefix-consistent tables (the longest covers all, ids unchanged);
    foreign directories with independent interners get their ids
    rewritten into a first-seen union so the merge never conflates
    distinct users that happen to share an id.  ``None`` in the remap
    list means that part's ids are already valid in the merged table.
    """
    base = tables[0]
    if all(t is base for t in tables[1:]):
        return base, [None] * len(tables)
    longest = max(tables, key=len)
    if all(
        t is longest or list(t) == list(longest[: len(t)]) for t in tables
    ):
        return longest, [None] * len(tables)
    merged: list[str] = []
    index: dict[str, int] = {}
    remaps: list[np.ndarray | None] = []
    for t in tables:
        remap = np.empty(len(t), dtype=np.int64)
        for i, name in enumerate(t):
            j = index.get(name)
            if j is None:
                j = len(merged)
                index[name] = j
                merged.append(name)
            remap[i] = j
        remaps.append(remap)
    return merged, remaps


def merge_shard_contacts(
    per_shard: Sequence[ContactSet],
    first_times: Sequence[float],
    tau: float,
) -> ContactSet:
    """Stitch per-shard contact sets into the unsharded answer.

    ``per_shard`` holds each non-empty shard's contact set in time
    order; ``first_times`` the matching shards' first snapshot times.
    The merge is one lexsort by ``(pair, start)`` over the
    concatenated part columns: a part-``p`` interval censored at its
    shard boundary is the last row of its pair within part ``p``, so
    its continuation — if any — is exactly the next row, and the link
    condition (same pair, adjacent part, continuation starts at the
    next part's first snapshot) vectorizes.  Linked rows chain into
    one interval; censored tails the next part did not continue are
    closed with the usual ``+τ`` convention, and only chains ending
    censored in the *last* part stay censored.
    """
    if not per_shard:
        return ContactSet.empty([])
    if len(per_shard) == 1:
        return per_shard[0]
    names, remaps = _unify_name_tables([s.names for s in per_shard])
    n_parts = len(per_shard)
    ids_a = np.concatenate(
        [
            s.ids_a if remap is None else remap[s.ids_a]
            for s, remap in zip(per_shard, remaps)
        ]
    )
    ids_b = np.concatenate(
        [
            s.ids_b if remap is None else remap[s.ids_b]
            for s, remap in zip(per_shard, remaps)
        ]
    )
    starts = np.concatenate([s.starts for s in per_shard])
    ends = np.concatenate([s.ends for s in per_shard])
    censored = np.concatenate([s.censored for s in per_shard])
    part_of = np.repeat(
        np.arange(n_parts, dtype=np.int64),
        [len(s) for s in per_shard],
    )
    if not len(ids_a):
        return ContactSet.empty(names)
    part_first = np.asarray(first_times, dtype=np.float64)

    shift = max(len(names), 1)
    keys = ids_a * shift + ids_b
    order = np.lexsort((starts, keys))
    k = keys[order]
    s = starts[order]
    e = ends[order]
    c = censored[order]
    p = part_of[order]

    # Row i+1 continues row i iff the pair matches, row i was censored
    # at its shard boundary, the candidate lives in the very next
    # non-empty part, and it starts at that part's first snapshot —
    # the loop rule, applied to every boundary at once.
    link = (
        (k[1:] == k[:-1])
        & c[:-1]
        & (p[1:] == p[:-1] + 1)
        & (s[1:] == part_first[p[1:]])
    )
    head = np.empty(len(k), dtype=np.bool_)
    head[0] = True
    head[1:] = ~link
    first = np.flatnonzero(head)
    last = np.append(first[1:], len(k)) - 1

    tail_censored = c[last]
    in_last_part = p[last] == n_parts - 1
    keep_censored = tail_censored & in_last_part
    merged_ends = np.where(tail_censored & ~in_last_part, e[last] + tau, e[last])
    return contact_set_from_columns(
        ids_a[order][first],
        ids_b[order][first],
        s[first],
        merged_ends,
        keep_censored,
        names,
    )


def merge_shard_sessions(
    per_shard: Sequence[SessionSet],
    gap_threshold: float,
) -> SessionSet:
    """Stitch per-shard session sets into the unsharded session list.

    One lexsort by ``(user, login)`` over the concatenated per-part
    sessions makes every user's visits contiguous and time-ordered;
    consecutive visits whose gap is within ``gap_threshold`` chain
    into one (within a part the extractor already guarantees larger
    gaps, so links only ever fire at part boundaries).  Observation
    rows are gathered with two vectorized index builds — no per-row
    Python, no intermediate ``UserSession`` objects.
    """
    if not per_shard:
        return SessionSet.empty([])
    if len(per_shard) == 1:
        return per_shard[0]
    names, remaps = _unify_name_tables([s.names for s in per_shard])
    uids = np.concatenate(
        [
            s.user_ids if remap is None else remap[s.user_ids]
            for s, remap in zip(per_shard, remaps)
        ]
    )
    if not len(uids):
        return SessionSet.empty(names)
    logins = np.concatenate([s.login_times() for s in per_shard])
    logouts = np.concatenate([s.logout_times() for s in per_shard])
    counts = np.concatenate([s.observation_counts() for s in per_shard])
    all_times = np.concatenate([s.times for s in per_shard])
    all_xyz = np.concatenate([s.xyz for s in per_shard])
    row_base = np.cumsum([0] + [len(s.times) for s in per_shard])[:-1]
    row_starts = np.concatenate(
        [s.offsets[:-1] + base for s, base in zip(per_shard, row_base)]
    )

    order = np.lexsort((logins, uids))
    u = uids[order]
    li = logins[order]
    lo = logouts[order]
    cnt = counts[order]

    link = (u[1:] == u[:-1]) & (li[1:] - lo[:-1] <= gap_threshold)
    head = np.empty(len(u), dtype=np.bool_)
    head[0] = True
    head[1:] = ~link
    first = np.flatnonzero(head)
    last = np.append(first[1:], len(u)) - 1

    # Gather rows once into (user, login) session order; chain members
    # are consecutive there, so merged sessions are contiguous blocks.
    rows_sorted = _concat_aranges(row_starts[order], cnt)
    row_pos = np.zeros(len(u) + 1, dtype=np.int64)
    np.cumsum(cnt, out=row_pos[1:])
    merged_counts = row_pos[last + 1] - row_pos[first]
    merged_uids = u[first]
    merged_logins = li[first]

    final = np.lexsort((name_ranks(names)[merged_uids], merged_logins))
    sel = _concat_aranges(row_pos[first][final], merged_counts[final])
    rows = rows_sorted[sel]
    offsets = np.zeros(len(final) + 1, dtype=np.int64)
    np.cumsum(merged_counts[final], out=offsets[1:])
    return SessionSet(
        merged_uids[final], offsets, all_times[rows], all_xyz[rows], names
    )


def stride_phases(shard_lengths: Iterable[int], every: int) -> list[int]:
    """Per-shard phases reproducing the global ``range(0, S, every)``."""
    if every < 1:
        raise ValueError(f"stride must be >= 1, got {every}")
    phases: list[int] = []
    consumed = 0
    for length in shard_lengths:
        phases.append((-consumed) % every)
        consumed += length
    return phases


class BoundaryMergeAnalyzer:
    """Cache + exact-merge plumbing shared by time-partitioned analyzers.

    Subclasses split a trace into contiguous time parts — even
    snapshot shards (:class:`ShardedAnalyzer`), wall-clock windows
    (:class:`~repro.core.windowed.WindowedAnalyzer`), append rounds
    (:class:`~repro.core.live.LiveAnalyzer`) — and fan
    :func:`~repro.core.parallel.extract_shard_task` over them (usually
    through a :class:`~repro.core.parallel.PartScheduler`); this base
    owns the per-parameter result caches, the boundary merges, the
    strided-sample concatenation, and the shared close contract.  A
    subclass provides:

    * ``metadata`` — the trace's :class:`~repro.trace.TraceMetadata`;
    * ``_map(kind, params_per_part)`` — one decoded task result per
      non-empty part, in time order (call :meth:`_check_open` first);
    * ``_part_first_times()`` — first snapshot time per non-empty part;
    * ``_part_lengths()`` — snapshot count per non-empty part;
    * ``_release()`` — drop the subclass's resources (pools, memmaps,
      part files) when :meth:`close` runs.

    Close contract (uniform across every subclass, pinned by
    ``tests/unit/core/test_close_contract.py``): after :meth:`close`,
    previously computed results stay readable from the caches, any
    analysis that would need new extraction raises ``ValueError``
    mentioning "closed", and no pool, temp directory, or memmap is
    silently resurrected.  ``close()`` is idempotent and available as
    a context manager.
    """

    metadata: TraceMetadata

    #: Human-readable name used in the closed-analyzer error message;
    #: subclasses set it to something identifying the input.
    _label: str = "analyzer"

    def __init__(self) -> None:
        self._contacts: dict[float, ContactSet] = {}
        self._sessions: dict[float, SessionSet] = {}
        self._samples: dict[tuple, np.ndarray] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Release resources; cached results survive, new analyses raise."""
        if self._closed:
            return
        self._closed = True
        self._release()

    def _release(self) -> None:
        """Subclass hook: drop pools, memmaps, and part files."""

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self._label}: analyzer is closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def network_url(self) -> str:
        """The network coordinator's URL (``backend="network"`` only).

        Starts the coordinator if needed, so remote ``slmob worker``
        processes can attach before the first analysis is requested.
        Raises ``ValueError`` on any other backend.
        """
        self._check_open()
        return self._scheduler.network_url()

    # -- partition plumbing ------------------------------------------------

    def _map(self, kind: str, params_per_part: Sequence[tuple]) -> list[object]:
        raise NotImplementedError

    def _part_first_times(self) -> list[float]:
        raise NotImplementedError

    def _part_lengths(self) -> list[int]:
        raise NotImplementedError

    def _part_count(self) -> int:
        return len(self._part_lengths())

    # -- contacts ----------------------------------------------------------

    def contact_set(self, r: float) -> ContactSet:
        """Merged columnar contact set under range ``r`` (cached)."""
        if r not in self._contacts:
            per_part = self._map("contacts", [(r,)] * self._part_count())
            self._contacts[r] = merge_shard_contacts(
                per_part, self._part_first_times(), self.metadata.tau
            )
        return self._contacts[r]

    def contacts(self, r: float) -> list[ContactInterval]:
        """Merged contact intervals under range ``r`` (cached per range)."""
        return self.contact_set(r).intervals()

    def contact_sets_multirange(
        self,
        ranges: Iterable[float],
        radius_workers: int | None = None,
    ) -> dict[float, ContactSet]:
        """Batched multi-range extraction, merged per radius.

        ``radius_workers > 1`` lets every part fan its radius sweep
        across an internal thread pool (the per-radius kernel passes
        are independent numpy work) — results are identical on any
        worker count.
        """
        radii = sorted({float(r) for r in ranges})
        missing = [r for r in radii if r not in self._contacts]
        if missing:
            per_part = self._map(
                "contacts_multirange",
                [(tuple(missing), radius_workers)] * self._part_count(),
            )
            first_times = self._part_first_times()
            for r in missing:
                self._contacts[r] = merge_shard_contacts(
                    [result[r] for result in per_part],
                    first_times,
                    self.metadata.tau,
                )
        return {r: self._contacts[r] for r in radii}

    def contacts_multirange(
        self,
        ranges: Iterable[float],
        radius_workers: int | None = None,
    ) -> dict[float, list[ContactInterval]]:
        """Batched multi-range extraction, merged per radius."""
        sets = self.contact_sets_multirange(ranges, radius_workers)
        return {r: s.intervals() for r, s in sets.items()}

    # -- sessions ----------------------------------------------------------

    def session_set(self, gap_threshold: float | None = None) -> SessionSet:
        """Merged columnar session set (cached per resolved threshold)."""
        resolved = (
            gap_threshold
            if gap_threshold is not None
            else 2.0 * self.metadata.tau
        )
        if resolved not in self._sessions:
            per_part = self._map("sessions", [(resolved,)] * self._part_count())
            self._sessions[resolved] = merge_shard_sessions(per_part, resolved)
        return self._sessions[resolved]

    def sessions(self, gap_threshold: float | None = None) -> list[UserSession]:
        """Merged user visits (cached per resolved gap threshold)."""
        return self.session_set(gap_threshold).sessions()

    # -- per-snapshot sample arrays ----------------------------------------

    def _strided_samples(self, kind: str, head: tuple, every: int) -> np.ndarray:
        """Fan a strided per-snapshot task; concatenate snapshot-major."""
        key = (kind, *head, every)
        if key not in self._samples:
            phases = stride_phases(self._part_lengths(), every)
            parts = self._map(kind, [(*head, every, phase) for phase in phases])
            self._samples[key] = np.concatenate(parts)
        return self._samples[key]

    def zone_occupation(
        self,
        cell_size: float = spatial.ZONE_SIZE,
        every: int = 1,
    ) -> np.ndarray:
        """Users-per-cell samples, merged in snapshot-major order."""
        return self._strided_samples("zone_occupation", (cell_size,), every)

    def degree_array(self, r: float, every: int = 1) -> np.ndarray:
        """Aggregated node-degree samples — Fig. 2(a)/(d) feed."""
        return self._strided_samples("degrees", (r,), every)

    def diameter_array(self, r: float, every: int = 1) -> np.ndarray:
        """Per-snapshot largest-component diameters."""
        return self._strided_samples("diameters", (r,), every)

    def clustering_array(self, r: float, every: int = 1) -> np.ndarray:
        """Per-snapshot mean clustering coefficients."""
        return self._strided_samples("clustering", (r,), every)


class ShardedAnalyzer(BoundaryMergeAnalyzer):
    """Fan contact/session/zone/graph extraction across time shards.

    Usually reached through ``TraceAnalyzer(trace, shards=k)``; use it
    directly when only the raw merged extractions are needed.

    Parameters
    ----------
    trace:
        The (non-empty) trace to analyze.
    shards:
        Number of contiguous time windows to fan over.  Purely a
        performance knob: merges reproduce the unsharded results
        exactly at any count (empty shards are dropped).
    max_workers:
        Pool cap; defaults to one worker per non-empty shard, bounded
        by the CPU count.
    backend:
        ``"thread"`` — a ``ThreadPoolExecutor`` over in-memory shard
        views; no start-up cost, and the run-length extraction kernels
        are numpy-bound so shards overlap despite the GIL.
        ``"process"`` — per-shard ``.rtrc`` files
        (materialized lazily into a private temp dir) analyzed by a
        ``spawn``-based ``ProcessPoolExecutor`` whose workers
        memmap-load their own shard; real multi-core scaling at the
        cost of worker spawn and the one-time shard write.
        ``"network"`` — the same shard files served over an HTTP
        coordinator (:mod:`repro.distributed`) to ``slmob worker``
        processes, possibly on other machines; slow or dead workers'
        tasks are re-dispatched, and results stay bit-identical.
    network:
        Optional :class:`~repro.distributed.NetworkOptions` for the
        network backend (bind address, spawned local workers, task
        deadline); ignored by the other backends.

    Results are cached like :class:`~repro.core.analyzer.TraceAnalyzer`
    caches its extractions.

    Lifecycle
    ---------
    The process backend owns two lazy resources — the per-shard
    ``.rtrc`` files and a persistent worker pool (spawning workers is
    much more expensive than a thread pool, so it is reused across
    analyses).  Both are released by :meth:`close` (also available as
    a context manager) and, as a backstop, by garbage collection.
    After ``close()`` cached results stay readable but new analyses
    raise — nothing resurrects the pool silently.
    """

    def __init__(
        self,
        trace: Trace,
        shards: int,
        max_workers: int | None = None,
        backend: str = "thread",
        network: object | None = None,
    ) -> None:
        if trace.is_empty:
            raise ValueError("cannot analyze an empty trace")
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        super().__init__()
        self.trace = trace
        self.metadata = trace.metadata
        self.backend = backend
        self.shards = [s for s in split_time_shards(trace, shards) if len(s)]
        self.shard_count = shards
        self._label = "sharded analyzer"
        self._max_workers = max_workers or min(
            len(self.shards), os.cpu_count() or 1
        )
        self._scheduler = PartScheduler(
            backend,
            self._max_workers,
            file_prefix="shard",
            error_cls=ShardAnalysisError,
            network=network,
        )

    # -- lifecycle ---------------------------------------------------------

    def _release(self) -> None:
        """Shut down the worker pool and delete the shard files."""
        self._scheduler.close()

    # -- execution ---------------------------------------------------------

    def _map(self, kind: str, params_per_shard: Sequence[tuple]) -> list[object]:
        """One task per non-empty shard, results in shard order.

        Worker failures are re-raised as :class:`ShardAnalysisError`
        naming the failing shard's time range (the original exception
        rides along as ``__cause__``).  A broken process pool is
        discarded, so the analyzer stays usable after a worker death.
        A single non-empty shard runs inline on either backend — no
        spawn or shard-file overhead for zero available parallelism.
        """
        self._check_open()
        return self._scheduler.run(
            kind,
            list(enumerate(params_per_shard)),
            part_trace=lambda index: self.shards[index],
            names=lambda: self._names,
            wrap_error=self._shard_error,
        )

    def _shard_error(
        self, index: int, kind: str, exc: Exception
    ) -> ShardAnalysisError:
        shard = self.shards[index]
        return ShardAnalysisError(
            f"{kind} failed on shard {index + 1}/{len(self.shards)} covering "
            f"t=[{shard.start_time:g}, {shard.end_time:g}] "
            f"({len(shard)} snapshots): {exc}"
        )

    @property
    def _names(self) -> list[str]:
        return self.trace.columns.users.names

    # -- partition geometry ------------------------------------------------

    def _part_first_times(self) -> list[float]:
        return [s.start_time for s in self.shards]

    def _part_lengths(self) -> list[int]:
        return [len(s) for s in self.shards]
