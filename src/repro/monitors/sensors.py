"""The in-world sensor network — the architecture the paper rejects.

Virtual sensors are scripted objects with the platform limits §2
documents, all of which are modeled:

==========================  ==========================================
Limit                        Model
==========================  ==========================================
96 m sensing range           ``SENSING_RANGE``
16 avatars per scan          ``MAX_DETECTIONS`` (nearest first, like
                             ``llSensor``)
16 KB local cache            ``CACHE_BYTES`` / ``record_bytes`` rows;
                             overflowing scans are dropped
HTTP message restrictions    flushes go through a rate-limited
                             :class:`~repro.monitors.webserver.WebServer`
                             with a bounded request body
object expiry on public      sensors die after ``land.object_lifetime``
lands                        and are re-rezzed every
                             ``replication_interval``
no deployment on private     :func:`repro.metaverse.objects.deploy`
lands                        raises ``DeploymentError``
==========================  ==========================================

The resulting trace is *partial* — exactly why the authors abandoned
this architecture — and the A3 ablation quantifies the loss against
ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry import Position, distance
from repro.metaverse import World
from repro.metaverse.objects import ScriptedObject, deploy
from repro.monitors.base import Monitor
from repro.monitors.database import TraceDatabase
from repro.monitors.webserver import WebServer
from repro.trace import PositionRecord, Trace, TraceMetadata

#: LSL sensor range limit, meters.
SENSING_RANGE = 96.0

#: LSL sensor detection cap per scan.
MAX_DETECTIONS = 16

#: Script memory available for caching records, bytes.
CACHE_BYTES = 16 * 1024

#: Approximate serialized size of one observation, bytes
#: (timestamp + avatar key + three coordinates).
RECORD_BYTES = 40


@dataclass
class VirtualSensor:
    """One deployed scripted sensor."""

    sensor_id: str
    position: Position
    created_at: float
    cache: list[PositionRecord] = field(default_factory=list)
    dropped_records: int = 0

    @property
    def cache_capacity(self) -> int:
        """How many records fit in script memory."""
        return CACHE_BYTES // RECORD_BYTES

    @property
    def cache_full(self) -> bool:
        """True when another record would exceed the 16 KB budget."""
        return len(self.cache) >= self.cache_capacity

    def scan(self, world: World) -> list[PositionRecord]:
        """One ``llSensor`` sweep: nearest avatars within range, capped.

        Only regular avatars are sensed; monitor-controlled observers
        (the crawler) are filtered the way the authors filtered their
        own avatar.
        """
        in_range = [
            (distance(self.position, pos), user, pos)
            for user, pos in world.snapshot_positions().items()
            if distance(self.position, pos) <= SENSING_RANGE
        ]
        in_range.sort(key=lambda item: (item[0], item[1]))
        now = world.now
        return [
            PositionRecord(now, user, pos.x, pos.y, pos.z)
            for _d, user, pos in in_range[:MAX_DETECTIONS]
        ]

    def store(self, records: list[PositionRecord]) -> None:
        """Append scan results, dropping whatever exceeds the cache."""
        room = self.cache_capacity - len(self.cache)
        self.cache.extend(records[:room])
        if len(records) > room:
            self.dropped_records += len(records) - room


class SensorNetwork(Monitor):
    """A grid of virtual sensors plus their web-server data path.

    Parameters
    ----------
    tau:
        Scan period of every sensor, seconds.
    spacing:
        Grid pitch in meters.  The default (96 m) leaves coverage gaps
        in the corners — precisely the paper's "covering an entire
        land is challenging"; lower it to overlap discs.
    webserver:
        The flush sink; rate limits apply there.
    replication_interval:
        How often expired sensors are re-rezzed, seconds.
    """

    def __init__(
        self,
        tau: float = 10.0,
        spacing: float = SENSING_RANGE,
        webserver: WebServer | None = None,
        replication_interval: float = 600.0,
        name: str = "sensor-network",
    ) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        if replication_interval <= 0:
            raise ValueError(
                f"replication interval must be positive, got {replication_interval}"
            )
        self.tau = float(tau)
        self.spacing = float(spacing)
        self.webserver = webserver or WebServer()
        self.replication_interval = float(replication_interval)
        self.name = name
        self.sensors: list[VirtualSensor] = []
        self._db: TraceDatabase | None = None
        self._next_sample = float("inf")
        self._next_replication = float("inf")
        self._land_lifetime = float("inf")
        self._expired_since: dict[str, float] = {}

    # -- deployment -------------------------------------------------------

    def attach(self, world: World) -> None:
        """Rez the sensor grid (policy permitting) and start scanning."""
        land = world.land
        self._db = TraceDatabase(
            TraceMetadata(
                land_name=land.name,
                width=land.width,
                height=land.height,
                tau=self.tau,
                source="sensor-network",
            )
        )
        self.sensors = []
        cols = max(1, math.ceil(land.width / self.spacing))
        rows = max(1, math.ceil(land.height / self.spacing))
        for row in range(rows):
            for col in range(cols):
                position = Position(
                    min((col + 0.5) * self.spacing, land.width),
                    min((row + 0.5) * self.spacing, land.height),
                )
                # deploy() raises DeploymentError on private lands —
                # the limitation that motivated the crawler.
                deploy(
                    land,
                    ScriptedObject(position=position, owner=self.name, created_at=world.now),
                )
                self.sensors.append(
                    VirtualSensor(
                        sensor_id=f"{self.name}-{row:02d}-{col:02d}",
                        position=position,
                        created_at=world.now,
                    )
                )
        self._land_lifetime = (
            land.object_lifetime if land.policy.objects_expire else float("inf")
        )
        self._next_sample = world.now + self.tau
        self._next_replication = world.now + self.replication_interval

    def detach(self, world: World) -> None:
        """Final flush of every cache, then de-rez."""
        if self._db is not None:
            for sensor in self.sensors:
                self._flush(sensor, world.now, force=True)
        self._next_sample = float("inf")

    # -- scanning -----------------------------------------------------------

    def next_sample_time(self) -> float:
        return self._next_sample

    def collect(self, world: World) -> None:
        """One scan cycle across the grid, plus expiry/replication."""
        assert self._db is not None, "collect before attach"
        now = world.now
        if now >= self._next_replication:
            self._replicate(now)
            self._next_replication = now + self.replication_interval
        for sensor in self.sensors:
            if self._is_expired(sensor, now):
                self._expired_since.setdefault(sensor.sensor_id, now)
                continue
            sensor.store(sensor.scan(world))
            if sensor.cache_full:
                self._flush(sensor, now)
        self._next_sample += self.tau

    def _is_expired(self, sensor: VirtualSensor, now: float) -> bool:
        return now - sensor.created_at >= self._land_lifetime

    def _replicate(self, now: float) -> None:
        """Re-rez expired sensors in place (the paper's workaround)."""
        for sensor in self.sensors:
            if self._is_expired(sensor, now):
                # The object is re-created: fresh lifetime, empty script
                # memory.  Anything still cached died with the object.
                sensor.dropped_records += len(sensor.cache)
                sensor.cache.clear()
                sensor.created_at = now
                self._expired_since.pop(sensor.sensor_id, None)

    def _flush(self, sensor: VirtualSensor, now: float, force: bool = False) -> None:
        """Move cached records to the web server, request by request."""
        assert self._db is not None
        per_request = self.webserver.max_records_per_request(RECORD_BYTES)
        while sensor.cache:
            batch = sensor.cache[:per_request]
            if not self.webserver.try_request(now, len(batch)):
                if force:
                    # Detaching: the object is deleted, the data is gone.
                    sensor.dropped_records += len(sensor.cache)
                    sensor.cache.clear()
                return
            for record in batch:
                self._db.add_record(record)
            del sensor.cache[:len(batch)]

    # -- results ----------------------------------------------------------------

    def trace(self) -> Trace:
        """Everything that made it through the data path."""
        if self._db is None:
            raise RuntimeError("sensor network never attached; no trace available")
        return self._db.to_trace()

    @property
    def total_dropped_records(self) -> int:
        """Observations lost to cache overflow, expiry, or final-flush throttling."""
        return sum(sensor.dropped_records for sensor in self.sensors)

    def coverage_fraction(self, land_width: float, land_height: float, grid: int = 64) -> float:
        """Fraction of the land within range of a live sensor.

        Monte-Carlo-free estimate on a regular lattice; used by the
        architecture ablation to report geometric coverage.
        """
        if not self.sensors:
            return 0.0
        covered = 0
        total = 0
        for i in range(grid):
            for j in range(grid):
                x = (i + 0.5) * land_width / grid
                y = (j + 0.5) * land_height / grid
                total += 1
                point = Position(x, y)
                if any(
                    distance(point, sensor.position) <= SENSING_RANGE
                    for sensor in self.sensors
                ):
                    covered += 1
        return covered / total

    def monitor(self, world: World, duration: float) -> Trace:
        """Attach, run ``duration`` seconds of world time, detach, return trace."""
        from repro.monitors.base import run_monitors

        run_monitors(world, [self], duration)
        return self.trace()
