"""The in-world sensor network — the architecture the paper rejects.

Virtual sensors are scripted objects with the platform limits §2
documents, all of which are modeled:

==========================  ==========================================
Limit                        Model
==========================  ==========================================
96 m sensing range           ``SENSING_RANGE``
16 avatars per scan          ``MAX_DETECTIONS`` (nearest first, like
                             ``llSensor``)
16 KB local cache            ``CACHE_BYTES`` / ``record_bytes`` rows;
                             overflowing scans are dropped
HTTP message restrictions    flushes go through a rate-limited
                             :class:`~repro.monitors.webserver.WebServer`
                             with a bounded request body
object expiry on public      sensors die after ``land.object_lifetime``
lands                        and are re-rezzed every
                             ``replication_interval``
no deployment on private     :func:`repro.metaverse.objects.deploy`
lands                        raises ``DeploymentError``
==========================  ==========================================

The resulting trace is *partial* — exactly why the authors abandoned
this architecture — and the A3 ablation quantifies the loss against
ground truth.

Detection channels
------------------

By default a sensor detects every avatar inside the hard
``SENSING_RANGE`` disc, deterministically (the LSL behaviour).  A
:class:`PathLossModel` channel replaces the disc with a *probabilistic*
radio link: detection probability decays with distance following a
log-distance path-loss law with log-normal shadowing (the RMa rural-
macrocell idiom), so nearby avatars are occasionally missed and
distant ones occasionally caught.  With ``shadowing_sigma = 0`` the
channel degenerates exactly to the hard radius, which is how the
sensor-bias ablations anchor the lossy runs against the classic ones.

Channel randomness is drawn from the network's own seeded generator
(``SensorNetwork(seed=...)``), never from global state, so sensor
traces stay bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Position, distance
from repro.metaverse import World
from repro.metaverse.objects import ScriptedObject, deploy
from repro.monitors.base import Monitor
from repro.monitors.database import TraceDatabase
from repro.monitors.webserver import WebServer
from repro.trace import PositionRecord, Trace, TraceMetadata

#: LSL sensor range limit, meters.
SENSING_RANGE = 96.0

#: LSL sensor detection cap per scan.
MAX_DETECTIONS = 16

#: Script memory available for caching records, bytes.
CACHE_BYTES = 16 * 1024

#: Approximate serialized size of one observation, bytes
#: (timestamp + avatar key + three coordinates).
RECORD_BYTES = 40


def _standard_normal_cdf(x: float) -> float:
    """Phi(x) via the error function (no scipy dependency)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path-loss detection channel with shadowing.

    The link margin at distance ``d`` (meters) is the path-loss gap to
    the distance where detection is coin-flip likely::

        margin_dB(d) = 10 * exponent * log10(reference_range / d)

    and log-normal shadowing turns the margin into a detection
    probability ``Phi(margin_dB / shadowing_sigma)`` — the standard
    cell-edge coverage expression behind the RMa rural-macro model.
    The probability is 1 at ``d = 0``, exactly 0.5 at
    ``reference_range``, and non-increasing in distance.

    Parameters
    ----------
    reference_range:
        Distance at which detection probability is 0.5, meters.
        Defaults to the LSL ``SENSING_RANGE`` so lossy runs stay
        comparable to the hard-radius ones.
    exponent:
        Path-loss exponent ``n`` (2 = free space; RMa non-line-of-
        sight fits are around 3).
    shadowing_sigma:
        Shadow-fading standard deviation, dB.  ``0`` degenerates to
        the deterministic hard radius (probability 1 inside
        ``reference_range``, 0 outside) and consumes no randomness.
    floor:
        Probabilities below this are treated as 0, bounding the scan
        radius (:attr:`cutoff_range`).
    """

    reference_range: float = SENSING_RANGE
    exponent: float = 3.0
    shadowing_sigma: float = 6.0
    floor: float = 1e-3

    def __post_init__(self) -> None:
        if self.reference_range <= 0:
            raise ValueError(
                f"reference range must be positive, got {self.reference_range}"
            )
        if self.exponent <= 0:
            raise ValueError(f"exponent must be positive, got {self.exponent}")
        if self.shadowing_sigma < 0:
            raise ValueError(
                f"shadowing sigma must be non-negative, got {self.shadowing_sigma}"
            )
        if not 0.0 < self.floor < 0.5:
            raise ValueError(f"floor must be in (0, 0.5), got {self.floor}")

    def detection_probability(self, d: float) -> float:
        """Probability that one scan detects an avatar at distance ``d``."""
        if d <= 0.0:
            return 1.0
        if self.shadowing_sigma == 0.0:
            return 1.0 if d <= self.reference_range else 0.0
        margin_db = 10.0 * self.exponent * math.log10(self.reference_range / d)
        p = _standard_normal_cdf(margin_db / self.shadowing_sigma)
        return p if p >= self.floor else 0.0

    @property
    def cutoff_range(self) -> float:
        """Distance beyond which detection probability is below ``floor``.

        Scans only consider avatars inside this radius; everything
        further is undetectable by construction.
        """
        if self.shadowing_sigma == 0.0:
            return self.reference_range
        # Invert Phi(margin / sigma) = floor by bisecting the margin:
        # Phi is strictly increasing, so the bracket [-40, 0] dB covers
        # every floor in (0, 0.5).
        lo, hi = -40.0 * max(1.0, self.shadowing_sigma), 0.0
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if _standard_normal_cdf(mid / self.shadowing_sigma) < self.floor:
                lo = mid
            else:
                hi = mid
        margin_db = lo
        return self.reference_range * 10.0 ** (-margin_db / (10.0 * self.exponent))


@dataclass
class VirtualSensor:
    """One deployed scripted sensor."""

    sensor_id: str
    position: Position
    created_at: float
    cache: list[PositionRecord] = field(default_factory=list)
    dropped_records: int = 0

    @property
    def cache_capacity(self) -> int:
        """How many records fit in script memory."""
        return CACHE_BYTES // RECORD_BYTES

    @property
    def cache_full(self) -> bool:
        """True when another record would exceed the 16 KB budget."""
        return len(self.cache) >= self.cache_capacity

    def scan(
        self,
        world: World,
        channel: PathLossModel | None = None,
        rng=None,
    ) -> list[PositionRecord]:
        """One ``llSensor`` sweep: nearest avatars within range, capped.

        Without a ``channel`` the sweep is the deterministic hard-
        radius LSL behaviour.  With a :class:`PathLossModel`, each
        avatar inside the channel's :attr:`~PathLossModel.cutoff_range`
        is detected independently with
        :meth:`~PathLossModel.detection_probability`; Bernoulli draws
        come from ``rng`` (required unless the channel is degenerate),
        in the deterministic iteration order of the world snapshot.
        The 16-detection nearest-first cap applies either way.

        Only regular avatars are sensed; monitor-controlled observers
        (the crawler) are filtered the way the authors filtered their
        own avatar.
        """
        detected = []
        for user, pos in world.snapshot_positions().items():
            d = distance(self.position, pos)
            if channel is None:
                if d > SENSING_RANGE:
                    continue
            else:
                p = channel.detection_probability(d)
                if p <= 0.0:
                    continue
                if p < 1.0:
                    if rng is None:
                        raise ValueError(
                            "a probabilistic path-loss channel needs an rng"
                        )
                    if rng.random() >= p:
                        continue
            detected.append((d, user, pos))
        detected.sort(key=lambda item: (item[0], item[1]))
        now = world.now
        return [
            PositionRecord(now, user, pos.x, pos.y, pos.z)
            for _d, user, pos in detected[:MAX_DETECTIONS]
        ]

    def store(self, records: list[PositionRecord]) -> None:
        """Append scan results, dropping whatever exceeds the cache."""
        room = self.cache_capacity - len(self.cache)
        self.cache.extend(records[:room])
        if len(records) > room:
            self.dropped_records += len(records) - room


class SensorNetwork(Monitor):
    """A grid of virtual sensors plus their web-server data path.

    Parameters
    ----------
    tau:
        Scan period of every sensor, seconds.
    spacing:
        Grid pitch in meters.  The default (96 m) leaves coverage gaps
        in the corners — precisely the paper's "covering an entire
        land is challenging"; lower it to overlap discs.
    webserver:
        The flush sink; rate limits apply there.
    replication_interval:
        How often expired sensors are re-rezzed, seconds.
    channel:
        Optional :class:`PathLossModel` detection channel.  ``None``
        (the default) keeps the deterministic hard-radius scan.
    seed:
        Seed for the channel's Bernoulli detection draws.  Traces are
        bit-reproducible given (world seed, sensor seed); unused
        without a probabilistic channel.
    """

    def __init__(
        self,
        tau: float = 10.0,
        spacing: float = SENSING_RANGE,
        webserver: WebServer | None = None,
        replication_interval: float = 600.0,
        name: str = "sensor-network",
        channel: PathLossModel | None = None,
        seed: int = 0,
    ) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        if replication_interval <= 0:
            raise ValueError(
                f"replication interval must be positive, got {replication_interval}"
            )
        self.tau = float(tau)
        self.spacing = float(spacing)
        self.webserver = webserver or WebServer()
        self.replication_interval = float(replication_interval)
        self.name = name
        self.channel = channel
        self.seed = int(seed)
        self._rng = None
        self.sensors: list[VirtualSensor] = []
        self._db: TraceDatabase | None = None
        self._next_sample = float("inf")
        self._next_replication = float("inf")
        self._land_lifetime = float("inf")
        self._expired_since: dict[str, float] = {}

    # -- deployment -------------------------------------------------------

    def attach(self, world: World) -> None:
        """Rez the sensor grid (policy permitting) and start scanning."""
        land = world.land
        self._db = TraceDatabase(
            TraceMetadata(
                land_name=land.name,
                width=land.width,
                height=land.height,
                tau=self.tau,
                source="sensor-network",
            )
        )
        self.sensors = []
        cols = max(1, math.ceil(land.width / self.spacing))
        rows = max(1, math.ceil(land.height / self.spacing))
        for row in range(rows):
            for col in range(cols):
                position = Position(
                    min((col + 0.5) * self.spacing, land.width),
                    min((row + 0.5) * self.spacing, land.height),
                )
                # deploy() raises DeploymentError on private lands —
                # the limitation that motivated the crawler.
                deploy(
                    land,
                    ScriptedObject(position=position, owner=self.name, created_at=world.now),
                )
                self.sensors.append(
                    VirtualSensor(
                        sensor_id=f"{self.name}-{row:02d}-{col:02d}",
                        position=position,
                        created_at=world.now,
                    )
                )
        self._land_lifetime = (
            land.object_lifetime if land.policy.objects_expire else float("inf")
        )
        # Fresh generator per attach: re-running the same network over
        # a re-built world reproduces the same detection draws.
        self._rng = np.random.default_rng(self.seed)
        self._next_sample = world.now + self.tau
        self._next_replication = world.now + self.replication_interval

    def detach(self, world: World) -> None:
        """Final flush of every cache, then de-rez."""
        if self._db is not None:
            for sensor in self.sensors:
                self._flush(sensor, world.now, force=True)
        self._next_sample = float("inf")

    # -- scanning -----------------------------------------------------------

    def next_sample_time(self) -> float:
        return self._next_sample

    def collect(self, world: World) -> None:
        """One scan cycle across the grid, plus expiry/replication."""
        assert self._db is not None, "collect before attach"
        now = world.now
        if now >= self._next_replication:
            self._replicate(now)
            self._next_replication = now + self.replication_interval
        for sensor in self.sensors:
            if self._is_expired(sensor, now):
                self._expired_since.setdefault(sensor.sensor_id, now)
                continue
            sensor.store(sensor.scan(world, self.channel, self._rng))
            if sensor.cache_full:
                self._flush(sensor, now)
        self._next_sample += self.tau

    def _is_expired(self, sensor: VirtualSensor, now: float) -> bool:
        return now - sensor.created_at >= self._land_lifetime

    def _replicate(self, now: float) -> None:
        """Re-rez expired sensors in place (the paper's workaround)."""
        for sensor in self.sensors:
            if self._is_expired(sensor, now):
                # The object is re-created: fresh lifetime, empty script
                # memory.  Anything still cached died with the object.
                sensor.dropped_records += len(sensor.cache)
                sensor.cache.clear()
                sensor.created_at = now
                self._expired_since.pop(sensor.sensor_id, None)

    def _flush(self, sensor: VirtualSensor, now: float, force: bool = False) -> None:
        """Move cached records to the web server, request by request."""
        assert self._db is not None
        per_request = self.webserver.max_records_per_request(RECORD_BYTES)
        while sensor.cache:
            batch = sensor.cache[:per_request]
            if not self.webserver.try_request(now, len(batch)):
                if force:
                    # Detaching: the object is deleted, the data is gone.
                    sensor.dropped_records += len(sensor.cache)
                    sensor.cache.clear()
                return
            for record in batch:
                self._db.add_record(record)
            del sensor.cache[:len(batch)]

    # -- results ----------------------------------------------------------------

    def trace(self) -> Trace:
        """Everything that made it through the data path."""
        if self._db is None:
            raise RuntimeError("sensor network never attached; no trace available")
        return self._db.to_trace()

    @property
    def total_dropped_records(self) -> int:
        """Observations lost to cache overflow, expiry, or final-flush throttling."""
        return sum(sensor.dropped_records for sensor in self.sensors)

    def coverage_fraction(self, land_width: float, land_height: float, grid: int = 64) -> float:
        """Fraction of the land within range of a live sensor.

        Monte-Carlo-free estimate on a regular lattice; used by the
        architecture ablation to report geometric coverage.
        """
        if not self.sensors:
            return 0.0
        covered = 0
        total = 0
        for i in range(grid):
            for j in range(grid):
                x = (i + 0.5) * land_width / grid
                y = (j + 0.5) * land_height / grid
                total += 1
                point = Position(x, y)
                if any(
                    distance(point, sensor.position) <= SENSING_RANGE
                    for sensor in self.sensors
                ):
                    covered += 1
        return covered / total

    def monitor(self, world: World, duration: float) -> Trace:
        """Attach, run ``duration`` seconds of world time, detach, return trace."""
        from repro.monitors.base import run_monitors

        run_monitors(world, [self], duration)
        return self.trace()
