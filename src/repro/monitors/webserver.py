"""The external web server sensors flush to.

Per §2 of the paper, two platform limits throttle the sensor
architecture's data path:

* an LSL HTTP request carries a bounded body, so one flush moves only
  a slice of a full cache;
* "the number of HTTP messages that can be exchanged between sensors
  and the web server is restricted by the SL infrastructure", modeled
  as a sliding-window request budget.

The web server tracks accepted/rejected requests so experiments can
quantify exactly how much data the rejected architecture loses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: LSL ``llHTTPRequest`` body limit, bytes.
HTTP_BODY_LIMIT = 2048


@dataclass
class WebServerStats:
    """Counters for the sensor data path."""

    accepted_requests: int = 0
    rejected_requests: int = 0
    records_received: int = 0


@dataclass
class WebServer:
    """Rate-limited HTTP sink for sensor flushes.

    Parameters
    ----------
    max_requests_per_minute:
        Global request budget over a sliding 60 s window (the SL
        infrastructure limit).
    body_limit_bytes:
        Maximum payload per request.
    """

    max_requests_per_minute: int = 60
    body_limit_bytes: int = HTTP_BODY_LIMIT
    stats: WebServerStats = field(default_factory=WebServerStats)
    _window: deque[float] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.max_requests_per_minute < 1:
            raise ValueError(
                f"request budget must be >= 1, got {self.max_requests_per_minute}"
            )
        if self.body_limit_bytes < 1:
            raise ValueError(f"body limit must be >= 1, got {self.body_limit_bytes}")

    def max_records_per_request(self, record_bytes: int) -> int:
        """How many records fit into one request body."""
        if record_bytes < 1:
            raise ValueError(f"record size must be >= 1 byte, got {record_bytes}")
        return max(1, self.body_limit_bytes // record_bytes)

    def _evict(self, now: float) -> None:
        """Drop window entries older than 60 s as of ``now``."""
        while self._window and self._window[0] <= now - 60.0:
            self._window.popleft()

    def try_request(self, now: float, record_count: int) -> bool:
        """Attempt one HTTP POST carrying ``record_count`` records.

        Returns True (and accounts for the request) when the sliding
        window has budget left; False when the request is throttled.
        """
        self._evict(now)
        if len(self._window) >= self.max_requests_per_minute:
            self.stats.rejected_requests += 1
            return False
        self._window.append(now)
        self.stats.accepted_requests += 1
        self.stats.records_received += record_count
        return True

    def requests_in_window(self, now: float) -> int:
        """Requests still inside the sliding window at time ``now``.

        Expired entries are evicted first — without the eviction an
        idle server would keep reporting a full window forever, since
        only :meth:`try_request` used to trim it.
        """
        self._evict(now)
        return len(self._window)
