"""WLAN-style association monitoring (the IMPACT observable).

Campus wireless traces (Hsu & Helmy's IMPACT datasets) never see a
user's coordinates — they see which *access point* the user's device
is associated with, at syslog/SNMP granularity.  This monitor
reproduces that observable over a simulated world: every ``tau``
seconds each avatar within ``association_range`` of some AP is
recorded at that AP's coordinates (nearest AP wins, i.e. ideal
strongest-signal association); avatars out of range of every AP are
simply absent from the snapshot, exactly like a device that
disassociated.

The result is a trace whose positions are drawn from a *discrete* set
of a few hundred points, so the zone-occupation machinery becomes an
AP-popularity histogram and session extraction recovers
association/disassociation episodes — a fundamentally different
geometry from the continuous Second Life traces, exercised through
the same :class:`~repro.monitors.database.TraceDatabase` → analyzer
path.

The monitor itself draws no randomness, so its output is a pure
function of the world realization: a streamed crawl (``sink=``) and a
buffered simulate over the same world seed are bit-for-bit identical
— the PR 4 invariant.
"""

from __future__ import annotations

import numpy as np

from repro.metaverse import World
from repro.monitors.base import Monitor
from repro.monitors.database import TraceDatabase
from repro.trace import Snapshot, Trace, TraceMetadata

#: Default WLAN cell radius, meters — the range within which a device
#: associates with an AP at all.
ASSOCIATION_RANGE = 50.0


class AssociationMonitor(Monitor):
    """Observes nearest-AP associations instead of coordinates.

    Parameters
    ----------
    access_points:
        ``(ap_count, 2)``-shaped array-like of AP ``(x, y)``
        coordinates, meters.  Order is the tie-break: among equidistant
        APs the lowest index wins.
    tau:
        Polling period, seconds (syslog/SNMP cadence).
    association_range:
        Maximum avatar–AP distance for an association, meters.
    sink:
        Optional streaming target (an
        :class:`~repro.trace.RtrcAppender`-shaped object).  With a
        sink the monitor is non-buffering: snapshots go to disk as
        they are taken and :meth:`trace` is unavailable — follow the
        sink's store instead.
    """

    def __init__(
        self,
        access_points,
        tau: float = 10.0,
        association_range: float = ASSOCIATION_RANGE,
        name: str = "wlan-association",
        sink=None,
    ) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if association_range <= 0:
            raise ValueError(
                f"association range must be positive, got {association_range}"
            )
        aps = np.asarray(access_points, dtype=np.float64)
        if aps.ndim != 2 or aps.shape[1] != 2 or len(aps) == 0:
            raise ValueError(
                f"access_points must be a non-empty (n, 2) array, got shape {aps.shape}"
            )
        self.access_points = aps
        self.tau = float(tau)
        self.association_range = float(association_range)
        self.name = name
        self.sink = sink
        self._db: TraceDatabase | None = None
        self._next_sample = float("inf")

    def attach(self, world: World) -> None:
        metadata = TraceMetadata(
            land_name=world.land.name,
            width=world.land.width,
            height=world.land.height,
            tau=self.tau,
            source=self.name,
        )
        if self.sink is not None:
            self.sink.metadata = metadata
        self._db = TraceDatabase(
            metadata, sink=self.sink, buffer=self.sink is None
        )
        self._next_sample = world.now + self.tau

    def detach(self, world: World) -> None:
        self._next_sample = float("inf")

    def next_sample_time(self) -> float:
        return self._next_sample

    def collect(self, world: World) -> None:
        """One association poll: snap each in-range avatar to its AP."""
        assert self._db is not None, "collect before attach"
        names, coords = world.snapshot_arrays()
        associated_names, ap_coords = self.associate(names, coords)
        self._db.add_snapshot(
            Snapshot.from_arrays(world.now, associated_names, ap_coords)
        )
        self._next_sample += self.tau

    def associate(
        self, names: list[str], coords: np.ndarray
    ) -> tuple[list[str], np.ndarray]:
        """Map avatar coordinates to AP coordinates, dropping roamers.

        Returns the associated user names and an ``(m, 3)`` block of
        their APs' coordinates (z = 0).  Vectorized over the full
        avatar × AP distance matrix — a few hundred APs by a few
        hundred avatars stays tiny.
        """
        if len(names) == 0:
            return [], np.empty((0, 3), dtype=np.float64)
        deltas = coords[:, None, :2] - self.access_points[None, :, :]
        squared = np.einsum("uak,uak->ua", deltas, deltas)
        nearest = np.argmin(squared, axis=1)
        rows = np.arange(len(names))
        in_range = (
            squared[rows, nearest] <= self.association_range * self.association_range
        )
        kept = np.flatnonzero(in_range)
        out = np.zeros((len(kept), 3), dtype=np.float64)
        out[:, :2] = self.access_points[nearest[kept]]
        return [names[i] for i in kept], out

    def trace(self) -> Trace:
        if self._db is None:
            raise RuntimeError("monitor never attached; no trace available")
        return self._db.to_trace()

    def monitor(self, world: World, duration: float) -> Trace:
        """Attach, run ``duration`` seconds of world time, detach, return trace."""
        from repro.monitors.base import run_monitors

        run_monitors(world, [self], duration)
        return self.trace()
