"""The two monitoring architectures of §2 of the paper.

* :class:`~repro.monitors.crawler.Crawler` — the architecture the
  paper adopts: a headless client that logs in as a regular user and
  extracts the position of *every* avatar on the land at a fixed
  period τ.  Supports the paper's mimicry counter-measure (random
  movement + canned chat) against the avatar-attraction perturbation.
* :class:`~repro.monitors.sensors.SensorNetwork` — the architecture
  the paper rejects: scripted in-world objects with a 96 m sensing
  range, a 16-avatar detection cap, 16 KB of local cache and
  rate-limited HTTP flushes, expiring on public lands.

Both produce a :class:`~repro.trace.Trace` through a
:class:`~repro.monitors.database.TraceDatabase`, and both can run
simultaneously on one world via :func:`~repro.monitors.base.run_monitors`
so their fidelity can be compared against ground truth
(:class:`~repro.monitors.base.GroundTruthMonitor`).
"""

from repro.monitors.base import (
    GroundTruthMonitor,
    Monitor,
    run_monitors,
    stream_monitors,
)
from repro.monitors.database import TraceDatabase
from repro.monitors.webserver import WebServer
from repro.monitors.crawler import Crawler
from repro.monitors.sensors import PathLossModel, SensorNetwork, VirtualSensor
from repro.monitors.association import AssociationMonitor

__all__ = [
    "GroundTruthMonitor",
    "Monitor",
    "run_monitors",
    "stream_monitors",
    "TraceDatabase",
    "WebServer",
    "Crawler",
    "PathLossModel",
    "SensorNetwork",
    "VirtualSensor",
    "AssociationMonitor",
]
