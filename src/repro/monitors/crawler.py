"""The external crawler — the architecture the paper adopts.

Built on ``libsecondlife``, the authors' crawler logs in as a regular
user and uses the map feature to read the position of every avatar on
the land at period τ = 10 s.  Three behaviours from §2/§3 are
reproduced faithfully:

* **full coverage** — unlike sensors, the crawler sees the whole land
  and is "not confined by limitations imposed by private lands";
* **perturbation & mimicry** — a naive (silent, motionless) crawler
  attracts users and distorts the measurement; the mimicking crawler
  wanders randomly and broadcasts canned chat phrases, so users treat
  it as just another avatar;
* **instability** — "long experiments are sometimes affected by
  instabilities of libsecondlife"; an optional crash model produces
  the sampling gaps the trace validator flags.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Position
from repro.metaverse import Avatar, ChatMessage, World
from repro.mobility import RandomWaypoint, StaticModel
from repro.monitors.base import Monitor
from repro.monitors.database import TraceDatabase
from repro.trace import Snapshot, Trace, TraceMetadata
from repro.metaverse.chat import DEFAULT_PHRASES

#: The paper's snapshot period.
DEFAULT_TAU = 10.0


class Crawler(Monitor):
    """A headless SL client that snapshots every avatar on the land.

    Parameters
    ----------
    tau:
        Sampling period in seconds (τ = 10 s in the paper).
    mimic:
        When True (the paper's final design) the crawler's avatar
        wanders the land and chats, avoiding the attraction
        perturbation.  When False it stands silent in the middle of
        the land and *is* conspicuous.
    crash_probability:
        Chance per sample that the client crashes (libsecondlife
        instability).  Zero by default.
    restart_delay:
        Seconds a crashed client needs before sampling resumes.
    seed:
        Seed for the crawler's own RNG (chat phrase choice, crashes) —
        independent from the world's RNG so enabling mimicry does not
        change the world realization.
    name:
        The crawler avatar's user id on the land.
    sink:
        Optional :class:`~repro.trace.RtrcAppender` (or anything with
        its ``append_snapshot`` shape).  When given, the crawler runs
        in *streaming* mode: every snapshot goes to the sink as it is
        taken, nothing is buffered in RAM, and :meth:`trace` is
        unavailable — read the sink's growing ``.rtrc`` store instead
        (``slmob crawl`` follows it with a
        :class:`~repro.core.live.LiveAnalyzer`).  Committing the sink
        is the caller's choice of durability cadence.
    """

    def __init__(
        self,
        tau: float = DEFAULT_TAU,
        mimic: bool = True,
        crash_probability: float = 0.0,
        restart_delay: float = 120.0,
        chat_interval: float = 90.0,
        seed: int = 12061,
        name: str = "crawler",
        sink=None,
    ) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if not 0.0 <= crash_probability <= 1.0:
            raise ValueError(
                f"crash probability must be in [0, 1], got {crash_probability}"
            )
        if restart_delay <= 0:
            raise ValueError(f"restart delay must be positive, got {restart_delay}")
        if chat_interval <= 0:
            raise ValueError(f"chat interval must be positive, got {chat_interval}")
        self.tau = float(tau)
        self.mimic = bool(mimic)
        self.crash_probability = float(crash_probability)
        self.restart_delay = float(restart_delay)
        self.chat_interval = float(chat_interval)
        self.name = name
        self.sink = sink
        self._rng = np.random.default_rng(seed)
        self._db: TraceDatabase | None = None
        self._avatar: Avatar | None = None
        self._next_sample = float("inf")
        self._next_chat = 0.0
        self.crashes = 0

    # -- monitor interface ------------------------------------------------

    def attach(self, world: World) -> None:
        """Log in: embody the crawler avatar and start the sample clock."""
        land = world.land
        metadata = TraceMetadata(
            land_name=land.name,
            width=land.width,
            height=land.height,
            tau=self.tau,
            source="crawler-mimic" if self.mimic else "crawler-naive",
        )
        if self.sink is not None:
            # The sink learns the land only now; the metadata lands in
            # the store header at its next commit.
            self.sink.metadata = metadata
        self._db = TraceDatabase(
            metadata, sink=self.sink, buffer=self.sink is None
        )
        if self.mimic:
            model = RandomWaypoint(
                land.width, land.height, min_pause=10.0, max_pause=60.0
            )
        else:
            model = StaticModel(
                land.width,
                land.height,
                anchor=Position(land.width / 2.0, land.height / 2.0),
            )
        self._avatar = Avatar(
            user_id=self.name,
            model=model,
            position=model.initial_position(self._rng),
            login_time=world.now,
        )
        world.add_observer(self._avatar, conspicuous=not self.mimic)
        self._next_sample = world.now + self.tau
        self._next_chat = world.now + self.chat_interval

    def detach(self, world: World) -> None:
        """Log out and stop sampling."""
        if self._avatar is not None:
            world.remove_observer(self._avatar.user_id)
            self._avatar.logout()
            self._avatar = None
        self._next_sample = float("inf")

    def next_sample_time(self) -> float:
        return self._next_sample

    def collect(self, world: World) -> None:
        """Take one snapshot; possibly chat; possibly crash."""
        assert self._db is not None, "collect before attach"
        if self.crash_probability > 0.0 and self._rng.random() < self.crash_probability:
            # libsecondlife died; skip samples until the restart lands.
            self.crashes += 1
            missed = int(np.ceil(self.restart_delay / self.tau))
            self._next_sample += missed * self.tau
            return
        self._db.add_snapshot(
            Snapshot.from_arrays(world.now, *world.snapshot_arrays())
        )
        self._next_sample += self.tau
        if self.mimic and world.now >= self._next_chat and self._avatar is not None:
            phrase = DEFAULT_PHRASES[int(self._rng.integers(len(DEFAULT_PHRASES)))]
            world.chat.post(
                ChatMessage(world.now, self.name, phrase, self._avatar.position)
            )
            self._next_chat = world.now + self.chat_interval

    def trace(self) -> Trace:
        """The measurement so far (buffered mode only).

        A streaming crawler keeps nothing in RAM — load the sink's
        ``.rtrc`` store (or point a ``LiveAnalyzer`` at it) instead.
        """
        if self._db is None:
            raise RuntimeError("crawler never attached; no trace available")
        return self._db.to_trace()

    # -- convenience --------------------------------------------------------

    def monitor(self, world: World, duration: float) -> Trace:
        """Attach, run ``duration`` seconds of world time, detach, return trace."""
        from repro.monitors.base import run_monitors

        run_monitors(world, [self], duration)
        return self.trace()
