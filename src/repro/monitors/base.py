"""Monitor contract and the driver that runs monitors over a world.

A monitor never advances the world clock itself; the driver steps the
world and hands it to each monitor whenever that monitor's next sample
is due.  This lets several monitors (crawler, sensor network, ground
truth) observe the *same realization* of a world, which is how the
architecture-comparison ablation isolates measurement error from
stochastic variation.
"""

from __future__ import annotations

import abc

from repro.metaverse import World
from repro.trace import Snapshot, Trace, TraceMetadata
from repro.monitors.database import TraceDatabase


class Monitor(abc.ABC):
    """Something that periodically observes a world."""

    #: Sampling period in seconds (the paper's τ).
    tau: float

    @abc.abstractmethod
    def attach(self, world: World) -> None:
        """Set up presence on the land (deploy objects, embody avatars)."""

    @abc.abstractmethod
    def detach(self, world: World) -> None:
        """Tear down presence."""

    @abc.abstractmethod
    def next_sample_time(self) -> float:
        """Absolute world time of the next due sample (inf when done)."""

    @abc.abstractmethod
    def collect(self, world: World) -> None:
        """Take one sample from the world."""

    @abc.abstractmethod
    def trace(self) -> Trace:
        """Everything observed so far, as a trace."""


def _advance(world: World, monitors: list[Monitor], end: float) -> None:
    """Step the world to ``end``, sampling every due monitor."""
    while world.now < end - 1e-9:
        world.step()
        for monitor in monitors:
            while monitor.next_sample_time() <= world.now + 1e-9:
                monitor.collect(world)


def run_monitors(
    world: World,
    monitors: list[Monitor],
    duration: float,
) -> None:
    """Advance ``world`` by ``duration`` seconds, sampling on schedule.

    Monitors are attached before the first step and detached after the
    last; each monitor's own ``tau`` decides how often it samples.  A
    monitor whose ``next_sample_time`` returns ``inf`` (e.g. a crashed
    crawler waiting for restart) is simply skipped until it recovers.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    for monitor in monitors:
        monitor.attach(world)
    try:
        _advance(world, monitors, world.now + duration)
    finally:
        for monitor in monitors:
            monitor.detach(world)


def stream_monitors(
    world: World,
    monitors: list[Monitor],
    duration: float,
    round_seconds: float,
):
    """Run monitors in rounds, yielding the clock between rounds.

    The streaming counterpart of :func:`run_monitors`: the world
    advances ``round_seconds`` at a time and the generator yields
    ``world.now`` after each round, handing control back to the caller
    — the crawl loop uses the gap to commit its
    :class:`~repro.trace.RtrcAppender` sink and refresh a
    :class:`~repro.core.live.LiveAnalyzer`, so the trace on disk grows
    (and stays analyzable) while the measurement is still running.

    Monitors stay attached across rounds (one continuous measurement,
    not ``duration / round_seconds`` separate ones) and are detached
    when the generator finishes or is closed early.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if round_seconds <= 0:
        raise ValueError(f"round length must be positive, got {round_seconds}")
    for monitor in monitors:
        monitor.attach(world)
    end = world.now + duration
    try:
        while world.now < end - 1e-9:
            _advance(world, monitors, min(world.now + round_seconds, end))
            yield world.now
    finally:
        for monitor in monitors:
            monitor.detach(world)


class GroundTruthMonitor(Monitor):
    """Omniscient reference monitor.

    Reads the world state directly (no avatar, no platform limits, no
    perturbation) at a configurable period — usually the world tick, so
    its trace is the best observable approximation of the underlying
    motion.  Architecture ablations compare crawler and sensor output
    against it.

    Like :class:`~repro.monitors.crawler.Crawler`, an optional
    ``sink`` (an :class:`~repro.trace.RtrcAppender`) switches the
    monitor to streaming mode: samples go to disk as they are taken
    and :meth:`trace` is unavailable — follow the sink's file instead.
    """

    def __init__(
        self, tau: float = 1.0, name: str = "ground-truth", sink=None
    ) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self.name = name
        self.sink = sink
        self._db: TraceDatabase | None = None
        self._next_sample = float("inf")

    def attach(self, world: World) -> None:
        metadata = TraceMetadata(
            land_name=world.land.name,
            width=world.land.width,
            height=world.land.height,
            tau=self.tau,
            source=self.name,
        )
        if self.sink is not None:
            self.sink.metadata = metadata
        self._db = TraceDatabase(
            metadata, sink=self.sink, buffer=self.sink is None
        )
        self._next_sample = world.now + self.tau

    def detach(self, world: World) -> None:
        self._next_sample = float("inf")

    def next_sample_time(self) -> float:
        return self._next_sample

    def collect(self, world: World) -> None:
        assert self._db is not None, "collect before attach"
        self._db.add_snapshot(
            Snapshot.from_arrays(world.now, *world.snapshot_arrays())
        )
        self._next_sample += self.tau

    def trace(self) -> Trace:
        if self._db is None:
            raise RuntimeError("monitor never attached; no trace available")
        return self._db.to_trace()
