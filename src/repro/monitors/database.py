"""The measurement database.

The paper stores crawler output "in a database that can be queried
through an interactive web application".  This class is that database:
monitors write observations in, analysts pull a
:class:`~repro.trace.Trace` (or targeted queries) out.

Observations are deduplicated on ``(time, user)`` because overlapping
sensors legitimately report the same avatar twice; the first write
wins, matching an INSERT-IGNORE key constraint.

Streaming mode
--------------

The paper's crawler ran for *days*; holding every observation in the
write buffer does not scale to that.  Constructed with a ``sink`` (an
:class:`~repro.trace.RtrcAppender` or anything with its
``append_snapshot(time, names, coords)`` shape) and ``buffer=False``,
the database forwards each whole snapshot to the sink as it arrives
and retains only counters — the trace lives on disk, growing with the
crawl, and analysts follow it with
:class:`~repro.core.live.LiveAnalyzer` instead of calling
:meth:`TraceDatabase.to_trace`.  Per-record writes (the sensor-network
path, which needs cross-sensor dedup inside one timestamp) require the
buffer and are rejected in streaming mode.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Position
from pathlib import Path

from repro.trace import (
    ColumnarBuilder,
    PositionRecord,
    Snapshot,
    Trace,
    TraceMetadata,
    write_trace_rtrc,
)


class TraceDatabase:
    """Accumulates observations and materializes traces.

    Parameters
    ----------
    metadata:
        Trace metadata stamped onto everything this database emits.
    sink:
        Optional streaming target; every :meth:`add_snapshot` is
        forwarded to ``sink.append_snapshot(time, names, coords)``.
        Durability (committing the sink) stays with the caller — the
        crawl loop decides the commit cadence.
    buffer:
        Keep observations in memory (the default).  With ``False``
        the database is a pure pass-through to ``sink``:
        :meth:`to_trace` and per-record writes raise, counters and
        metadata still work.
    """

    def __init__(
        self,
        metadata: TraceMetadata | None = None,
        sink=None,
        buffer: bool = True,
    ) -> None:
        if not buffer and sink is None:
            raise ValueError("an unbuffered database needs a sink to write to")
        self.metadata = metadata or TraceMetadata()
        self.sink = sink
        self.buffered = bool(buffer)
        self._by_time: dict[float, dict[str, Position]] = {}
        self._duplicate_writes = 0
        self._streamed_snapshots = 0
        self._streamed_records = 0

    # -- writes -----------------------------------------------------------

    def add_record(self, record: PositionRecord) -> bool:
        """Insert one observation; returns False for a duplicate key."""
        if not self.buffered:
            raise ValueError(
                "per-record writes need the in-memory buffer for "
                "(time, user) dedup; stream whole snapshots instead"
            )
        bucket = self._by_time.setdefault(record.time, {})
        if record.user in bucket:
            self._duplicate_writes += 1
            return False
        bucket[record.user] = record.position
        return True

    def add_snapshot(self, snapshot: Snapshot) -> int:
        """Insert a whole snapshot; returns the number of new rows.

        An empty snapshot still creates its timestamp: "the monitor
        looked and the land was empty" is data — dropping it would
        overstate mean concurrency on sparse lands.

        With a ``sink`` the deduplicated snapshot is also forwarded as
        arrays (:meth:`~repro.trace.Snapshot.as_arrays` — free for
        snapshots the monitors build via ``from_arrays``).
        """
        if not self.buffered:
            names, coords = snapshot.as_arrays()
            self.sink.append_snapshot(snapshot.time, names, coords)
            self._streamed_snapshots += 1
            self._streamed_records += len(names)
            return len(names)
        self._by_time.setdefault(snapshot.time, {})
        inserted = 0
        for record in snapshot.records():
            if self.add_record(record):
                inserted += 1
        if self.sink is not None:
            names, coords = snapshot.as_arrays()
            self.sink.append_snapshot(snapshot.time, names, coords)
            self._streamed_snapshots += 1
            self._streamed_records += len(names)
        return inserted

    # -- reads --------------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Total stored (or, unbuffered, streamed) observations."""
        if not self.buffered:
            return self._streamed_records
        return sum(len(bucket) for bucket in self._by_time.values())

    @property
    def duplicate_writes(self) -> int:
        """How many writes hit the ``(time, user)`` key constraint."""
        return self._duplicate_writes

    @property
    def snapshot_count(self) -> int:
        """Number of distinct observation timestamps."""
        if not self.buffered:
            return self._streamed_snapshots
        return len(self._by_time)

    def users(self) -> set[str]:
        """Every user id with at least one observation."""
        if not self.buffered:
            return set(self.sink.user_names)
        seen: set[str] = set()
        for bucket in self._by_time.values():
            seen.update(bucket)
        return seen

    def observations_of(self, user: str) -> list[PositionRecord]:
        """Time-ordered observations of one user."""
        rows = [
            PositionRecord(t, user, pos.x, pos.y, pos.z)
            for t, bucket in self._by_time.items()
            if user in bucket
            for pos in [bucket[user]]
        ]
        rows.sort(key=lambda r: r.time)
        return rows

    def between(self, start: float, end: float) -> list[Snapshot]:
        """Snapshots with ``start <= time <= end``, time-ordered."""
        times = sorted(t for t in self._by_time if start <= t <= end)
        return [Snapshot(t, self._by_time[t]) for t in times]

    def to_trace(self) -> Trace:
        """Materialize everything as an immutable columnar trace.

        Rows go straight into flat arrays — the dict-of-dicts write
        buffer is never exploded into per-record objects.  An
        unbuffered (streaming) database holds nothing to materialize:
        load the sink's ``.rtrc`` file instead.
        """
        if not self.buffered:
            raise ValueError(
                "streaming database keeps no buffer; read the sink's "
                ".rtrc store (read_trace_rtrc / LiveAnalyzer) instead"
            )
        builder = ColumnarBuilder()
        for t in sorted(self._by_time):
            bucket = self._by_time[t]
            coords = np.empty((len(bucket), 3), dtype=np.float64)
            for i, pos in enumerate(bucket.values()):
                coords[i, 0] = pos.x
                coords[i, 1] = pos.y
                coords[i, 2] = pos.z
            builder.append_snapshot(t, list(bucket), coords)
        return Trace.from_columns(builder.build(), self.metadata)

    def export_rtrc(self, path: str | Path) -> Path:
        """Dump the database as a binary columnar ``.rtrc`` file.

        The write buffer goes straight through the columnar build into
        raw array sections; analysts then ``np.memmap`` the result
        instead of re-querying (and re-parsing) the database.
        """
        return write_trace_rtrc(self.to_trace(), path)
