"""Paper-vs-measured report rendering.

``render_experiment_report`` produces the text recorded in
EXPERIMENTS.md: for every figure a table of the series evaluated on a
common grid (the numeric twin of the plot), for every table the
measured-vs-paper rows, and for every headline claim a PASS/DEVIATES
line with the numbers side by side.
"""

from __future__ import annotations

from typing import Mapping

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE
from repro.core.report import log_grid, render_ccdf_table, render_summary_table
from repro.experiments.figures import (
    fig1_temporal,
    fig2_graphs,
    fig3_zone_occupation,
    fig4_trips,
)
from repro.experiments.runner import ExperimentConfig, all_analyzers
from repro.experiments.tables import table1_summary
from repro.lands import PAPER_TARGETS
from repro.stats import ECDF


def _check(label: str, measured: float, lo: float, hi: float, unit: str = "") -> str:
    verdict = "PASS" if lo <= measured <= hi else "DEVIATES"
    band = f"[{lo:g}, {hi:g}]{unit}"
    return f"  {verdict:8s} {label}: measured {measured:.1f}{unit}, paper band {band}"


def _panel_block(
    title: str,
    series: Mapping[str, ECDF],
    points: list[float],
    complementary: bool,
) -> str:
    kind = "CCDF" if complementary else "CDF"
    if not series:
        return f"### {title} ({kind})\n\n(no samples in this window)\n"
    table = render_ccdf_table(series, points, complementary=complementary)
    return f"### {title} ({kind})\n\n```\n{table}\n```\n"


def _median_or_none(series: Mapping[str, ECDF], land: str) -> float | None:
    ecdf = series.get(land)
    return None if ecdf is None else ecdf.median


def render_experiment_report(config: ExperimentConfig) -> str:
    """The full paper-vs-measured report for one configuration."""
    blocks: list[str] = []
    window_h = config.duration / 3600.0
    blocks.append(
        f"Configuration: window {window_h:.0f} h from hour "
        f"{config.start_hour:02d}:00, tau = {config.tau:g} s, seed = {config.seed}, "
        f"graph-metric stride = {config.every}.\n"
    )

    # ---- Table 1 ------------------------------------------------------
    blocks.append("## T1 — Trace summary (§3)\n")
    blocks.append("```\n" + render_summary_table(table1_summary(config)) + "\n```\n")

    # ---- Figure 1 ------------------------------------------------------
    fig1 = fig1_temporal(config, strict=False)
    blocks.append("## F1 — Temporal analysis (Fig. 1)\n")
    time_grid = log_grid(10.0, 1e4, 7)
    titles = {
        "ct_rb": "Fig 1(a) Contact Time, r=10m",
        "ict_rb": "Fig 1(b) Inter-Contact Time, r=10m",
        "ft_rb": "Fig 1(c) First Contact Time, r=10m",
        "ct_rw": "Fig 1(d) Contact Time, r=80m",
        "ict_rw": "Fig 1(e) Inter-Contact Time, r=80m",
        "ft_rw": "Fig 1(f) First Contact Time, r=80m",
    }
    for panel, series in fig1.items():
        blocks.append(_panel_block(titles[panel], series, time_grid, complementary=True))
    blocks.append("Headline temporal checks:\n```")
    for land, targets in PAPER_TARGETS.items():
        ct = _median_or_none(fig1["ct_rb"], land)
        if ct is not None:
            blocks.append(
                _check(
                    f"{land} CT median @10m",
                    ct,
                    targets.ct_median_rb / 2.5,
                    targets.ct_median_rb * 2.5,
                    "s",
                )
            )
        ict = _median_or_none(fig1["ict_rb"], land)
        if ict is not None:
            lo, hi = targets.ict_median
            blocks.append(_check(f"{land} ICT median @10m", ict, lo / 2.5, hi * 2.5, "s"))
        ft = _median_or_none(fig1["ft_rb"], land)
        if ft is not None:
            flo, fhi = targets.ft_median_rb
            blocks.append(
                _check(
                    f"{land} FT median @10m",
                    ft,
                    flo / 2.5 if flo else 0.0,
                    max(fhi * 2.5, 1.0),
                    "s",
                )
            )
    blocks.append("```\n")

    # ---- Figure 2 -------------------------------------------------------
    fig2 = fig2_graphs(config, strict=False)
    blocks.append("## F2 — Line-of-sight networks (Fig. 2)\n")
    degree_grid = [0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0]
    diameter_grid = [0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0]
    clustering_grid = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95]
    blocks.append(_panel_block("Fig 2(a) Node Degree, r=10m", fig2["degree_rb"], degree_grid, True))
    blocks.append(
        _panel_block("Fig 2(b) Network Diameter, r=10m", fig2["diameter_rb"], diameter_grid, False)
    )
    blocks.append(
        _panel_block(
            "Fig 2(c) Clustering Coefficient, r=10m", fig2["clustering_rb"], clustering_grid, False
        )
    )
    blocks.append(_panel_block("Fig 2(d) Node Degree, r=80m", fig2["degree_rw"], degree_grid, True))
    blocks.append(
        _panel_block("Fig 2(e) Network Diameter, r=80m", fig2["diameter_rw"], diameter_grid, False)
    )
    blocks.append(
        _panel_block(
            "Fig 2(f) Clustering Coefficient, r=80m", fig2["clustering_rw"], clustering_grid, False
        )
    )
    blocks.append("Headline graph checks:\n```")
    analyzers = all_analyzers(config)
    for land, targets in PAPER_TARGETS.items():
        iso = analyzers[land].isolation_fraction(BLUETOOTH_RANGE, config.every)
        blocks.append(
            _check(
                f"{land} isolated fraction @10m",
                iso,
                max(targets.isolation_rb - 0.2, 0.0),
                min(targets.isolation_rb + 0.2, 1.0),
            )
        )
        iso_w = analyzers[land].isolation_fraction(WIFI_RANGE, config.every)
        blocks.append(_check(f"{land} isolated fraction @80m", iso_w, 0.0, 0.05))
        clustering_median = _median_or_none(fig2["clustering_rb"], land)
        if clustering_median is not None:
            blocks.append(
                _check(f"{land} clustering median @10m", clustering_median, 0.4, 1.0)
            )
    blocks.append("```\n")

    # ---- Figure 3 -----------------------------------------------------------
    fig3 = fig3_zone_occupation(config)
    blocks.append("## F3 — Zone occupation (Fig. 3)\n")
    occupancy_grid = [0.0, 1.0, 2.0, 5.0, 10.0, 15.0, 25.0]
    blocks.append(_panel_block("Fig 3 Zone Occupation, L=20m", fig3, occupancy_grid, False))
    blocks.append("Headline spatial checks:\n```")
    for land in PAPER_TARGETS:
        empty = float(fig3[land].cdf(0.0))
        blocks.append(_check(f"{land} empty-cell fraction", empty, 0.8, 1.0))
    blocks.append("```\n")

    # ---- Figure 4 ------------------------------------------------------------
    fig4 = fig4_trips(config)
    blocks.append("## F4 — Trip analysis (Fig. 4)\n")
    length_grid = [10.0, 50.0, 100.0, 230.0, 400.0, 500.0, 1000.0, 2000.0]
    time_grid4 = [60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0]
    blocks.append(_panel_block("Fig 4(a) Travel Length", fig4["travel_length"], length_grid, False))
    blocks.append(
        _panel_block(
            "Fig 4(b) Effective Travel Time", fig4["effective_travel_time"], time_grid4, False
        )
    )
    blocks.append(_panel_block("Fig 4(c) Travel Time", fig4["travel_time"], time_grid4, False))
    blocks.append("Headline trip checks:\n```")
    for land, targets in PAPER_TARGETS.items():
        p90 = float(fig4["travel_length"][land].quantile(0.9))
        blocks.append(
            _check(
                f"{land} travel length p90",
                p90,
                targets.travel_p90 / 2.0,
                targets.travel_p90 * 2.0,
                "m",
            )
        )
        tmax = fig4["travel_time"][land].max
        blocks.append(_check(f"{land} longest session", tmax, 0.0, 4.25 * 3600.0, "s"))
    blocks.append("```\n")

    blocks.append(KNOWN_DEVIATIONS)
    return "\n".join(blocks)


#: Persistent fidelity discussion appended to every generated report.
KNOWN_DEVIATIONS = """\
## Known deviations and their causes

* **Inter-contact-time medians are compressed** relative to the paper
  (Dance ~240 s vs 700-800 s; Apfel ~180 s and IoV ~270 s vs ~400 s),
  while the ICT CCDFs keep the paper's power-law-body +
  exponential-tail shape (verified by AIC model comparison in
  `benchmarks/bench_fig1_temporal.py`).  Cause: real ICTs beyond ~10
  minutes are dominated by users leaving and re-entering the land on
  timescales of hours; the session substrate models re-visits
  conservatively (30-45 % return probability, ~1 h median gap) because
  more aggressive returning would break the §3 unique-user
  calibration that we do match.
* **Dance Island CT at 80 m** (~140 s vs ~300 s): at WiFi range a
  Dance contact lasts until one of the pair leaves the club area or
  logs out, so it is bounded by the short club-hopping sessions the
  §3 calibration (3347 uniques at 34 concurrent) forces.
* **Apfel Land FT at 80 m** (0 s vs ~30 s): with 13 concurrent users
  and uniform newbie spawning, most of the land lies within 80 m of
  somebody, making the median WiFi-range first contact immediate.
  Reproducing 30 s would require concentrating the population harder,
  which would break the ~60 % Bluetooth-range isolation that we match.

Everything else — the trace summary, contact-time medians and
orderings, the power-law-with-cutoff shape of CT and ICT, the
isolation pattern (60 %/10 %/~0 % at 10 m, ~0 at 80 m), diameter
behaviour including the small-components paradox, high clustering,
zone occupation with Dance hot-spots, travel-length percentiles and
orderings, the IoV long-trip tail, and the session cap (~4 h, 90 %
under an hour) — reproduces within the stated bands.

Regenerate this file with `slmob experiments --full --every 2 --out
EXPERIMENTS.md` (about 15-20 minutes on a laptop).
"""
