"""Shared simulation runner with trace caching.

Every figure of the paper is computed from the *same* three 24 h
traces, so the harness simulates each land once per configuration and
caches both the trace and its analyzer.  Benchmarks use a scaled-down
configuration (shorter window, sparser graph sampling) to stay fast;
``FULL_CONFIG`` regenerates the paper-scale numbers recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import TraceAnalyzer
from repro.lands import LandPreset, paper_presets
from repro.monitors import Crawler
from repro.trace import Trace


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment run."""

    #: Simulated measurement window, seconds.
    duration: float = 24.0 * 3600.0
    #: Crawler snapshot period, seconds (the paper's τ).
    tau: float = 10.0
    #: World seed; figures in EXPERIMENTS.md pin this.
    seed: int = 2008
    #: Snapshot stride for the per-snapshot graph metrics (1 = all).
    every: int = 1
    #: Hour of day the measurement starts (diurnal profile phase).
    start_hour: int = 0
    #: Seconds the world runs before the crawler attaches, so the
    #: population is in steady state when measurement begins (real
    #: 24 h traces also start on an already-populated land).
    spinup: float = 3600.0

    def scaled_to_paper(self) -> bool:
        """True when the window matches the paper's 24 h traces."""
        return self.duration >= 24.0 * 3600.0 - 1.0


#: Paper-scale configuration (24 h from midnight, full-resolution graphs).
FULL_CONFIG = ExperimentConfig()

#: Benchmark configuration: a 3 h afternoon window, strided graphs.
BENCH_CONFIG = ExperimentConfig(duration=3.0 * 3600.0, every=18, start_hour=11)

_trace_cache: dict[tuple, Trace] = {}
_analyzer_cache: dict[tuple, TraceAnalyzer] = {}


def clear_cache() -> None:
    """Drop all cached traces and analyzers (tests use this)."""
    _trace_cache.clear()
    _analyzer_cache.clear()


def _cache_key(land_name: str, config: ExperimentConfig) -> tuple:
    return (
        land_name,
        config.duration,
        config.tau,
        config.seed,
        config.start_hour,
        config.spinup,
    )


def simulate_preset(
    preset: LandPreset,
    config: ExperimentConfig,
) -> Trace:
    """Run one land under the crawler and return its trace.

    The world clock starts at ``start_hour`` (so the diurnal profile
    is in a realistic phase even for short windows), runs ``spinup``
    seconds to reach steady-state population, and only then attaches
    the crawler.  Events stay pinned to absolute world time, like real
    wall-clock events.
    """
    start = config.start_hour * 3600.0
    world = preset.build(seed=config.seed, start_time=start)
    if config.spinup > 0:
        world.run_until(start + config.spinup)
    crawler = Crawler(tau=config.tau)
    return crawler.monitor(world, config.duration)


def trace_for(land_name: str, config: ExperimentConfig) -> Trace:
    """The (cached) crawler trace of one target land."""
    key = _cache_key(land_name, config)
    if key not in _trace_cache:
        presets = paper_presets()
        if land_name not in presets:
            raise KeyError(
                f"unknown land {land_name!r}; expected one of {sorted(presets)}"
            )
        _trace_cache[key] = simulate_preset(presets[land_name], config)
    return _trace_cache[key]


def analyzer_for(land_name: str, config: ExperimentConfig) -> TraceAnalyzer:
    """The (cached) analyzer over one land's trace."""
    key = _cache_key(land_name, config)
    if key not in _analyzer_cache:
        _analyzer_cache[key] = TraceAnalyzer(trace_for(land_name, config))
    return _analyzer_cache[key]


def all_analyzers(config: ExperimentConfig) -> dict[str, TraceAnalyzer]:
    """Analyzers for all three target lands, keyed by land name."""
    return {name: analyzer_for(name, config) for name in paper_presets()}


def quick_config(duration_hours: float, config: ExperimentConfig = FULL_CONFIG) -> ExperimentConfig:
    """A copy of ``config`` with a shorter measurement window."""
    if duration_hours <= 0:
        raise ValueError(f"duration must be positive, got {duration_hours}")
    return replace(config, duration=duration_hours * 3600.0)
