"""Rebuilders for every figure of the paper's evaluation.

Each function returns the plotted *data series* (one
:class:`~repro.stats.ECDF` per land per panel).  The paper's panels:

* Fig. 1 — CCDFs of CT, ICT, FT at r_b = 10 m (a-c) and r_w = 80 m
  (d-f);
* Fig. 2 — degree CCDF, diameter CDF, clustering CDF at both ranges;
* Fig. 3 — zone-occupation CDF at L = 20 m;
* Fig. 4 — travel length, effective travel time and travel (login)
  time CDFs.
"""

from __future__ import annotations

from repro.core import BLUETOOTH_RANGE, WIFI_RANGE
from repro.experiments.runner import ExperimentConfig, all_analyzers
from repro.stats import ECDF

#: Panel keys of Fig. 1, in the paper's (a)..(f) order.
FIG1_PANELS = ("ct_rb", "ict_rb", "ft_rb", "ct_rw", "ict_rw", "ft_rw")

#: Panel keys of Fig. 2, in the paper's (a)..(f) order.
FIG2_PANELS = (
    "degree_rb",
    "diameter_rb",
    "clustering_rb",
    "degree_rw",
    "diameter_rw",
    "clustering_rw",
)


def _collect(
    result: dict[str, dict[str, ECDF]], panel: str, land: str, build, strict: bool
) -> None:
    try:
        result[panel][land] = build()
    except ValueError:
        # Short/sparse windows can leave a panel without samples
        # (e.g. no repeated contacts on Apfel in 30 minutes).  Strict
        # mode propagates; lenient mode omits the series.
        if strict:
            raise


def fig1_temporal(
    config: ExperimentConfig,
    strict: bool = True,
) -> dict[str, dict[str, ECDF]]:
    """Fig. 1: contact-opportunity CCDF series for the three lands.

    Returns ``{panel: {land: ECDF}}`` with panels in
    :data:`FIG1_PANELS` order.  With ``strict=False``, lands whose
    window yields no samples for a panel are omitted from that panel
    instead of raising.
    """
    analyzers = all_analyzers(config)
    result: dict[str, dict[str, ECDF]] = {panel: {} for panel in FIG1_PANELS}
    for land, a in analyzers.items():
        # Both radii from one batched pass over the snapshots.
        a.contacts_multirange((BLUETOOTH_RANGE, WIFI_RANGE))
        _collect(result, "ct_rb", land, lambda: a.contact_times(BLUETOOTH_RANGE), strict)
        _collect(result, "ict_rb", land, lambda: a.inter_contact_times(BLUETOOTH_RANGE), strict)
        _collect(result, "ft_rb", land, lambda: a.first_contact_times(BLUETOOTH_RANGE), strict)
        _collect(result, "ct_rw", land, lambda: a.contact_times(WIFI_RANGE), strict)
        _collect(result, "ict_rw", land, lambda: a.inter_contact_times(WIFI_RANGE), strict)
        _collect(result, "ft_rw", land, lambda: a.first_contact_times(WIFI_RANGE), strict)
    return result


def fig2_graphs(
    config: ExperimentConfig,
    strict: bool = True,
) -> dict[str, dict[str, ECDF]]:
    """Fig. 2: line-of-sight graph metric series for the three lands."""
    analyzers = all_analyzers(config)
    result: dict[str, dict[str, ECDF]] = {panel: {} for panel in FIG2_PANELS}
    every = config.every
    for land, a in analyzers.items():
        _collect(result, "degree_rb", land, lambda: a.degrees(BLUETOOTH_RANGE, every), strict)
        _collect(result, "diameter_rb", land, lambda: a.diameters(BLUETOOTH_RANGE, every), strict)
        _collect(
            result, "clustering_rb", land, lambda: a.clustering(BLUETOOTH_RANGE, every), strict
        )
        _collect(result, "degree_rw", land, lambda: a.degrees(WIFI_RANGE, every), strict)
        _collect(result, "diameter_rw", land, lambda: a.diameters(WIFI_RANGE, every), strict)
        _collect(result, "clustering_rw", land, lambda: a.clustering(WIFI_RANGE, every), strict)
    return result


def fig3_zone_occupation(
    config: ExperimentConfig,
    cell_size: float = 20.0,
) -> dict[str, ECDF]:
    """Fig. 3: users-per-cell CDF (L = 20 m) for the three lands."""
    analyzers = all_analyzers(config)
    return {
        land: analyzer.zone_occupation(cell_size, config.every)
        for land, analyzer in analyzers.items()
    }


def fig4_trips(config: ExperimentConfig) -> dict[str, dict[str, ECDF]]:
    """Fig. 4: trip CDF series (length, effective time, login time)."""
    analyzers = all_analyzers(config)
    result: dict[str, dict[str, ECDF]] = {
        "travel_length": {},
        "effective_travel_time": {},
        "travel_time": {},
    }
    for land, analyzer in analyzers.items():
        result["travel_length"][land] = analyzer.travel_lengths()
        result["effective_travel_time"][land] = analyzer.effective_travel_times()
        result["travel_time"][land] = analyzer.travel_times()
    return result
