"""The §3 trace-summary table (T1): unique users and concurrency."""

from __future__ import annotations

from repro.experiments.runner import ExperimentConfig, all_analyzers
from repro.lands import PAPER_TARGETS


def table1_summary(config: ExperimentConfig) -> list[dict[str, object]]:
    """Measured-vs-paper rows for the three target lands.

    The paper's counts are for 24 h traces; when the configuration
    runs a shorter window the expected unique-user count is scaled
    linearly (concurrency is duration-independent).
    """
    rows: list[dict[str, object]] = []
    scale = min(config.duration / (24.0 * 3600.0), 1.0)
    for land, analyzer in all_analyzers(config).items():
        summary = analyzer.summary()
        target = PAPER_TARGETS[land]
        rows.append(
            {
                "land": land,
                "unique_users": summary.unique_users,
                "paper_unique_users": round(target.unique_users * scale),
                "mean_concurrent": round(summary.mean_concurrency, 1),
                "paper_mean_concurrent": target.mean_concurrency,
                "max_concurrent": summary.max_concurrency,
                "duration_h": round(summary.duration / 3600.0, 2),
            }
        )
    return rows
