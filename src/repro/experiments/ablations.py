"""Methodology ablations (A1-A5 of DESIGN.md).

These experiments probe the *measurement* choices rather than the
measured phenomena:

* A1 — how the sampling period τ biases CT/ICT;
* A2 — the crawler-perturbation effect and the mimicry fix (§2);
* A3 — sensor-network vs crawler fidelity against ground truth (§2);
* A4 — which mobility model family reproduces the observed shapes;
* A5 — DTN forwarding over the collected traces (the paper's
  motivating application).
"""

from __future__ import annotations

import numpy as np

from repro.core import BLUETOOTH_RANGE, TraceAnalyzer
from repro.dtn import (
    DirectDelivery,
    Epidemic,
    FirstContact,
    TwoHopRelay,
    compare_protocols,
    uniform_workload,
)
from repro.experiments.runner import ExperimentConfig, trace_for
from repro.lands import generic_land, paper_presets
from repro.monitors import Crawler, GroundTruthMonitor, SensorNetwork, run_monitors


def ablation_tau(
    config: ExperimentConfig,
    land_name: str = "Dance Island",
    factors: tuple[int, ...] = (1, 3, 6, 12),
) -> list[dict[str, object]]:
    """A1: resample one trace at multiples of τ and track CT/ICT bias.

    Uses :meth:`~repro.trace.Trace.resampled`, so every row observes
    the *same* underlying motion — differences are pure measurement
    bias: longer τ merges nearby contacts (inflating CT) and misses
    short ones entirely.
    """
    base = trace_for(land_name, config)
    rows: list[dict[str, object]] = []
    for factor in factors:
        trace = base.resampled(factor)
        analyzer = TraceAnalyzer(trace)
        contacts = analyzer.contacts(BLUETOOTH_RANGE)
        rows.append(
            {
                "tau_s": trace.metadata.tau,
                "contacts": len(contacts),
                "ct_median_s": analyzer.contact_times(BLUETOOTH_RANGE).median,
                "ict_median_s": analyzer.inter_contact_times(BLUETOOTH_RANGE).median,
            }
        )
    return rows


def ablation_range_sweep(
    analyzer: TraceAnalyzer,
    ranges: tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0),
    every: int = 1,
) -> list[dict[str, object]]:
    """A6: one land under a whole sweep of communication ranges.

    The sweep is batched: :meth:`TraceAnalyzer.contacts_multirange`
    extracts every radius from a single neighbour-grid build per
    snapshot instead of re-running contact extraction per radius.
    Rows report the monotone effects (CT and degree grow with r,
    isolation falls) plus the non-monotone LCC diameter that underlies
    the paper's Apfel 'contradiction'.
    """
    analyzer.contacts_multirange(ranges)
    rows: list[dict[str, object]] = []
    for r in ranges:
        rows.append(
            {
                "r_m": r,
                "ct_median_s": analyzer.contact_times(r).median,
                "median_degree": analyzer.degrees(r, every).median,
                "isolated": round(analyzer.isolation_fraction(r, every), 3),
                "max_diameter": analyzer.diameters(r, every).max,
            }
        )
    return rows


def ablation_crawler_perturbation(
    duration: float = 2.0 * 3600.0,
    seed: int = 77,
) -> list[dict[str, object]]:
    """A2: naive vs mimicking crawler on identical worlds.

    The naive crawler stands silent mid-land and attracts users; the
    row reports how many movement redirects it caused and how much
    closer users ended up to the crawler's anchor, reproducing the
    authors' "steady convergence of user movements towards our
    crawler" observation.
    """
    rows: list[dict[str, object]] = []
    for mimic in (False, True):
        preset = generic_land(n_pois=5, hourly_rate=90.0, seed=3)
        world = preset.build(seed=seed)
        crawler = Crawler(tau=10.0, mimic=mimic)
        trace = crawler.monitor(world, duration)
        # Mean distance of user observations from the land centre (the
        # naive crawler's anchor position).
        cx, cy = world.land.width / 2.0, world.land.height / 2.0
        distances = [
            float(np.hypot(pos.x - cx, pos.y - cy))
            for snapshot in trace
            for pos in snapshot.positions.values()
        ]
        rows.append(
            {
                "crawler": "mimic" if mimic else "naive",
                "redirects": world.stats.attraction_redirects,
                "mean_dist_to_center_m": round(float(np.mean(distances)), 1),
                "unique_users": len(trace.unique_users()),
            }
        )
    return rows


def ablation_monitor_fidelity(
    duration: float = 2.0 * 3600.0,
    seed: int = 99,
    land_name: str = "Dance Island",
) -> list[dict[str, object]]:
    """A3: crawler and sensor network against ground truth, one world.

    All three monitors observe the same realization; rows report how
    much of the true population and how many of the true observations
    each architecture captured.
    """
    preset = paper_presets()[land_name]
    world = preset.build(seed=seed, start_time=12 * 3600.0)
    world.run_until(12 * 3600.0 + 1800.0)
    truth = GroundTruthMonitor(tau=10.0)
    crawler = Crawler(tau=10.0)
    sensors = SensorNetwork(tau=10.0)
    run_monitors(world, [truth, crawler, sensors], duration)
    true_trace = truth.trace()
    true_users = len(true_trace.unique_users())
    true_records = sum(len(s) for s in true_trace)
    rows: list[dict[str, object]] = []
    for label, monitor_trace, dropped in (
        ("ground-truth", true_trace, 0),
        ("crawler", crawler.trace(), 0),
        ("sensor-network", sensors.trace(), sensors.total_dropped_records),
    ):
        records = sum(len(s) for s in monitor_trace)
        rows.append(
            {
                "monitor": label,
                "users_seen": len(monitor_trace.unique_users()),
                "user_coverage": round(len(monitor_trace.unique_users()) / true_users, 3),
                "records": records,
                "record_coverage": round(records / true_records, 3),
                "dropped_records": dropped,
            }
        )
    return rows


def ablation_mobility_models(
    duration: float = 2.0 * 3600.0,
    seed: int = 5,
) -> list[dict[str, object]]:
    """A4: POI vs random-waypoint vs Lévy mobility, same land skeleton.

    The paper's qualitative claims (heavy contact tails, high
    clustering, hot-spots) should hold for POI mobility and fail for
    random waypoint; Lévy sits between.
    """
    rows: list[dict[str, object]] = []
    for kind in ("poi", "rwp", "levy"):
        preset = generic_land(n_pois=5, hourly_rate=110.0, seed=11, mobility=kind)
        world = preset.build(seed=seed)
        trace = Crawler(tau=10.0).monitor(world, duration)
        analyzer = TraceAnalyzer(trace)
        occupancy = analyzer.zone_occupation(20.0, every=6)
        try:
            clustering = round(analyzer.clustering(BLUETOOTH_RANGE, every=6).median, 3)
        except ValueError:
            # Structureless mobility in a short window can sample no
            # node with two neighbours at all — itself a finding.
            clustering = 0.0
        rows.append(
            {
                "mobility": kind,
                "ct_median_s": analyzer.contact_times(BLUETOOTH_RANGE).median,
                "clustering_median": clustering,
                "isolation": round(
                    analyzer.isolation_fraction(BLUETOOTH_RANGE, every=6), 3
                ),
                "hotspot_p99_cell": float(occupancy.quantile(0.99)),
                "max_cell": float(occupancy.max),
            }
        )
    return rows


def dtn_replay_experiment(
    config: ExperimentConfig,
    land_name: str = "Isle of View",
    message_count: int = 60,
    r: float = BLUETOOTH_RANGE,
    seed: int = 31,
) -> list[dict[str, object]]:
    """A5: forwarding-scheme comparison over one collected trace.

    Expected ordering (the DTN classics the paper cites): epidemic
    delivers the most, fastest, at the highest copy cost; direct
    delivery is the floor; two-hop sits between.
    """
    trace = trace_for(land_name, config)
    rng = np.random.default_rng(seed)
    messages = uniform_workload(trace, message_count, rng)
    protocols = [Epidemic(), TwoHopRelay(), FirstContact(), DirectDelivery()]
    results = compare_protocols(trace, r, messages, protocols, seed=seed)
    return [result.row() for result in results]
