"""Experiment harness: one runner per paper figure/table.

The harness is the bridge between the library and the paper's
evaluation section:

* :mod:`repro.experiments.runner` — simulate each target land once
  per configuration (cached) and hand out analyzers;
* :mod:`repro.experiments.figures` — rebuild the data series behind
  Fig. 1 (temporal CCDFs), Fig. 2 (graph CDFs/CCDFs), Fig. 3 (zone
  occupation) and Fig. 4 (trip CDFs);
* :mod:`repro.experiments.tables` — the §3 trace-summary table;
* :mod:`repro.experiments.ablations` — the methodology experiments
  (sampling period, crawler perturbation, sensor-vs-crawler fidelity,
  mobility-model comparison, DTN replay);
* :mod:`repro.experiments.render` — paper-vs-measured text reports.

``python -m repro experiments`` drives everything from the command
line.
"""

from repro.experiments.runner import (
    BENCH_CONFIG,
    FULL_CONFIG,
    ExperimentConfig,
    analyzer_for,
    clear_cache,
    trace_for,
)
from repro.experiments.figures import (
    fig1_temporal,
    fig2_graphs,
    fig3_zone_occupation,
    fig4_trips,
)
from repro.experiments.tables import table1_summary
from repro.experiments.ablations import (
    ablation_crawler_perturbation,
    ablation_mobility_models,
    ablation_monitor_fidelity,
    ablation_tau,
    dtn_replay_experiment,
)
from repro.experiments.render import render_experiment_report

__all__ = [
    "BENCH_CONFIG",
    "FULL_CONFIG",
    "ExperimentConfig",
    "analyzer_for",
    "clear_cache",
    "trace_for",
    "fig1_temporal",
    "fig2_graphs",
    "fig3_zone_occupation",
    "fig4_trips",
    "table1_summary",
    "ablation_crawler_perturbation",
    "ablation_mobility_models",
    "ablation_monitor_fidelity",
    "ablation_tau",
    "dtn_replay_experiment",
    "render_experiment_report",
]
