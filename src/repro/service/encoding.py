"""Canonical JSON payloads for the query service.

Every payload builder takes the *columnar* analysis results
(:class:`~repro.core.kernels.ContactSet`,
:class:`~repro.trace.SessionSet`, flat sample arrays) — the shapes
both :class:`~repro.core.analyzer.TraceAnalyzer` and
:class:`~repro.core.live.LiveAnalyzer` produce — so the service and
its equivalence tests build responses through the *same* functions:
a service answer over a live follower is byte-identical to one built
from a whole-trace analyzer over the same committed prefix (pinned by
``tests/unit/service/test_query_service.py``).

:func:`encode` fixes the byte form: sorted keys, minimal separators,
UTF-8, one trailing newline.  Floats serialize through Python's
shortest-round-trip ``repr``, so float64 values survive an HTTP
round trip exactly — the HTTP crawler sink relies on this for
bit-for-bit ingest equivalence too.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Mapping

import numpy as np

from repro.core.kernels import ContactSet
from repro.trace import SessionSet, TraceMetadata


def encode(payload: Mapping) -> bytes:
    """The service's canonical JSON bytes for one payload."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _envelope(kind: str, store: str, snapshots: int, params: Mapping) -> dict:
    return {
        "kind": kind,
        "store": store,
        "snapshots": int(snapshots),
        "params": dict(params),
    }


def contacts_payload(
    contact_set: ContactSet, *, store: str, snapshots: int, r: float
) -> dict:
    """Contact intervals under range ``r`` as one JSON document."""
    names = contact_set.names
    payload = _envelope("contacts", store, snapshots, {"r": float(r)})
    payload["count"] = len(contact_set)
    payload["contacts"] = [
        {
            "a": names[a],
            "b": names[b],
            "start": start,
            "end": end,
            "censored": censored,
        }
        for a, b, start, end, censored in zip(
            contact_set.ids_a.tolist(),
            contact_set.ids_b.tolist(),
            contact_set.starts.tolist(),
            contact_set.ends.tolist(),
            contact_set.censored.tolist(),
        )
    ]
    return payload


def sessions_payload(
    session_set: SessionSet, *, store: str, snapshots: int, gap: float
) -> dict:
    """User visits (with per-session trip metrics) as one document."""
    names = session_set.names
    payload = _envelope("sessions", store, snapshots, {"gap": float(gap)})
    payload["count"] = len(session_set)
    payload["sessions"] = [
        {
            "user": names[user],
            "login": login,
            "logout": logout,
            "observations": count,
            "travel_length": length,
        }
        for user, login, logout, count, length in zip(
            session_set.user_ids.tolist(),
            session_set.login_times().tolist(),
            session_set.logout_times().tolist(),
            session_set.observation_counts().tolist(),
            session_set.travel_lengths().tolist(),
        )
    ]
    return payload


def samples_payload(
    kind: str,
    samples: np.ndarray,
    *,
    store: str,
    snapshots: int,
    params: Mapping,
) -> dict:
    """Per-snapshot sample series (zones, degrees, diameters, clustering).

    The full sample array rides along (queries bound its size through
    ``every``); the summary quartet answers dashboard-style callers
    without a client-side pass.
    """
    arr = np.asarray(samples, dtype=np.float64)
    payload = _envelope(kind, store, snapshots, params)
    payload["count"] = int(arr.size)
    payload["samples"] = arr.tolist()
    payload["summary"] = (
        {
            "mean": float(arr.mean()),
            "median": float(np.median(arr)),
            "min": float(arr.min()),
            "max": float(arr.max()),
        }
        if arr.size
        else None
    )
    return payload


def status_payload(
    *,
    store: str,
    path: str,
    shard_dir: bool,
    snapshots: int,
    observations: int,
    parts: int,
    etag: str,
    metadata: TraceMetadata,
    ingest: bool,
) -> dict:
    """One store's status document (``GET /v1/<store>``)."""
    return {
        "kind": "status",
        "store": store,
        "path": path,
        "shard_dir": shard_dir,
        "snapshots": int(snapshots),
        "observations": int(observations),
        "parts": int(parts),
        "etag": etag,
        "metadata": asdict(metadata),
        "ingest": bool(ingest),
    }


def error_payload(message: str) -> dict:
    """The uniform error document for non-2xx responses."""
    return {"error": message}
