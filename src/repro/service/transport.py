"""Shared HTTP transport with bounded transient-failure retries.

Every HTTP client in the repo — the crawler's
:class:`~repro.service.HttpRoundSink`, the distributed analysis
worker (:mod:`repro.distributed.worker`) — talks to a long-running
stdlib server that can restart, drop a keep-alive connection, or shed
load mid-request.  A client that dies on the first connection reset
turns every server hiccup into a lost crawl round or a stalled
analysis, so the retry policy lives here, once:

* **Transient transport errors** — connection refused/reset, DNS
  blips, socket timeouts, a server closing the connection before the
  status line (``RemoteDisconnected``) — are retried with capped
  exponential backoff (``backoff * 2^attempt``, bounded by
  ``max_backoff``) up to ``retries`` extra attempts, then raised as
  :class:`TransportUnavailable` with the last error as ``__cause__``.
* **Transient HTTP statuses** (:data:`TRANSIENT_STATUSES`: 429, 502,
  503, 504) are retried on the same budget, honouring a parseable
  ``Retry-After`` header over the computed backoff; when attempts run
  out the final :class:`~urllib.error.HTTPError` propagates so the
  caller can surface the server's message.
* **Everything else** — non-retryable 4xx/5xx — raises its
  :class:`~urllib.error.HTTPError` immediately: a ``400`` does not
  become valid by asking again.

Retries are only safe because every caller's requests are idempotent
at the application layer: posting the same crawl round twice is
rejected by the service's strictly-increasing-time validation, and
re-posting a task result is first-write-wins at the coordinator.
"""

from __future__ import annotations

import http.client
import time
import urllib.error
import urllib.request
from typing import Callable, Mapping

#: HTTP statuses worth retrying: the request was fine, the server (or
#: an intermediary) momentarily was not.
TRANSIENT_STATUSES = frozenset({429, 502, 503, 504})


class TransportUnavailable(RuntimeError):
    """The endpoint stayed unreachable through every retry attempt.

    Transport-level failure (no HTTP response at all), as opposed to
    :class:`~urllib.error.HTTPError` which carries a server verdict.
    The last underlying error rides along as ``__cause__``.
    """

    def __init__(self, url: str, attempts: int, last_error: Exception) -> None:
        super().__init__(
            f"{url}: unreachable after {attempts} attempt(s): {last_error}"
        )
        self.url = url
        self.attempts = attempts


def retry_after_wait(
    headers: Mapping[str, str] | None, fallback: float
) -> float:
    """Seconds to wait per a ``Retry-After`` header, or ``fallback``.

    Only the delta-seconds form is parsed (the servers in this repo
    never send HTTP-dates); garbage falls back.
    """
    try:
        return max(0.0, float((headers or {}).get("Retry-After", "")))
    except (TypeError, ValueError):
        return fallback


def request_bytes(
    request: urllib.request.Request,
    *,
    timeout: float = 30.0,
    retries: int = 5,
    backoff: float = 0.2,
    max_backoff: float = 5.0,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[int, Mapping[str, str], bytes]:
    """Perform one HTTP exchange with the shared retry policy.

    Returns ``(status, headers, body)`` for any 2xx/3xx response.
    ``retries`` counts *extra* attempts beyond the first; ``request``
    must carry re-sendable ``data`` (bytes, not a stream).  Raises the
    final :class:`~urllib.error.HTTPError` for non-retryable statuses
    (immediately) and exhausted transient statuses (after the budget),
    :class:`TransportUnavailable` for exhausted transport errors.
    """
    attempt = 0
    while True:
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            if exc.code not in TRANSIENT_STATUSES or attempt >= retries:
                raise
            wait = retry_after_wait(
                exc.headers, min(backoff * (2.0 ** attempt), max_backoff)
            )
            attempt += 1
            sleep(wait)
        except (OSError, http.client.HTTPException) as exc:
            # URLError (connection refused, DNS), raw socket resets
            # and timeouts, and half-closed keep-alive connections
            # (RemoteDisconnected) all land here; HTTPError was
            # already handled above.
            if attempt >= retries:
                raise TransportUnavailable(
                    request.full_url, attempt + 1, exc
                ) from exc
            sleep(min(backoff * (2.0 ** attempt), max_backoff))
            attempt += 1
