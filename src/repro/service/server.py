"""The mobility-analytics query service.

:class:`QueryService` turns the analyzer stack into a long-running
network system, the shape the paper's own measurement pipeline had
(sensors POST slices to a rate-limited web server, analysts query a
web application over the database).  One server process holds a
:class:`~repro.core.live.LiveAnalyzer` follower per configured store
— appendable ``.rtrc`` files or shard directories — and answers JSON
queries over HTTP (stdlib ``http.server``; no new dependencies):

====================================  =====================================
``GET /v1``                           store listing
``GET /v1/<store>``                   one store's status + current ETag
``GET /v1/<store>/contacts?r=10``     merged contact intervals
``GET /v1/<store>/sessions[?gap=20]`` user visits with trip metrics
``GET /v1/<store>/zones?cell=20``     zone-occupation samples
``GET /v1/<store>/graph/degrees?r=10``  losgraph sample series
``POST /v1/<store>/rounds``           ingest one committed crawl round
====================================  =====================================

Caching and invalidation
------------------------

Every query refreshes the store's follower (free when nothing was
committed) and is answered from a per-``(kind, params)`` cache of
encoded responses.  Cache entries are tagged with the store's
*generation tag* — for a shard directory the ``manifest.json``
compaction generation plus the committed-file count
(:func:`~repro.trace.shard_dir_generation`), for a single file the
committed snapshot count — which changes on exactly the events that
can change an answer.  The tag doubles as the HTTP ``ETag``: a client
replaying a query with ``If-None-Match`` gets ``304 Not Modified``
until the next commit (or compaction) bumps the tag.

A compaction racing a follower raises
:class:`~repro.core.live.StoreChangedError`; the service degrades by
re-opening a fresh follower over the compacted directory (dropping
that store's caches) instead of dying — the store itself is still
consistent, only the follower's incremental history was invalidated.

Ingest
------

With ``ingest=True``, ``POST /v1/<store>/rounds`` feeds an
:class:`~repro.trace.RtrcDirAppender`: the posted snapshots become one
committed round (one immutable shard file + atomic manifest swap), so
a crawler streams rounds over HTTP instead of sharing a filesystem
(:class:`~repro.service.HttpRoundSink` is the client half).  The
ingest path models the same two platform limits
:class:`~repro.monitors.webserver.WebServer` gives the in-world
sensors — a bounded request body (``413``) and a sliding-window
request budget (``429``) — with service-scale defaults.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from repro.core import spatial
from repro.core.live import LiveAnalyzer, StoreChangedError
from repro.monitors.webserver import WebServer
from repro.service.encoding import (
    contacts_payload,
    encode,
    error_payload,
    samples_payload,
    sessions_payload,
    status_payload,
)
from repro.trace import (
    RtrcDirAppender,
    TraceFormatError,
    TraceMetadata,
    shard_dir_generation,
)

#: Default sliding-window ingest budget (requests per minute).  The
#: modeled SL limit in :mod:`repro.monitors.webserver` is far tighter;
#: the service default is sized for one crawler per land.
DEFAULT_INGEST_BUDGET = 600

#: Default ingest body limit, bytes.  A 10-minute crawl round of a
#: busy land serializes to a few hundred KB of JSON; 16 MiB leaves
#: generous headroom while still bounding a misbehaving client.
DEFAULT_INGEST_BODY_LIMIT = 16 << 20

_GRAPH_KINDS = ("degrees", "diameters", "clustering")


def etag_matches(if_none_match: str, etag: str) -> bool:
    """Whether an ``If-None-Match`` header matches the current ETag.

    RFC 7232 §3.2 semantics: the header may be ``*`` (matches any
    current representation), or a comma-separated list of entity tags,
    each optionally carrying a ``W/`` weak-validator prefix.
    ``If-None-Match`` uses *weak comparison* — two tags match when
    their opaque parts are equal, ``W/`` prefixes ignored — so a cache
    replaying a weakened tag still gets its 304.  (Our ETags contain
    no commas or embedded quotes, so splitting on commas is exact.)
    """
    header = if_none_match.strip()
    if header == "*":
        return True
    current = etag[2:] if etag.startswith("W/") else etag
    for candidate in header.split(","):
        tag = candidate.strip()
        if tag.startswith("W/"):
            tag = tag[2:]
        if tag and tag == current:
            return True
    return False


class ServiceError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServiceStats:
    """Counters the service keeps about its own traffic."""

    queries: int = 0
    cache_hits: int = 0
    recomputes: int = 0
    not_modified: int = 0
    reopened_followers: int = 0
    ingested_rounds: int = 0
    ingested_snapshots: int = 0
    ingest_rejected: int = 0


class _StoreHandle:
    """One followed store: follower + lock + tagged response cache."""

    __slots__ = ("name", "path", "lock", "live", "appender", "generation", "cache")

    def __init__(self, name: str, path: Path) -> None:
        self.name = name
        self.path = path
        self.lock = threading.RLock()
        self.live: LiveAnalyzer | None = None
        self.appender: RtrcDirAppender | None = None
        self.generation = 0
        # (kind, sorted params) -> (etag, encoded response body)
        self.cache: dict[tuple, tuple[str, bytes]] = {}


class QueryService:
    """Serve cached mobility analytics over live ``.rtrc`` stores.

    Parameters
    ----------
    stores:
        ``{name: path}`` of the stores to follow; ``name`` becomes the
        URL segment (``/v1/<name>/...``).  Paths may be appendable
        ``.rtrc`` files or shard directories; with ``ingest`` enabled a
        missing suffix-less path is created as a fresh shard directory.
    host / port:
        Bind address; port 0 picks a free port (read :attr:`address`
        after :meth:`start`).
    backend:
        Follower backend for catch-up extraction
        (``serial``/``thread``/``process``), as in
        :class:`~repro.core.live.LiveAnalyzer`.
    ingest:
        Enable ``POST /v1/<store>/rounds``.  Only shard-directory
        stores accept ingest, and the service's appender must then be
        the directory's only writer.
    cache_results:
        Keep the per-``(kind, params)`` encoded-response cache
        (default).  ``False`` rebuilds and re-encodes every response —
        the "uncached recompute" side of
        ``benchmarks/bench_query_service.py``.
    ingest_budget / ingest_body_limit:
        The modeled platform limits on the ingest path: requests per
        sliding 60 s window across all stores, and the maximum request
        body in bytes.
    clock:
        Time source for the ingest budget window (monotonic seconds);
        injectable for tests.
    verbose:
        Log one line per request to stderr (the CLI turns this on).
    """

    def __init__(
        self,
        stores: Mapping[str, str | Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "serial",
        mmap: bool = True,
        ingest: bool = False,
        cache_results: bool = True,
        ingest_budget: int = DEFAULT_INGEST_BUDGET,
        ingest_body_limit: int = DEFAULT_INGEST_BODY_LIMIT,
        clock: Callable[[], float] = time.monotonic,
        verbose: bool = False,
    ) -> None:
        if not stores:
            raise ValueError("the service needs at least one store to serve")
        self._host = host
        self._port = port
        self._backend = backend
        self._mmap = bool(mmap)
        self.ingest = bool(ingest)
        self.cache_results = bool(cache_results)
        self.verbose = bool(verbose)
        self._clock = clock
        self._budget = WebServer(
            max_requests_per_minute=ingest_budget,
            body_limit_bytes=ingest_body_limit,
        )
        self._budget_lock = threading.Lock()
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._serving = False
        self._closed = False
        self._stores: dict[str, _StoreHandle] = {}
        try:
            for name, path in stores.items():
                self._stores[name] = self._open_store(str(name), Path(path))
        except BaseException:
            self.close()
            raise

    # -- store lifecycle ----------------------------------------------------

    def _open_store(self, name: str, path: Path) -> _StoreHandle:
        if not name or "/" in name:
            raise ValueError(f"invalid store name {name!r}")
        handle = _StoreHandle(name, path)
        if not path.exists():
            if self.ingest and path.suffix == "":
                # A fresh ingest target: the appender creates the
                # directory and its empty manifest, so the follower
                # below opens a valid (zero-round) shard dir.
                handle.appender = RtrcDirAppender(path)
            else:
                raise ValueError(
                    f"{path}: no such store (create it, or serve with "
                    "ingest enabled and a suffix-less path to start a "
                    "fresh shard directory)"
                )
        self._reopen_follower(handle)
        return handle

    def _reopen_follower(self, handle: _StoreHandle) -> None:
        """(Re)open the follower; refreshes the generation tag."""
        if handle.live is not None:
            handle.live.close()
        handle.live = LiveAnalyzer(
            handle.path, mmap=self._mmap, backend=self._backend
        )
        if handle.live.is_shard_dir:
            handle.generation = shard_dir_generation(handle.path)[0]
        handle.cache.clear()

    def _refresh(self, handle: _StoreHandle) -> None:
        """Observe commits; absorb torn reads; survive compactions."""
        assert handle.live is not None
        try:
            try:
                handle.live.refresh()
            except TraceFormatError:
                # A read racing a commit can tear; one short retry
                # separates that transient from real corruption.
                time.sleep(0.05)
                handle.live.refresh()
        except StoreChangedError:
            # A compaction (or other history rewrite) invalidated this
            # follower's incremental state.  The store itself is
            # consistent behind its new manifest — degrade by
            # re-opening instead of dying.
            self._reopen_follower(handle)
            with self._stats_lock:
                self.stats.reopened_followers += 1

    def _etag(self, handle: _StoreHandle) -> str:
        live = handle.live
        assert live is not None
        if live.is_shard_dir:
            return f'"g{handle.generation}-{live.committed_file_count}"'
        return f'"s{live.snapshot_count}"'

    # -- server lifecycle ----------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background thread; returns the address."""
        self.bind()
        assert self._server is not None
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="slmob-query-service",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); binds if needed."""
        if self._server is None:
            self.bind()
        assert self._server is not None
        self._serving = True
        self._server.serve_forever()

    def bind(self) -> tuple[str, int]:
        """Bind the listening socket without serving yet.

        Lets a caller learn the bound address (port 0 picks a free
        port) before committing the calling thread to
        :meth:`serve_forever`.
        """
        if self._closed:
            raise ValueError("service is closed")
        if self._server is not None:
            raise ValueError("service is already serving")
        server = ThreadingHTTPServer((self._host, self._port), _Handler)
        server.daemon_threads = True
        server.service = self  # type: ignore[attr-defined]
        self._server = server
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; raises before :meth:`_bind`."""
        if self._server is None:
            raise ValueError("service is not serving yet")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        """Stop serving and release followers/appenders; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            if self._serving:
                # shutdown() handshakes with the serve_forever loop;
                # calling it on a bound-but-never-served socket would
                # wait for an acknowledgment that never comes.
                self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        for handle in self._stores.values():
            with handle.lock:
                if handle.live is not None:
                    handle.live.close()
                    handle.live = None
                if handle.appender is not None:
                    handle.appender.close()
                    handle.appender = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request handling ----------------------------------------------------

    def handle_get(
        self, path: str, headers: Mapping[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one GET; returns ``(status, extra headers, body)``."""
        url = urlsplit(path)
        segments = [s for s in url.path.split("/") if s]
        query = dict(parse_qsl(url.query, keep_blank_values=True))
        if not segments or segments[0] != "v1":
            raise ServiceError(404, f"unknown path {url.path!r}; routes live under /v1")
        if len(segments) == 1:
            return 200, {}, encode(self._listing())
        handle = self._handle_for(segments[1])
        if len(segments) == 2:
            kind, params = "status", {}
        elif len(segments) == 3 and segments[2] in ("contacts", "sessions", "zones"):
            kind = segments[2]
            params = self._query_params(kind, query, handle)
        elif len(segments) == 4 and segments[2] == "graph":
            if segments[3] not in _GRAPH_KINDS:
                raise ServiceError(
                    404,
                    f"unknown graph metric {segments[3]!r}; expected one of "
                    f"{_GRAPH_KINDS}",
                )
            kind = segments[3]
            params = self._query_params(kind, query, handle)
        else:
            raise ServiceError(404, f"unknown path {url.path!r}")
        return self._answer(handle, kind, params, headers.get("If-None-Match"))

    def _listing(self) -> dict:
        stores = {}
        for name, handle in sorted(self._stores.items()):
            with handle.lock:
                self._refresh(handle)
                live = handle.live
                assert live is not None
                stores[name] = {
                    "path": str(handle.path),
                    "shard_dir": live.is_shard_dir,
                    "snapshots": live.snapshot_count,
                    "etag": self._etag(handle),
                }
        return {"kind": "stores", "stores": stores, "ingest": self.ingest}

    def _handle_for(self, name: str) -> _StoreHandle:
        handle = self._stores.get(name)
        if handle is None:
            raise ServiceError(
                404,
                f"unknown store {name!r}; serving {sorted(self._stores)}",
            )
        return handle

    def _query_params(
        self, kind: str, query: Mapping[str, str], handle: _StoreHandle
    ) -> dict:
        """Parse and normalize one query's parameters (400 on nonsense)."""
        def number(key: str, default: float | None = None) -> float:
            raw = query.get(key)
            if raw is None:
                if default is None:
                    raise ServiceError(400, f"{kind} needs a {key}= parameter")
                return default
            try:
                value = float(raw)
            except ValueError:
                raise ServiceError(400, f"{key}={raw!r} is not a number") from None
            if not np.isfinite(value) or value <= 0:
                raise ServiceError(400, f"{key} must be finite and positive")
            return value

        def stride() -> int:
            raw = query.get("every", "1")
            try:
                value = int(raw)
            except ValueError:
                raise ServiceError(400, f"every={raw!r} is not an integer") from None
            if value < 1:
                raise ServiceError(400, "every must be >= 1")
            return value

        known = {
            "contacts": {"r"},
            "sessions": {"gap"},
            "zones": {"cell", "every"},
        }.get(kind, {"r", "every"})
        for key in query:
            if key not in known:
                raise ServiceError(
                    400, f"unknown parameter {key!r} for {kind} (accepts {sorted(known)})"
                )
        if kind == "contacts":
            return {"r": number("r")}
        if kind == "sessions":
            assert handle.live is not None
            return {"gap": number("gap", 2.0 * handle.live.metadata.tau)}
        if kind == "zones":
            return {"cell": number("cell", spatial.ZONE_SIZE), "every": stride()}
        return {"r": number("r"), "every": stride()}

    def _answer(
        self,
        handle: _StoreHandle,
        kind: str,
        params: dict,
        if_none_match: str | None,
    ) -> tuple[int, dict[str, str], bytes]:
        with handle.lock:
            self._refresh(handle)
            etag = self._etag(handle)
            with self._stats_lock:
                self.stats.queries += 1
            if if_none_match is not None and etag_matches(if_none_match, etag):
                with self._stats_lock:
                    self.stats.not_modified += 1
                return 304, {"ETag": etag}, b""
            key = (kind, tuple(sorted(params.items())))
            hit = handle.cache.get(key) if self.cache_results else None
            if hit is not None and hit[0] == etag:
                with self._stats_lock:
                    self.stats.cache_hits += 1
                body = hit[1]
            else:
                body = encode(self._compute(handle, kind, params, etag))
                with self._stats_lock:
                    self.stats.recomputes += 1
                if self.cache_results:
                    handle.cache[key] = (etag, body)
            return 200, {"ETag": etag}, body

    def _compute(
        self, handle: _StoreHandle, kind: str, params: dict, etag: str
    ) -> dict:
        live = handle.live
        assert live is not None
        snapshots = live.snapshot_count
        if kind == "status":
            return status_payload(
                store=handle.name,
                path=str(handle.path),
                shard_dir=live.is_shard_dir,
                snapshots=snapshots,
                observations=live.observation_count,
                parts=live.part_count,
                etag=etag,
                metadata=live.metadata,
                ingest=self.ingest and live.is_shard_dir,
            )
        if kind == "contacts":
            return contacts_payload(
                live.contact_set(params["r"]),
                store=handle.name,
                snapshots=snapshots,
                r=params["r"],
            )
        if kind == "sessions":
            return sessions_payload(
                live.session_set(params["gap"]),
                store=handle.name,
                snapshots=snapshots,
                gap=params["gap"],
            )
        if snapshots == 0:
            # Strided sample tasks need at least one snapshot; an
            # empty store is a client-visible state, not a crash.
            raise ServiceError(
                409, f"store {handle.name!r} holds no snapshots yet"
            )
        if kind == "zones":
            samples = live.zone_occupation(params["cell"], params["every"])
            return samples_payload(
                "zones", samples,
                store=handle.name, snapshots=snapshots, params=params,
            )
        samples = {
            "degrees": live.degree_array,
            "diameters": live.diameter_array,
            "clustering": live.clustering_array,
        }[kind](params["r"], params["every"])
        return samples_payload(
            kind, samples, store=handle.name, snapshots=snapshots, params=params
        )

    # -- ingest --------------------------------------------------------------

    def handle_post(
        self, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one POST; only ``/v1/<store>/rounds`` exists."""
        segments = [s for s in urlsplit(path).path.split("/") if s]
        if len(segments) != 3 or segments[0] != "v1" or segments[2] != "rounds":
            raise ServiceError(404, f"unknown POST path {path!r}")
        handle = self._handle_for(segments[1])
        if not self.ingest:
            raise ServiceError(
                405, "ingest is disabled; start the service with ingest enabled"
            )
        assert handle.live is not None
        if not handle.live.is_shard_dir:
            raise ServiceError(
                405,
                f"store {handle.name!r} is a single .rtrc file; HTTP ingest "
                "needs a shard-directory store",
            )
        times, names, blocks, metadata = self._parse_round(body)
        records = sum(len(n) for n in names)
        with self._budget_lock:
            accepted = self._budget.try_request(self._clock(), records)
        if not accepted:
            with self._stats_lock:
                self.stats.ingest_rejected += 1
            raise ServiceError(
                429,
                "ingest request budget exhausted for the current window",
            )
        with handle.lock:
            appender = self._appender_for(handle)
            if metadata is not None:
                appender.metadata = metadata
            try:
                for t, snapshot_names, block in zip(times, names, blocks):
                    appender.append_snapshot(t, snapshot_names, block)
                shard = appender.commit()
            except ValueError as exc:
                # The pending round is now half-appended garbage; drop
                # the appender object (pending rounds live only in
                # memory) and re-adopt the committed state on the next
                # POST.
                handle.appender = None
                raise ServiceError(409, f"round rejected: {exc}") from None
            self._refresh(handle)
            etag = self._etag(handle)
            with self._stats_lock:
                self.stats.ingested_rounds += 1
                self.stats.ingested_snapshots += len(times)
            payload = {
                "store": handle.name,
                "committed_snapshots": len(times),
                "committed_observations": records,
                "shard": shard.name if shard is not None else None,
                "etag": etag,
            }
            return 200, {"ETag": etag}, encode(payload)

    def _appender_for(self, handle: _StoreHandle) -> RtrcDirAppender:
        if handle.appender is None:
            handle.appender = RtrcDirAppender(handle.path)
        return handle.appender

    def _parse_round(
        self, body: bytes
    ) -> tuple[list[float], list[list[str]], list[np.ndarray], TraceMetadata | None]:
        try:
            doc = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(400, f"request body is not valid JSON ({exc})") from None
        if not isinstance(doc, dict) or not isinstance(doc.get("snapshots"), list):
            raise ServiceError(400, "round document needs a 'snapshots' list")
        metadata = None
        if doc.get("metadata") is not None:
            if not isinstance(doc["metadata"], dict):
                raise ServiceError(400, "'metadata' must be an object")
            try:
                metadata = TraceMetadata(**doc["metadata"])
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, f"bad metadata ({exc})") from None
        times: list[float] = []
        names: list[list[str]] = []
        blocks: list[np.ndarray] = []
        for index, snap in enumerate(doc["snapshots"]):
            where = f"snapshots[{index}]"
            if not isinstance(snap, dict):
                raise ServiceError(400, f"{where} must be an object")
            try:
                t = float(snap["t"])
                users = snap["users"]
                xyz = snap["xyz"]
            except (KeyError, TypeError, ValueError):
                raise ServiceError(
                    400, f"{where} needs numeric 't', 'users' and 'xyz'"
                ) from None
            if not isinstance(users, list) or not all(
                isinstance(u, str) for u in users
            ):
                raise ServiceError(400, f"{where}.users must be a list of strings")
            try:
                block = np.asarray(xyz, dtype=np.float64).reshape(len(users), 3)
            except (TypeError, ValueError):
                raise ServiceError(
                    400, f"{where}.xyz must be one [x, y, z] row per user"
                ) from None
            if times and t <= times[-1]:
                raise ServiceError(
                    409, f"{where}: snapshot times must be strictly increasing"
                )
            times.append(t)
            names.append(users)
            blocks.append(block)
        return times, names, blocks, metadata


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing; all routing lives on the service."""

    server_version = "slmob-query/1"
    protocol_version = "HTTP/1.1"
    # One buffered write per response (flushed by handle_one_request)
    # instead of one unbuffered segment per header line — the default
    # interacts with Nagle + delayed ACK into ~40 ms per exchange on
    # keep-alive connections.
    wbufsize = -1
    disable_nagle_algorithm = True

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def _respond(
        self, status: int, headers: Mapping[str, str], body: bytes
    ) -> None:
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        if status != 304:
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body and status != 304 and self.command != "HEAD":
            self.wfile.write(body)

    def _fail(self, exc: ServiceError) -> None:
        headers = {"Retry-After": "1"} if exc.status == 429 else {}
        self._respond(exc.status, headers, encode(error_payload(exc.message)))

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            status, headers, body = self.service.handle_get(self.path, self.headers)
        except ServiceError as exc:
            self._fail(exc)
        else:
            self._respond(status, headers, body)

    do_HEAD = do_GET  # noqa: N815 (http.server API)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                raise ServiceError(400, "bad Content-Length") from None
            limit = self.service._budget.body_limit_bytes
            if length > limit:
                # Mirrors the modeled LSL body limit: the slice does
                # not fit one request — reject before reading it.
                raise ServiceError(
                    413, f"request body of {length} bytes exceeds the {limit} byte limit"
                )
            body = self.rfile.read(length) if length else b""
            status, headers, payload = self.service.handle_post(
                self.path, self.headers, body
            )
        except ServiceError as exc:
            self._fail(exc)
        else:
            self._respond(status, headers, payload)

    def log_message(self, format: str, *args: object) -> None:
        if self.service.verbose:
            super().log_message(format, *args)
