"""The mobility-analytics query service.

The network half of the reproduction: :class:`QueryService` serves
cached JSON analytics over live ``.rtrc`` stores
(:mod:`repro.service.server`), :class:`HttpRoundSink` streams a
crawler's committed rounds into it over HTTP
(:mod:`repro.service.client`), and :mod:`repro.service.encoding`
fixes the canonical response bytes both the service and its
equivalence tests build.
"""

from repro.service.client import (
    HttpRoundSink,
    ServiceRejectedRound,
    ServiceUnreachable,
)
from repro.service.encoding import (
    contacts_payload,
    encode,
    error_payload,
    samples_payload,
    sessions_payload,
    status_payload,
)
from repro.service.server import (
    DEFAULT_INGEST_BODY_LIMIT,
    DEFAULT_INGEST_BUDGET,
    QueryService,
    ServiceError,
    ServiceStats,
    etag_matches,
)
from repro.service.transport import (
    TRANSIENT_STATUSES,
    TransportUnavailable,
    request_bytes,
)

__all__ = [
    "HttpRoundSink",
    "ServiceRejectedRound",
    "ServiceUnreachable",
    "QueryService",
    "ServiceError",
    "ServiceStats",
    "DEFAULT_INGEST_BODY_LIMIT",
    "DEFAULT_INGEST_BUDGET",
    "TRANSIENT_STATUSES",
    "TransportUnavailable",
    "etag_matches",
    "request_bytes",
    "contacts_payload",
    "encode",
    "error_payload",
    "samples_payload",
    "sessions_payload",
    "status_payload",
]
