"""HTTP round sink: stream a crawl into a query service over the wire.

:class:`HttpRoundSink` speaks the crawler's sink protocol
(``append_snapshot`` / ``commit`` / assignable ``metadata`` — the
shape :class:`~repro.monitors.database.TraceDatabase` and the CLI
crawl loop drive) but, instead of writing ``.rtrc`` files, POSTs each
committed round to a :class:`~repro.service.QueryService` ingest
endpoint as one ``/v1/<store>/rounds`` document.  The crawler and the
store no longer share a filesystem — the paper's own deployment shape,
where in-world sensors push observation slices to a web server over
HTTP.

Positions ride as JSON numbers; Python's shortest-round-trip float
``repr`` makes the trip lossless, so a store ingested through this
sink is bit-identical to one written by a local
:class:`~repro.trace.RtrcDirAppender` (pinned by
``tests/unit/service/test_http_sink.py``).

Transient failures are retried through the shared policy in
:mod:`repro.service.transport`: a ``429`` (request budget exhausted),
``502``/``503``/``504``, and transport-level errors — a connection
reset, the service restarting between rounds — all get bounded
backoff with a capped total attempt count, so a long streaming crawl
survives server hiccups instead of dying mid-round.  Non-retryable
statuses (``400`` validation failures, ``409`` time-order conflicts)
raise :class:`ServiceRejectedRound` immediately with the server's
message; an endpoint that stays unreachable through every attempt
raises :class:`ServiceUnreachable`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import asdict

import numpy as np

from repro.service.transport import TransportUnavailable, request_bytes
from repro.trace import TraceMetadata


class ServiceRejectedRound(RuntimeError):
    """The ingest endpoint refused a round (non-retryable status).

    Also raised when a *retryable* status (429/502/503/504) persisted
    through the whole retry budget — the server kept answering, so its
    last verdict is the message worth surfacing.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"ingest rejected with HTTP {status}: {message}")
        self.status = status


class ServiceUnreachable(RuntimeError):
    """The ingest endpoint stayed unreachable through every retry."""

    def __init__(self, url: str, cause: TransportUnavailable) -> None:
        super().__init__(f"ingest failed: {cause}")
        self.url = url
        self.attempts = cause.attempts


class HttpRoundSink:
    """Crawl sink that POSTs committed rounds to a query service.

    Parameters
    ----------
    url:
        The store's base URL, e.g. ``http://127.0.0.1:8700/v1/crawl``
        (``/rounds`` is appended; a trailing slash is tolerated).
    timeout:
        Socket timeout per POST, seconds.
    retries / retry_wait:
        Extra attempts allowed per POST for transient failures (429 /
        502 / 503 / 504 and transport errors), and the base backoff
        used when the server sends no usable ``Retry-After`` (doubled
        per attempt, capped at ``max_backoff``).
    max_backoff:
        Upper bound on the per-attempt backoff wait, seconds.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        retries: int = 5,
        retry_wait: float = 1.0,
        max_backoff: float = 30.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_wait = float(retry_wait)
        self.max_backoff = float(max_backoff)
        self.metadata = TraceMetadata()
        self._metadata_sent: dict | None = None
        self._pending: list[dict] = []
        self._users: set[str] = set()
        self._snapshots = 0
        self._observations = 0
        self._rounds_posted = 0
        self._closed = False

    # -- sink protocol -------------------------------------------------------

    def append_snapshot(self, time: float, names, coords) -> None:
        """Buffer one snapshot into the pending round (no I/O yet)."""
        self._require_open()
        rows = list(names)
        block = np.ascontiguousarray(coords, dtype=np.float64).reshape(len(rows), 3)
        self._pending.append(
            {"t": float(time), "users": rows, "xyz": block.tolist()}
        )
        self._users.update(rows)
        self._snapshots += 1
        self._observations += len(rows)

    def commit(self) -> None:
        """POST the pending round; empty rounds are a no-op.

        The durability point moves to the server: when this returns,
        the service has committed the round into its shard directory
        and concurrent queries observe it.
        """
        self._require_open()
        if not self._pending:
            return
        document: dict = {"snapshots": self._pending}
        meta = asdict(self.metadata)
        if meta != self._metadata_sent:
            document["metadata"] = meta
        self._post(json.dumps(document).encode("utf-8"))
        self._metadata_sent = meta
        self._pending = []
        self._rounds_posted += 1

    @property
    def snapshot_count(self) -> int:
        """Snapshots appended so far (posted and pending)."""
        return self._snapshots

    @property
    def observation_count(self) -> int:
        """Observation rows appended so far (posted and pending)."""
        return self._observations

    @property
    def user_count(self) -> int:
        """Distinct users observed so far."""
        return len(self._users)

    @property
    def user_names(self) -> list[str]:
        """Distinct users observed so far (unordered set, listed)."""
        return sorted(self._users)

    @property
    def rounds_posted(self) -> int:
        """Rounds successfully accepted by the service."""
        return self._rounds_posted

    def close(self) -> None:
        """Commit any pending round, then refuse further appends."""
        if self._closed:
            return
        try:
            self.commit()
        finally:
            self._closed = True

    def __enter__(self) -> "HttpRoundSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # The round that failed mid-crawl is not worth a network
            # retry storm during unwind; drop it unposted.
            self._closed = True

    # -- wire ----------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self.url}: sink is closed")

    def _post(self, body: bytes) -> None:
        request = urllib.request.Request(
            f"{self.url}/rounds",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            request_bytes(
                request,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.retry_wait,
                max_backoff=self.max_backoff,
            )
        except urllib.error.HTTPError as exc:
            raise ServiceRejectedRound(exc.code, self._error_detail(exc)) from None
        except TransportUnavailable as exc:
            raise ServiceUnreachable(self.url, exc) from exc

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            return json.loads(exc.read())["error"]
        except Exception:
            return exc.reason or "unknown error"
